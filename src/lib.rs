//! Workspace-level facade: re-exports the crates so integration tests and
//! examples can use a single dependency root.
pub use aji;
pub use aji_approx;
pub use aji_ast;
pub use aji_corpus;
pub use aji_interp;
pub use aji_parser;
pub use aji_pta;
