//! Determinism gates for the `aji-serve` daemon (PR9): a daemon answer
//! must be **byte-identical** to a local batch run, whether the store is
//! cold, warm, freshly invalidated, or reloaded from a snapshot — and at
//! any client thread count.
//!
//! The final property test is the strongest form of the contract: over
//! random edit sequences against a project (edits interleaved with
//! invalidations), the daemon's answer after every step must equal a
//! from-scratch [`aji::run_benchmark`] on the current project text.
//! Cache keys embed a digest of full project content, so a stale answer
//! is a key-collision or bookkeeping bug — exactly what this hunts.

use aji::{run_benchmark, PipelineOptions};
use aji_ast::Project;
use aji_serve::{Engine, EngineOptions};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert_eq, Json};

/// The small corpus slice the socket tests fan out over.
fn corpus() -> Vec<Project> {
    aji_corpus::pattern_projects().into_iter().take(5).collect()
}

/// The deterministic local baseline the daemon must reproduce.
fn local_report(projects: Vec<Project>) -> String {
    let results = aji_bench::run_corpus(projects, &PipelineOptions::default(), 1);
    aji_bench::corpus_metrics_json(&results).to_string()
}

fn analyze_frame(project: &Project) -> Json {
    Json::obj(vec![
        ("op", Json::Str("analyze".into())),
        ("project", project.to_json()),
    ])
}

/// The `result` payload of an in-process analyze, as printed text.
fn engine_analyze(engine: &mut Engine, project: &Project) -> String {
    let (resp, _) = engine.handle(&analyze_frame(project));
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "analyze failed for {}: {resp}",
        project.name
    );
    resp.get("result").expect("result").to_string()
}

/// What a scratch pipeline says about `project` right now.
fn scratch_answer(project: &Project) -> String {
    run_benchmark(project, &PipelineOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", project.name))
        .metrics_json()
        .to_string()
}

#[cfg(unix)]
mod socket {
    use super::*;
    use aji_support::wire;
    use std::os::unix::net::UnixListener;

    fn temp_socket(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("aji-daemon-det-{tag}-{}.sock", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    /// In-process daemon; the engine lives inside the thread (not `Send`).
    fn spawn_daemon(path: &str) -> std::thread::JoinHandle<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).unwrap();
        std::thread::spawn(move || {
            let mut engine = Engine::new(EngineOptions::default());
            aji_serve::serve(&listener, &mut engine).unwrap();
        })
    }

    fn daemon_report(projects: Vec<Project>, socket: &str, threads: usize) -> String {
        let results = aji_bench::run_corpus_daemon(projects, socket, threads, false);
        assert!(
            results.iter().all(|r| r.outcome.is_ok()),
            "daemon run had failures"
        );
        aji_bench::daemon_metrics_json(&results).to_string()
    }

    fn request(socket: &str, frame: &Json) -> Json {
        let resp = wire::request(socket, frame).expect("request");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        resp
    }

    fn stat(resp: &Json, key: &str) -> f64 {
        resp.get("result")
            .and_then(|r| r.get("store"))
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stats frame missing store.{key}: {resp}"))
    }

    #[test]
    fn cold_warm_and_invalidated_daemon_runs_match_local_batch_byte_for_byte() {
        let projects = corpus();
        let n = projects.len() as f64;
        let local = local_report(projects.clone());

        let path = temp_socket("cold-warm");
        let daemon = spawn_daemon(&path);

        // Cold pass, serial clients.
        let cold = daemon_report(projects.clone(), &path, 1);
        assert_eq!(cold, local, "cold daemon run must match the local batch");

        // Warm pass, four client threads: answers must not depend on
        // connection interleaving, and must all come from the response
        // layer.
        let warm = daemon_report(projects.clone(), &path, 4);
        assert_eq!(warm, local, "warm daemon run must match the local batch");
        let stats = request(&path, &Json::obj(vec![("op", Json::Str("stats".into()))]));
        assert_eq!(stat(&stats, "response_misses"), n);
        assert_eq!(stat(&stats, "response_hits"), n);

        // Invalidate one module of one project: the next pass recomputes
        // that project (one more miss) and still matches the local batch.
        let victim = &projects[0];
        let victim_file = victim.files[0].path.clone();
        let resp = request(
            &path,
            &Json::obj(vec![
                ("op", Json::Str("invalidate".into())),
                ("name", Json::Str(victim.name.clone())),
                ("path", Json::Str(victim_file)),
            ]),
        );
        let cone = resp
            .get("result")
            .and_then(|r| r.get("cone"))
            .and_then(Json::as_arr)
            .expect("invalidate result has a cone");
        assert!(!cone.is_empty(), "cone must at least contain the edited file");

        let after = daemon_report(projects.clone(), &path, 4);
        assert_eq!(after, local, "post-invalidate run must match the local batch");
        let stats = request(&path, &Json::obj(vec![("op", Json::Str("stats".into()))]));
        assert_eq!(stat(&stats, "response_misses"), n + 1.0);
        assert_eq!(stat(&stats, "invalidations"), 1.0);

        request(&path, &Json::obj(vec![("op", Json::Str("shutdown".into()))]));
        daemon.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn snapshot_reload_preserves_answers_byte_for_byte() {
    let store = std::env::temp_dir().join(format!(
        "aji-daemon-det-store-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let opts = || EngineOptions {
        store_path: Some(store.clone()),
        ..EngineOptions::default()
    };
    let projects = corpus();

    let mut first = Engine::new(opts());
    let cold: Vec<String> = projects.iter().map(|p| engine_analyze(&mut first, p)).collect();
    let (resp, _) = first.handle(&Json::obj(vec![("op", Json::Str("save".into()))]));
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    drop(first);

    // A fresh engine over the snapshot answers from the response layer,
    // byte-identically.
    let mut second = Engine::new(opts());
    let warm: Vec<String> = projects.iter().map(|p| engine_analyze(&mut second, p)).collect();
    assert_eq!(cold, warm);
    assert_eq!(second.store().stats().response_hits, projects.len() as u64);
    assert_eq!(second.store().stats().response_misses, 0);
    let _ = std::fs::remove_file(&store);
}

/// Applies one random, parse-safe edit to a random file of `project`.
fn random_edit(tc: &mut TestCase, project: &mut Project, step: usize) {
    let i = tc.int_in(0usize..project.files.len());
    let file = &mut project.files[i];
    match tc.int_in(0u8..3) {
        // Append a new top-level binding (new nodes at the end).
        0 => file.src.push_str(&format!("\nvar aji_edit_{step} = {};", tc.int_in(0u64..100))),
        // Prepend one (shifts every node id in the file).
        1 => file.src = format!("var aji_pre_{step} = {};\n{}", tc.int_in(0u64..100), file.src),
        // Rewrite the file wholesale.
        _ => file.src = format!("var aji_only_{step} = {};", tc.int_in(0u64..100)),
    }
}

#[test]
fn random_edit_sequences_never_yield_stale_answers() {
    property("daemon_random_edits_never_stale").cases(8).run(|tc| {
        let projects = aji_corpus::pattern_projects();
        let pick = tc.int_in(0usize..projects.len());
        let mut project = projects[pick].clone();
        let mut engine = Engine::new(EngineOptions::default());

        // Cold answer for the pristine project.
        prop_assert_eq!(engine_analyze(&mut engine, &project), scratch_answer(&project));

        let steps = tc.int_in(2usize..5);
        for step in 0..steps {
            random_edit(tc, &mut project, step);
            // Sometimes also evict explicitly — eviction must never
            // change an answer, only cache hit-rates.
            if tc.bool() {
                let path = project.files[tc.int_in(0usize..project.files.len())].path.clone();
                let (resp, _) = engine.handle(&Json::obj(vec![
                    ("op", Json::Str("invalidate".into())),
                    ("name", Json::Str(project.name.clone())),
                    ("path", Json::Str(path)),
                ]));
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
            }
            prop_assert_eq!(
                engine_analyze(&mut engine, &project),
                scratch_answer(&project)
            );
            // And the immediate re-ask is warm yet identical.
            let before = engine.store().stats().response_hits;
            prop_assert_eq!(
                engine_analyze(&mut engine, &project),
                scratch_answer(&project)
            );
            prop_assert_eq!(engine.store().stats().response_hits, before + 1);
        }
        Ok(())
    });
}
