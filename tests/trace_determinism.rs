//! Flight-recorder determinism contract.
//!
//! A recorder in deterministic mode (`TraceConfig::deterministic`: zeroed
//! wall clocks, profile on) must produce **byte-identical** trace streams
//! and Chrome exports:
//!
//! * between `threads = 1` and `threads = 4` corpus runs — per-project
//!   registries created with `Registry::new_like` fill their rings
//!   identically regardless of which worker runs them, and
//!   `Registry::absorb` appends the events in corpus order; and
//! * between reruns of the same corpus at the same thread count.
//!
//! A third test pins the recorder-**off** contract: installing no recorder
//! leaves every counter and span of a plain observed run unchanged (the
//! profiler and all trace hooks stay dormant).

use aji::PipelineOptions;
use aji_bench::run_corpus;
use aji_obs::{ObsReport, TraceConfig};
use std::sync::Arc;

/// A fixed slice of the pattern corpus, varied enough to exercise the
/// interpreter (dynamic runs), the VM (compiles, IC misses), the approx
/// pass (hints) and the analyses.
fn corpus_slice() -> Vec<aji_ast::Project> {
    aji_corpus::pattern_projects().into_iter().take(8).collect()
}

/// Runs the slice with a deterministic flight recorder installed and
/// returns the absorbed observability snapshot.
fn run_recorded(threads: usize) -> ObsReport {
    let reg = Arc::new(aji_obs::Registry::new());
    reg.install_recorder(TraceConfig::deterministic());
    let results = aji_obs::scoped(&reg, || {
        run_corpus(corpus_slice(), &PipelineOptions::default(), threads)
    });
    assert!(
        results.iter().all(|r| r.outcome.is_ok()),
        "corpus slice must analyze cleanly"
    );
    reg.report()
}

/// The deterministic byte streams compared: the trace JSON and its Chrome
/// export (which must also be stable, since it is what CI archives).
fn trace_bytes(report: &ObsReport) -> (String, String) {
    let trace = report.trace.as_ref().expect("recorder was installed");
    assert!(
        !trace.events.is_empty(),
        "the corpus run must record events"
    );
    use aji_support::ToJson;
    (
        trace.to_json().to_string(),
        trace.to_chrome_trace().to_string(),
    )
}

#[test]
fn deterministic_traces_are_byte_identical_across_thread_counts() {
    let serial = run_recorded(1);
    let parallel = run_recorded(4);
    assert_eq!(trace_bytes(&serial), trace_bytes(&parallel));
    // The step-attributed profile rides the same guarantee: profiler
    // counters are summed per project and absorbed in corpus order.
    assert_eq!(serial.counters, parallel.counters);
    assert_eq!(serial.gauges_deterministic(), parallel.gauges_deterministic());
}

#[test]
fn deterministic_traces_are_byte_identical_across_reruns() {
    let first = run_recorded(2);
    let second = run_recorded(2);
    assert_eq!(trace_bytes(&first), trace_bytes(&second));
}

/// Strips wall-clock-dependent gauges (peak RSS grows monotonically over
/// a process's life, so two in-process runs can differ).
trait DeterministicGauges {
    fn gauges_deterministic(&self) -> Vec<(String, u64)>;
}

impl DeterministicGauges for ObsReport {
    fn gauges_deterministic(&self) -> Vec<(String, u64)> {
        self.gauges
            .iter()
            .filter(|g| !g.name.contains("rss"))
            .map(|g| (g.name.clone(), g.value))
            .collect()
    }
}

#[test]
fn recorder_off_runs_are_unaffected() {
    let run_plain = || {
        let reg = Arc::new(aji_obs::Registry::new());
        let results = aji_obs::scoped(&reg, || {
            run_corpus(corpus_slice(), &PipelineOptions::default(), 2)
        });
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        reg.report()
    };
    let off = run_plain();
    assert!(off.trace.is_none(), "no recorder, no trace");
    assert!(
        off.counters.iter().all(|c| !c.name.starts_with("profile.")),
        "no recorder, no profiler counters"
    );

    // The recorded run's plain counters must agree exactly with the
    // unrecorded run's on every shared name: tracing is observation, not
    // perturbation. (The recorded run adds profile.* and ic-miss-site
    // counters on top.)
    let on = run_recorded(2);
    for c in &off.counters {
        assert_eq!(
            on.counter(&c.name),
            Some(c.value),
            "counter {} must be unchanged by the recorder",
            c.name
        );
    }
    let spans = |r: &ObsReport| -> Vec<(String, u64)> {
        r.spans.iter().map(|s| (s.path.clone(), s.count)).collect()
    };
    assert_eq!(spans(&off), spans(&on), "span shape must be unchanged");
}
