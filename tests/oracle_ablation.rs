//! The oracle's reason to exist: catch a soundness regression.
//!
//! `AJI_PTA_ABLATE=dpw` silently disables the \[DPW\] write-hint rule —
//! the analysis still *collects* `H_W` but no longer applies it, exactly
//! the shape of a real regression (options say extended, behaviour says
//! baseline). This test asserts the full oracle loop catches it: the
//! fuzzer flags findings, every finding is triaged as a `dynamic-write`
//! cause with `hint_covered` set, and the first finding shrinks to a
//! smaller reproducer that still exhibits the miss.
//!
//! Kept as a **single test function**: `AJI_PTA_ABLATE` is process-global
//! and tests within one binary may run concurrently, so the ablated and
//! healthy phases must be sequenced explicitly.

use aji_oracle::{run_fuzz, Cause, FuzzOptions};

#[test]
fn dpw_ablation_is_caught_triaged_and_shrunk() {
    let opts = FuzzOptions {
        seed: 1,
        cases: 8,
        threads: 2,
        max_shrunk: 1,
        max_shrink_runs: 150,
        ..FuzzOptions::default()
    };

    // Phase 1: ablated. The fuzzer must catch the regression.
    std::env::set_var("AJI_PTA_ABLATE", "dpw");
    assert!(aji_pta::rule_ablated("dpw"), "ablation switch must engage");
    let ablated = run_fuzz(&opts);
    std::env::remove_var("AJI_PTA_ABLATE");

    assert!(
        !ablated.clean(),
        "disabling [DPW] must produce findings:\n{}",
        ablated.summary_text()
    );
    assert!(ablated.errors.is_empty(), "no pipeline errors expected");

    // Triage: every finding is a hint-covered dynamic-write miss — the
    // callee was installed by a dynamic write, a write hint names it, and
    // the site consumes the property statically. That is precisely what
    // [DPW] recovers, so its absence is the root cause.
    for f in &ablated.findings {
        assert!(!f.missed.is_empty());
        for m in &f.missed {
            assert_eq!(
                m.cause,
                Cause::DynamicWrite,
                "expected dynamic-write cause for {} -> {}, got {:?} ({})",
                m.site_display,
                m.callee_display,
                m.cause,
                m.detail
            );
            assert!(m.hint_covered, "findings are hint-covered by definition");
        }
    }
    let hist: std::collections::BTreeMap<_, _> = ablated.causes.iter().copied().collect();
    assert!(
        hist["dynamic-write"] > 0,
        "histogram must attribute misses to dynamic-write"
    );

    // Shrinking: the first finding carries a reproducer that still fails,
    // with a choice sequence no larger than the original.
    let first = &ablated.findings[0];
    let shrunk = first
        .shrunk
        .as_ref()
        .expect("first finding must be shrunk (max_shrunk = 1)");
    assert!(
        !shrunk.missed.is_empty(),
        "the shrunk reproducer must still miss a hint-covered edge"
    );
    assert!(shrunk.missed.iter().all(|m| m.cause == Cause::DynamicWrite));
    assert!(shrunk.choices.len() <= first.choices.len());
    assert!(
        shrunk.choices <= first.choices,
        "shrinking never increases the choice sequence"
    );
    assert!(shrunk.source.contains("// ==== "), "reproducer carries source");
    assert!(shrunk.files > 0 && shrunk.shrink_runs > 0);

    // Phase 2: healthy. The same seeds come back clean — the findings
    // above were the ablation, not the generator.
    let healthy = run_fuzz(&opts);
    assert!(
        healthy.clean(),
        "healthy build must fuzz clean:\n{}",
        healthy.summary_text()
    );
    assert_eq!(healthy.seed, 1);
    assert!(healthy.cases_run > 0);
}
