//! Golden report and determinism tests for the differential oracle.
//!
//! * the pattern-corpus report is pinned edge-for-edge (golden values):
//!   hints strictly improve recall on every dynamic-idiom project and
//!   never lose an edge anywhere;
//! * the fuzzer's JSON report is invariant under `--threads` and
//!   repeatable for a fixed seed (property-tested over seeds).

use aji_oracle::{run_fuzz, run_oracle_corpus, FuzzOptions, OracleOptions};
use aji_support::check::property;

/// Pattern projects built around a dynamic idiom the hints recover —
/// recall with hints must be *strictly* greater than baseline on each.
/// (`model-app` is static-idiom, `i18n-app` is pure dynamic-require;
/// hints cannot improve those two.)
const DYNAMIC_IDIOM_PROJECTS: &[&str] = &[
    "webframe-app",
    "pubsub-app",
    "plugin-host",
    "validator-app",
    "evalapi-app",
    "middleware-app",
    "config-app",
    "di-app",
    "queue-app",
    "template-app",
    "rest-app",
    "logger-app",
];

#[test]
fn pattern_corpus_golden_report() {
    let corpus = run_oracle_corpus(
        aji_corpus::pattern_projects(),
        &OracleOptions::default(),
        2,
    );
    assert!(corpus.errors.is_empty(), "errors: {:?}", corpus.errors);
    assert_eq!(corpus.projects.len(), 14);

    // Golden corpus totals. These pin the oracle's edge arithmetic: if a
    // pipeline change legitimately moves them, re-run
    // `aji-oracle --patterns --json` and update.
    let (dynamic, missed, recovered, spurious) = corpus.totals();
    assert_eq!(
        (dynamic, missed, recovered, spurious),
        (143, 10, 52, 4),
        "corpus edge totals changed"
    );
    // The 4 spurious edges are all in middleware-app and share one root
    // cause: aji-pta's name-based listener-registration model ("on" /
    // "once" / "addListener" in `method_model`) records a call edge from
    // each `pipeline.on('phase', fn)` registration site to its own
    // callback argument. The model exists so listeners on *opaque*
    // emitters still count as called, but hookline's `on` is plain user
    // code and the read hint at its `fns[j](ctx)` dispatch loop already
    // recovers the true edges — so the registration-site edges are pure
    // over-approximation. They appear in the baseline graph too (no hint
    // involvement), i.e. a deliberate precision trade in the static
    // model, not a hint-application bug; the pinned histogram below keeps
    // them named.
    assert_eq!(
        corpus.spurious_histogram(),
        vec![
            ("listener-model", 4),
            ("callback-model", 0),
            ("dot-dispatch", 0),
            ("static-imprecision", 0),
            ("hint-imprecision", 0),
        ],
        "spurious-cause histogram changed"
    );
    // The missed-cause histogram, pinned the same way: the 10 residual
    // misses split across four documented limits of the approach (none is
    // hint-covered — see the findings assertion below). If a triage or
    // pipeline change legitimately moves these, re-run
    // `aji-oracle --patterns --json` and update both pins together.
    assert_eq!(
        corpus.histogram(),
        vec![
            ("dynamic-read", 1),
            ("dynamic-write", 3),
            ("eval-api", 0),
            ("dynamic-require", 2),
            ("higher-order-proxy", 0),
            ("budget-exhausted", 0),
            ("unknown", 4),
        ],
        "missed-cause histogram changed"
    );
    let (base, ext) = corpus.recall();
    assert!(base > 56.0 && base < 57.0, "baseline recall {base}");
    assert!(ext > 92.0 && ext < 94.0, "extended recall {ext}");

    for p in &corpus.projects {
        // Hints are monotone: everything the baseline matched, the
        // extended analysis matches too.
        assert!(
            p.diff.extended.matched_edges >= p.diff.baseline.matched_edges,
            "{}: extended lost an edge the baseline had",
            p.name
        );
        // Strict improvement on every dynamic-idiom project.
        if DYNAMIC_IDIOM_PROJECTS.contains(&p.name.as_str()) {
            assert!(
                p.diff.extended.matched_edges > p.diff.baseline.matched_edges,
                "{}: hints recovered nothing (baseline {}, extended {})",
                p.name,
                p.diff.baseline.matched_edges,
                p.diff.extended.matched_edges
            );
            assert!(!p.diff.recovered.is_empty());
        }
        // A healthy build has no hint-covered misses anywhere.
        assert!(
            p.findings().is_empty(),
            "{}: unexpected unsoundness finding",
            p.name
        );
        // Histograms account for every miss / spurious edge, no double
        // counting.
        let hist_total: usize = p.histogram().iter().map(|&(_, n)| n).sum();
        assert_eq!(hist_total, p.missed.len(), "{}: histogram mismatch", p.name);
        let sp_total: usize = p.spurious_histogram().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            sp_total,
            p.spurious.len(),
            "{}: spurious histogram mismatch",
            p.name
        );
        assert_eq!(
            p.spurious.len(),
            p.diff.spurious.len(),
            "{}: every spurious edge is triaged",
            p.name
        );
    }
}

#[test]
fn pattern_report_is_thread_invariant() {
    let opts = OracleOptions::default();
    let serial = run_oracle_corpus(aji_corpus::pattern_projects(), &opts, 1);
    let parallel = run_oracle_corpus(aji_corpus::pattern_projects(), &opts, 4);
    assert_eq!(
        serial.to_json().to_string(),
        parallel.to_json().to_string(),
        "pattern oracle report must be byte-identical across thread counts"
    );
}

#[test]
fn fuzz_report_is_thread_invariant_and_repeatable() {
    property("oracle::fuzz_determinism").cases(3).run(|tc| {
        let seed = tc.choice(1 << 20);
        let mk = |threads: usize| {
            run_fuzz(&FuzzOptions {
                seed,
                cases: 8,
                threads,
                max_shrunk: 0, // determinism of the scan, not the shrinker
                ..FuzzOptions::default()
            })
            .to_json()
            .to_string()
        };
        let serial = mk(1);
        let parallel = mk(4);
        aji_support::prop_assert_eq!(&serial, &parallel);
        let again = mk(1);
        aji_support::prop_assert_eq!(&serial, &again);
        Ok(())
    });
}
