//! Hermetic-build audit: every dependency in every workspace manifest
//! must resolve inside the tree. Registry crates cannot be fetched in
//! the build environment, so a single `version = "..."`/`git = "..."`
//! dependency (or a bare `foo = "1.0"`) breaks `cargo build --offline`
//! for everyone. This test fails fast, naming the offending manifest
//! line, instead of letting CI discover it via an unresolvable index.

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml manifests in the workspace: the root plus `crates/*`.
fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory");
    for e in entries {
        let m = e.expect("dir entry").path().join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    out.sort();
    assert!(out.len() >= 2, "expected the root manifest plus crates/*");
    out
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when a dependency value resolves in-tree: a `path = "..."` dep,
/// or `workspace = true` (which defers to `[workspace.dependencies]`,
/// itself audited to be all-path).
fn value_is_hermetic(value: &str) -> bool {
    value.contains("path") && value.contains('=') || value.contains("workspace")
}

#[test]
fn all_dependencies_are_in_tree() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        // Section headers like `[dependencies.foo]` declare one dependency
        // as a sub-table; its body must contain a hermetic key.
        let mut pending_subtable: Option<(String, usize)> = None;
        let mut subtable_ok = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if let Some((name, at)) = pending_subtable.take() {
                    if !subtable_ok {
                        violations.push(format!(
                            "{}:{}: dependency table `{name}` has no path/workspace key",
                            manifest.display(),
                            at + 1
                        ));
                    }
                }
                let section = line.trim_matches(|c| c == '[' || c == ']');
                let dep_sections = [
                    "dependencies",
                    "dev-dependencies",
                    "build-dependencies",
                    "workspace.dependencies",
                ];
                in_dep_section = dep_sections.contains(&section);
                if let Some(dep) = dep_sections
                    .iter()
                    .find_map(|s| section.strip_prefix(&format!("{s}.")))
                {
                    pending_subtable = Some((dep.to_string(), lineno));
                    subtable_ok = false;
                    in_dep_section = false;
                }
                continue;
            }
            if pending_subtable.is_some() {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    subtable_ok = true;
                }
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            // `foo.workspace = true` spells the key with a dotted suffix.
            if key.ends_with(".workspace") {
                continue;
            }
            if !value_is_hermetic(value) {
                violations.push(format!(
                    "{}:{}: dependency `{key}` is not an in-tree path/workspace dep: {}",
                    manifest.display(),
                    lineno + 1,
                    line
                ));
            }
        }
        if let Some((name, at)) = pending_subtable {
            if !subtable_ok {
                violations.push(format!(
                    "{}:{}: dependency table `{name}` has no path/workspace key",
                    manifest.display(),
                    at + 1
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (the build environment cannot \
         fetch registry or git crates):\n{}",
        violations.join("\n")
    );
}

/// The shim crate itself must depend on nothing — it is the one place
/// third-party functionality is re-implemented, so it can never pull
/// anything in.
#[test]
fn support_crate_has_no_dependencies() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/support/Cargo.toml")
        .into_os_string();
    let text = fs::read_to_string(&manifest).expect("support manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.starts_with('[') {
            in_deps = line.starts_with("[dependencies")
                || line.starts_with("[dev-dependencies")
                || line.starts_with("[build-dependencies");
            continue;
        }
        assert!(
            !(in_deps && line.contains('=')),
            "aji-support must stay dependency-free, found: {line}"
        );
    }
}

/// The audited workspace layout matches what `[workspace] members`
/// declares — a new crate directory cannot dodge the audit.
#[test]
fn audit_covers_every_workspace_member() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        text.contains("members = [\"crates/*\"]"),
        "workspace members changed; update tests/hermetic.rs to audit the new layout"
    );
    // Every crates/* entry must actually be a package (so the glob above
    // finding manifests is exhaustive).
    for e in fs::read_dir(root.join("crates")).expect("crates/") {
        let p = e.expect("entry").path();
        assert!(
            p.join("Cargo.toml").is_file(),
            "{} is in crates/ but has no Cargo.toml",
            p.display()
        );
    }
}
