//! Differential test: bytecode VM vs tree-walker.
//!
//! The VM's contract (`crates/interp/src/vm.rs`) is *observational
//! identity*: for every program, running with `use_vm: true` must produce
//! the same tracer event stream, the same dynamic call graph, and the
//! same work counters (steps, calls, budget exhaustions, …) as the
//! tree-walker — the VM may only be faster. This test pushes a slice of
//! the PR 5 fuzz-generator corpus through both engines and asserts
//! byte-identical observations, both serially and under the parallel
//! corpus driver's thread pool (`threads = 1` and `threads = 4`), so
//! engine parity and thread-count determinism are pinned together.
//!
//! Every run uses approximate-interpretation options (`approx_defaults`)
//! plus a forced-call sweep over each function definition the tracer saw
//! — the worklist's `f.apply(w, p*)` hot path, which is exactly the path
//! the VM was built for.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use aji_ast::{Loc, NodeId};
use aji_interp::tracer::Tracer;
use aji_interp::{Interp, InterpOptions, Value};
use aji_oracle::{case_config, case_seed};
use aji_support::check::TestCase;

/// Master seed for the fuzz slice (distinct from the oracle suites so the
/// cases differ from theirs).
const SEED: u64 = 7;
/// Fuzz cases per engine per thread configuration.
const CASES: usize = 20;

/// Counters that must agree between engines. IC and compile counters are
/// deliberately absent: they describe *how* the VM ran, not *what* the
/// program did.
const WORK_COUNTERS: [&str; 6] = [
    "interp.steps",
    "interp.calls",
    "interp.forced_calls",
    "interp.budget_exhaustions",
    "interp.proxy_ops",
    "interp.builtin_dispatches",
];

/// Records every tracer event verbatim (Debug-formatted, so object ids
/// and locations must match exactly) plus the dynamic call graph and the
/// function values needed for the forced-call sweep.
#[derive(Default)]
struct Recorder {
    events: Vec<String>,
    cg: aji_interp::DynCallGraph,
    funcs: Vec<Value>,
}

impl Tracer for Recorder {
    fn on_alloc(&mut self, loc: Option<Loc>) {
        self.events.push(format!("alloc {loc:?}"));
    }
    fn on_function_def(&mut self, def: NodeId, loc: Option<Loc>, value: &Value) {
        self.events.push(format!("fn-def {def:?} {loc:?} {value:?}"));
        self.funcs.push(value.clone());
    }
    fn on_call(&mut self, call_site: Option<Loc>, callee_def: NodeId, callee_loc: Option<Loc>) {
        self.events
            .push(format!("call {call_site:?} {callee_def:?} {callee_loc:?}"));
        self.cg.on_call(call_site, callee_def, callee_loc);
    }
    fn on_dynamic_read(&mut self, op_loc: Loc, result: &Value, result_loc: Option<Loc>) {
        self.events
            .push(format!("dyn-read {op_loc:?} {result:?} {result_loc:?}"));
    }
    fn on_dynamic_write(
        &mut self,
        op_loc: Option<Loc>,
        obj_loc: Option<Loc>,
        prop: &str,
        value_loc: Option<Loc>,
        value: &Value,
    ) {
        self.events.push(format!(
            "dyn-write {op_loc:?} {obj_loc:?} {prop} {value_loc:?} {value:?}"
        ));
    }
    fn on_proxy_base_read(&mut self, op_loc: Loc, key: &str) {
        self.events.push(format!("proxy-base-read {op_loc:?} {key}"));
    }
    fn on_static_write(&mut self, obj: &Value, prop: &str, value: &Value) {
        self.events
            .push(format!("static-write {obj:?} {prop} {value:?}"));
    }
    fn on_require(&mut self, site: Loc, name: &str, resolved: Option<&str>) {
        self.events
            .push(format!("require {site:?} {name} {resolved:?}"));
    }
}

/// Everything one engine observed on one fuzz case. `vm_compiles` is not
/// part of engine parity (the tree-walker never compiles); the parity
/// test compares the other fields and uses it only to prove the VM
/// actually engaged.
#[derive(PartialEq, Debug)]
struct Digest {
    events: Vec<String>,
    call_graph: Vec<String>,
    counters: Vec<(String, u64)>,
    vm_compiles: u64,
}

/// Runs fuzz case `case` on one engine: every module executed in file
/// order, then a forced call of every recorded function definition, all
/// under a scoped observability registry.
fn run_case(case: usize, use_vm: bool) -> Digest {
    let mut tc = TestCase::with_seed(case_seed(SEED, case));
    let cfg = case_config(&mut tc, case);
    let project = aji_corpus::generate(&cfg);

    let registry = Arc::new(aji_obs::Registry::new());
    let (events, call_graph) = aji_obs::scoped(&registry, || {
        let rec = Rc::new(RefCell::new(Recorder::default()));
        let opts = InterpOptions {
            use_vm,
            ..InterpOptions::approx_defaults()
        };
        let mut interp =
            Interp::with_options(&project, opts, Box::new(rec.clone())).expect("parse");
        for f in &project.files {
            let r = interp.run_module(&f.path);
            rec.borrow_mut()
                .events
                .push(format!("module {} -> {r:?}", f.path));
        }
        let funcs: Vec<Value> = rec.borrow().funcs.clone();
        for (i, f) in funcs.iter().enumerate() {
            let r = interp.call_function(f.clone(), Value::Undefined, &[]);
            rec.borrow_mut().events.push(format!("forced {i} -> {r:?}"));
        }
        let rec = rec.borrow();
        let call_graph = rec.cg.edges.iter().map(|e| format!("{e:?}")).collect();
        (rec.events.clone(), call_graph)
    });
    let report = registry.report();
    let counters = WORK_COUNTERS
        .iter()
        .map(|n| ((*n).to_string(), report.counter(n).unwrap_or(0)))
        .collect();
    Digest {
        events,
        call_graph,
        counters,
        vm_compiles: report.counter("interp.vm_compiles").unwrap_or(0),
    }
}

/// Both engines over all cases with the given worker count, via the same
/// thread pool the corpus driver uses.
fn run_all(threads: usize) -> Vec<(Digest, Digest)> {
    aji_support::par::map((0..CASES).collect(), threads, |case| {
        (run_case(case, false), run_case(case, true))
    })
}

#[test]
fn vm_matches_tree_walker_on_fuzz_corpus() {
    let all = run_all(1);
    let compiled: u64 = all.iter().map(|(_, vm)| vm.vm_compiles).sum();
    assert!(
        compiled > 0,
        "the VM must compile at least one function across the corpus \
         (otherwise this differential is tree-walker vs tree-walker)"
    );
    for (case, (tree, vm)) in all.into_iter().enumerate() {
        assert_eq!(
            tree.counters, vm.counters,
            "case {case}: work counters diverged"
        );
        assert_eq!(
            tree.call_graph, vm.call_graph,
            "case {case}: dynamic call graphs diverged"
        );
        // Event streams last: the longest output, so only shown when the
        // cheap summaries already agree.
        assert_eq!(
            tree.events, vm.events,
            "case {case}: tracer event streams diverged"
        );
        assert!(
            tree.counters.iter().any(|(n, v)| n == "interp.steps" && *v > 0),
            "case {case}: workload must actually execute"
        );
    }
}

#[test]
fn differential_runs_are_thread_count_invariant() {
    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(serial.len(), parallel.len());
    for (case, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "case {case}: digests differ between threads=1 and threads=4");
    }
}
