//! End-to-end observability: running the pipeline under a scoped registry
//! yields a span tree covering every phase with nonzero counters from all
//! four layers (parser, interpreter, approx worklist, pta solver), and the
//! per-run `ObsReport` round-trips through `BenchmarkReport` JSON.

use aji::{run_benchmark, PipelineOptions};
use aji_ast::Project;
use aji_obs::{ObsReport, Registry};
use aji_support::Json;
use std::sync::Arc;

/// The crate doc example: a dynamic method table only the extended
/// analysis resolves — exercises hints, proxy reads and forced calls.
fn doc_example() -> Project {
    let mut p = Project::new("obs-demo");
    p.add_file(
        "index.js",
        "var api = {};\n\
         ['go', 'stop'].forEach(function(m) { api[m] = function() { return m; }; });\n\
         api.go();\n\
         api.stop();",
    );
    p.test_driver = Some("index.js".to_string());
    p
}

#[test]
fn pipeline_obs_covers_all_phases() {
    let reg = Arc::new(Registry::new());
    let report = aji_obs::scoped(&reg, || {
        run_benchmark(&doc_example(), &PipelineOptions::with_dynamic_cg())
    })
    .expect("pipeline runs");
    let obs = report.obs.as_ref().expect("scoped registry => obs report");

    // The span tree covers every phase of the pipeline.
    for name in [
        "pipeline",
        "parse",
        "approx-interp",
        "baseline-pta",
        "extended-pta",
        "dynamic-cg",
        "resolve-scopes",
        "generate",
        "apply-hints",
        "solve",
        "extract-cg",
        "worklist",
    ] {
        let s = obs.span_named(name).unwrap_or_else(|| panic!("span {name} missing"));
        assert!(s.count > 0, "span {name} never closed");
    }
    // Phase spans nest under the pipeline root.
    let solve = obs.span_named("solve").unwrap();
    assert!(
        solve.path.starts_with("pipeline/"),
        "solve should nest under pipeline, got {}",
        solve.path
    );

    // Every layer recorded work.
    for counter in [
        "parser.files",
        "parser.tokens",
        "parser.nodes",
        "interp.steps",
        "approx.iterations",
        "approx.write_hints",
        "pta.propagations",
        "pta.cells",
        "pta.hints_applied",
    ] {
        assert!(
            obs.counter(counter).unwrap_or(0) > 0,
            "counter {counter} should be nonzero"
        );
    }

    // The seconds fields come from the same guards as the span tree.
    assert!(report.total_seconds > 0.0);
    assert!(
        report.baseline_seconds + report.approx_seconds + report.extended_seconds
            <= report.total_seconds
    );

    // The per-run report was absorbed into the enclosing registry.
    let outer = reg.report();
    assert_eq!(outer.counter("interp.steps"), obs.counter("interp.steps"));

    // Full JSON round-trip through the BenchmarkReport "obs" field.
    let doc = Json::parse(&report.to_json().to_string()).expect("report JSON parses");
    let obs_json = doc.get("obs").expect("obs field present");
    let back = ObsReport::from_json_str(&obs_json.to_string()).expect("obs reparses");
    assert_eq!(&back, obs);
}

#[test]
fn obs_off_means_no_report_and_same_results() {
    if aji_obs::enabled() {
        return; // AJI_OBS set in the environment; nothing to assert.
    }
    let on = {
        let reg = Arc::new(Registry::new());
        aji_obs::scoped(&reg, || {
            run_benchmark(&doc_example(), &PipelineOptions::default())
        })
        .unwrap()
    };
    let off = run_benchmark(&doc_example(), &PipelineOptions::default()).unwrap();
    assert!(off.obs.is_none(), "no registry active => no obs report");
    assert!(off.total_seconds > 0.0, "timings survive without obs");
    // Collection must not change analysis results.
    assert_eq!(off.baseline.call_edges, on.baseline.call_edges);
    assert_eq!(off.extended.call_edges, on.extended.call_edges);
    assert_eq!(off.hint_count, on.hint_count);
    assert_eq!(off.hints, on.hints);
}
