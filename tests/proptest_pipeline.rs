//! Property-based end-to-end tests (ported from proptest to the in-tree
//! `aji-support` check harness): over randomly configured generated
//! projects, the paper's core invariants must hold — hints never remove
//! edges or reachability, recall never decreases, and the pipeline is
//! deterministic.

use aji::{run_benchmark, PipelineOptions};
use aji_approx::Hints;
use aji_ast::{FileId, Loc};
use aji_corpus::GenConfig;
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq};

fn config(tc: &mut TestCase) -> GenConfig {
    let seed = tc.int_in(0u64..1_000_000);
    GenConfig {
        name: format!("prop-{seed}"),
        seed,
        libs: tc.int_in(1usize..4),
        methods_per_lib: tc.int_in(2usize..8),
        dynamic_fraction: tc.int_in(0u8..11) as f64 / 10.0,
        app_modules: tc.int_in(1usize..4),
        calls_per_module: tc.int_in(1usize..5),
        use_mixin: tc.bool(),
        use_emitter: tc.bool(),
        driver_coverage: tc.int_in(0u8..11) as f64 / 10.0,
        vulns: 1,
        hard_dispatch_fraction: tc.int_in(0u8..6) as f64 / 10.0,
        computed_writes: tc.int_in(0usize..3),
        accessor_methods: tc.int_in(0usize..3),
        // The monotonicity properties are about call-graph recovery;
        // seeded property typos are the finder's concern (aji-quant).
        typo_injections: 0,
    }
}

#[test]
fn hints_are_monotone_improvements() {
    property("hints_are_monotone_improvements").cases(24).run(|tc| {
        let cfg = config(tc);
        let project = aji_corpus::generate(&cfg);
        let report = run_benchmark(&project, &PipelineOptions::with_dynamic_cg())
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        prop_assert!(report.extended.call_edges >= report.baseline.call_edges);
        prop_assert!(report.extended.reachable_functions >= report.baseline.reachable_functions);
        prop_assert!(report.extended.resolved_sites >= report.baseline.resolved_sites);
        if let Some(acc) = report.accuracy {
            prop_assert!(
                acc.extended.recall_pct() + 1e-9 >= acc.baseline.recall_pct(),
                "recall fell: {} -> {}",
                acc.baseline.recall_pct(),
                acc.extended.recall_pct()
            );
        }
        if let Some(v) = report.vulns {
            prop_assert!(v.reachable_extended >= v.reachable_baseline);
            prop_assert!(v.reachable_extended <= v.total);
        }
        Ok(())
    });
}

#[test]
fn pipeline_is_deterministic() {
    property("pipeline_is_deterministic").cases(24).run(|tc| {
        let cfg = config(tc);
        let project = aji_corpus::generate(&cfg);
        let a = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        let b = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        prop_assert_eq!(a.hint_count, b.hint_count);
        prop_assert_eq!(a.extended.call_edges, b.extended.call_edges);
        prop_assert_eq!(a.extended_call_graph.edges, b.extended_call_graph.edges);
        Ok(())
    });
}

#[test]
fn hint_merge_is_idempotent_and_monotone() {
    const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
    property("hint_merge_is_idempotent_and_monotone")
        .cases(128)
        .run(|tc| {
            let writes = tc.vec_of(0..12, |t| {
                (t.int_in(1u32..30), t.string_of(LOWER, 1..5), t.int_in(1u32..30))
            });
            let reads = tc.vec_of(0..12, |t| (t.int_in(1u32..30), t.int_in(1u32..30)));
            let mut a = Hints::new();
            for (l, p, v) in &writes {
                a.add_write(Loc::new(FileId(0), *l, 1), p.clone(), Loc::new(FileId(0), *v, 1));
            }
            for (op, r) in &reads {
                a.add_read(Loc::new(FileId(0), *op, 1), Loc::new(FileId(0), *r, 1));
            }
            let before = a.len();
            let snapshot = a.clone();
            a.merge(&snapshot);
            prop_assert_eq!(a.len(), before, "merge with self changed size");
            // Merging anything is monotone.
            let mut b = Hints::new();
            b.add_write(Loc::new(FileId(1), 1, 1), "zz", Loc::new(FileId(1), 2, 1));
            a.merge(&b);
            prop_assert!(a.len() >= before);
            Ok(())
        });
}
