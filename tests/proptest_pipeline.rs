//! Property-based end-to-end tests: over randomly configured generated
//! projects, the paper's core invariants must hold — hints never remove
//! edges or reachability, recall never decreases, and the pipeline is
//! deterministic.

use aji::{run_benchmark, PipelineOptions};
use aji_approx::Hints;
use aji_ast::{FileId, Loc};
use aji_corpus::GenConfig;
use proptest::prelude::*;

fn config() -> impl Strategy<Value = GenConfig> {
    (
        0u64..1_000_000,          // seed
        1usize..4,                // libs
        2usize..8,                // methods per lib
        0u8..=10,                 // dynamic fraction (tenths)
        1usize..4,                // app modules
        1usize..5,                // calls per module
        any::<bool>(),            // mixin
        any::<bool>(),            // emitter
        0u8..=10,                 // driver coverage (tenths)
        0u8..=5,                  // hard dispatch (tenths)
    )
        .prop_map(
            |(seed, libs, methods, dynf, mods, calls, mixin, emitter, cov, hard)| GenConfig {
                name: format!("prop-{seed}"),
                seed,
                libs,
                methods_per_lib: methods,
                dynamic_fraction: dynf as f64 / 10.0,
                app_modules: mods,
                calls_per_module: calls,
                use_mixin: mixin,
                use_emitter: emitter,
                driver_coverage: cov as f64 / 10.0,
                vulns: 1,
                hard_dispatch_fraction: hard as f64 / 10.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hints_are_monotone_improvements(cfg in config()) {
        let project = aji_corpus::generate(&cfg);
        let report = run_benchmark(&project, &PipelineOptions::with_dynamic_cg())
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        prop_assert!(report.extended.call_edges >= report.baseline.call_edges);
        prop_assert!(
            report.extended.reachable_functions >= report.baseline.reachable_functions
        );
        prop_assert!(report.extended.resolved_sites >= report.baseline.resolved_sites);
        if let Some(acc) = report.accuracy {
            prop_assert!(
                acc.extended.recall_pct() + 1e-9 >= acc.baseline.recall_pct(),
                "recall fell: {} -> {}",
                acc.baseline.recall_pct(),
                acc.extended.recall_pct()
            );
        }
        if let Some(v) = report.vulns {
            prop_assert!(v.reachable_extended >= v.reachable_baseline);
            prop_assert!(v.reachable_extended <= v.total);
        }
    }

    #[test]
    fn pipeline_is_deterministic(cfg in config()) {
        let project = aji_corpus::generate(&cfg);
        let a = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        let b = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        prop_assert_eq!(a.hint_count, b.hint_count);
        prop_assert_eq!(a.extended.call_edges, b.extended.call_edges);
        prop_assert_eq!(
            a.extended_call_graph.edges,
            b.extended_call_graph.edges
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hint_merge_is_idempotent_and_monotone(
        writes in proptest::collection::vec((1u32..30, "[a-z]{1,4}", 1u32..30), 0..12),
        reads in proptest::collection::vec((1u32..30, 1u32..30), 0..12),
    ) {
        let mut a = Hints::new();
        for (l, p, v) in &writes {
            a.add_write(Loc::new(FileId(0), *l, 1), p.clone(), Loc::new(FileId(0), *v, 1));
        }
        for (op, r) in &reads {
            a.add_read(Loc::new(FileId(0), *op, 1), Loc::new(FileId(0), *r, 1));
        }
        let before = a.len();
        let snapshot = a.clone();
        a.merge(&snapshot);
        prop_assert_eq!(a.len(), before, "merge with self changed size");
        // Merging anything is monotone.
        let mut b = Hints::new();
        b.add_write(Loc::new(FileId(1), 1, 1), "zz", Loc::new(FileId(1), 2, 1));
        a.merge(&b);
        prop_assert!(a.len() >= before);
    }
}
