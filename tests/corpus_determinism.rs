//! Thread-count invariance of the shared corpus driver.
//!
//! `aji_bench::run_corpus` promises that parallel output is byte-identical
//! to serial output apart from wall-clock fields (see the `aji-bench`
//! crate docs and BENCHMARKS.md). This test pins that promise on a fixed
//! (seeded, deterministic) corpus slice:
//!
//! * the deterministic corpus report (`corpus_metrics_json`, which every
//!   binary's `--json` mode prints) must be **byte-identical** between
//!   `threads = 1` and `threads = 4`;
//! * the observability data absorbed into the caller's registry must
//!   agree on every counter, every histogram bucket, and every span path
//!   and hit count — only span *durations* may differ.

use aji::PipelineOptions;
use aji_bench::{corpus_metrics_json, run_corpus};
use aji_obs::ObsReport;
use std::sync::Arc;

/// A fixed slice of the seeded corpus: all 14 hand-written pattern
/// projects plus 2 generated ones — small enough for a test, varied
/// enough to exercise every pipeline phase (some projects carry
/// vulnerability annotations and test drivers).
fn corpus_slice() -> Vec<aji_ast::Project> {
    aji_corpus::table1_benchmarks().into_iter().take(16).collect()
}

/// Runs the slice through `run_corpus` under a scoped registry and
/// returns (deterministic corpus report bytes, absorbed obs snapshot).
fn run(threads: usize) -> (String, ObsReport) {
    let reg = Arc::new(aji_obs::Registry::new());
    let results = aji_obs::scoped(&reg, || {
        run_corpus(corpus_slice(), &PipelineOptions::default(), threads)
    });
    assert!(
        results.iter().all(|r| r.outcome.is_ok()),
        "corpus slice must analyze cleanly"
    );
    (corpus_metrics_json(&results).to_string(), reg.report())
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let (serial, _) = run(1);
    let (parallel, _) = run(4);
    assert_eq!(serial, parallel);
}

#[test]
fn absorbed_obs_is_thread_count_invariant() {
    let (_, serial) = run(1);
    let (_, parallel) = run(4);
    assert_eq!(serial.counters, parallel.counters, "counters must agree");
    assert_eq!(
        serial.histograms, parallel.histograms,
        "histogram buckets must agree"
    );
    // Span durations are wall-clock and may differ; paths and hit counts
    // may not.
    let shape = |r: &ObsReport| -> Vec<(String, u64)> {
        r.spans.iter().map(|s| (s.path.clone(), s.count)).collect()
    };
    assert_eq!(shape(&serial), shape(&parallel), "span tree shape must agree");
    assert_eq!(
        serial.counter("corpus.projects"),
        Some(corpus_slice().len() as u64)
    );
}

#[test]
fn results_keep_corpus_order() {
    let expected: Vec<String> = corpus_slice().iter().map(|p| p.name.clone()).collect();
    let results = run_corpus(corpus_slice(), &PipelineOptions::default(), 4);
    let got: Vec<String> = results.iter().map(|r| r.name.clone()).collect();
    assert_eq!(got, expected);
}
