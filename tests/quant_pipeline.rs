//! Workspace-level regression tests for `aji-quant`: determinism of the
//! counterfactual cause ranking and the property-access finder, plus the
//! finder's recall guarantee against generator-injected typos.
//!
//! The determinism contract matches the rest of the workspace: reports
//! are byte-identical across thread counts and across reruns
//! (`scripts/check-hermetic.sh` re-checks the same property end-to-end
//! through the `aji-quant` binary).

use aji_corpus::{generate_with_manifest, GenConfig, InjectedTypo};
use aji_oracle::OracleOptions;
use aji_quant::{evaluate, find_anomalies, rank_corpus, FinderOptions};
use aji_support::check::property;

/// A small mixed corpus: hand-written patterns plus typo-seeded
/// generated projects (with their manifests), mirroring what the
/// `aji-quant` binary runs.
fn mixed_corpus(
    typo_count: usize,
    base_seed: u64,
) -> (Vec<aji_ast::Project>, Vec<(String, Vec<InjectedTypo>)>) {
    let mut projects: Vec<_> = aji_corpus::pattern_projects()
        .into_iter()
        .take(6)
        .collect();
    let mut manifests = Vec::new();
    for (i, mut cfg) in aji_corpus::population_configs(typo_count, base_seed)
        .into_iter()
        .enumerate()
    {
        cfg.name = format!("typo-{i:03}");
        cfg.typo_injections = 2 + i % 3;
        let (p, typos) = generate_with_manifest(&cfg);
        manifests.push((p.name.clone(), typos));
        projects.push(p);
    }
    (projects, manifests)
}

#[test]
fn ranking_json_is_thread_invariant_and_repeatable() {
    let (projects, _) = mixed_corpus(3, 41);
    let opts = OracleOptions::default();
    let mk = |threads: usize| rank_corpus(projects.clone(), &opts, threads).to_json().to_string();
    let serial = mk(1);
    let parallel = mk(4);
    assert_eq!(
        serial, parallel,
        "cause ranking must be byte-identical across thread counts"
    );
    let again = mk(1);
    assert_eq!(serial, again, "cause ranking must be rerun-stable");
}

#[test]
fn finder_report_is_thread_invariant_and_repeatable() {
    let (projects, _) = mixed_corpus(3, 41);
    let opts = FinderOptions::default();
    let mk = |threads: usize| {
        find_anomalies(projects.clone(), &opts, threads)
            .to_json()
            .to_string()
    };
    let serial = mk(1);
    let parallel = mk(4);
    assert_eq!(
        serial, parallel,
        "finder report must be byte-identical across thread counts"
    );
    let again = mk(1);
    assert_eq!(serial, again, "finder report must be rerun-stable");
}

#[test]
fn finder_recovers_injected_typos_at_default_threshold() {
    // The ≥90%-recall guarantee, as a property over generator seeds and
    // layout knobs: every case builds a few typo-seeded projects and
    // checks the finder recovers at least 90% of the manifest at the
    // default threshold.
    property("quant::finder_recall").cases(6).run(|tc| {
        let base_seed = tc.choice(1 << 16);
        let mut projects = Vec::new();
        let mut manifests = Vec::new();
        for i in 0..3usize {
            let mut cfg = GenConfig::small(format!("prop-{i}"), base_seed ^ (i as u64) << 8);
            cfg.typo_injections = 2 + tc.int_in(0..3usize);
            cfg.use_mixin = tc.bool();
            cfg.use_emitter = tc.bool();
            cfg.methods_per_lib = 2 + tc.int_in(0..6usize);
            let (p, typos) = generate_with_manifest(&cfg);
            manifests.push((p.name.clone(), typos));
            projects.push(p);
        }
        let report = find_anomalies(projects, &FinderOptions::default(), 2);
        let eval = evaluate(&report, &manifests);
        aji_support::prop_assert!(
            eval.recall_pct >= 90.0,
            "recall {}% below 90% (injected {}, recovered {})",
            eval.recall_pct,
            eval.injected,
            eval.recovered
        );
        // Measured precision comes along for free: flagged candidates in
        // the generated projects are either injected typos or nothing.
        aji_support::prop_assert!(
            eval.precision_pct >= eval.recall_pct.min(90.0) || eval.flagged == 0,
            "precision {}% collapsed (flagged {})",
            eval.precision_pct,
            eval.flagged
        );
        Ok(())
    });
}

#[test]
fn evaluate_counts_partial_recovery() {
    // evaluate() arithmetic on a hand-built report: one of two injected
    // typos flagged, plus one false positive.
    let mk = |project: &str, prop: &str, confidence: f64| aji_quant::Candidate {
        project: project.to_string(),
        site: "test/driver.js:1:1".to_string(),
        prop: prop.to_string(),
        nearest: Some("op0".to_string()),
        confidence,
        support: 10,
        count: 1,
    };
    let report = aji_quant::FinderReport {
        candidates: vec![
            mk("a", "opx", 1.0),
            mk("a", "other", 1.0),
            mk("a", "opq", 0.5), // below threshold: not flagged
        ],
        threshold: 0.9,
        errors: Vec::new(),
    };
    let typo = |prop: &str| InjectedTypo {
        path: "test/driver.js".to_string(),
        lib: 0,
        prop: prop.to_string(),
        original: "op0".to_string(),
    };
    let manifests = vec![("a".to_string(), vec![typo("opx"), typo("opq")])];
    let eval = evaluate(&report, &manifests);
    assert_eq!(eval.injected, 2);
    assert_eq!(eval.flagged, 2);
    assert_eq!(eval.recovered, 1);
    assert_eq!(eval.true_positives, 1);
    assert!((eval.recall_pct - 50.0).abs() < 1e-9);
    assert!((eval.precision_pct - 50.0).abs() < 1e-9);
}
