//! Cross-crate integration tests: the full pipeline on the corpus, the
//! invariants the experiments rely on, and determinism guarantees.

use aji::{run_benchmark, PipelineOptions};
use aji_approx::{approximate_interpret, ApproxOptions};
use aji_pta::{analyze, AnalysisOptions, CgMetrics};

#[test]
fn every_pattern_project_completes_the_pipeline() {
    for project in aji_corpus::pattern_projects() {
        let report = run_benchmark(&project, &PipelineOptions::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", project.name));
        assert!(
            report.extended.call_edges >= report.baseline.call_edges,
            "{}: hints must never remove edges",
            project.name
        );
        assert!(
            report.extended.reachable_functions >= report.baseline.reachable_functions,
            "{}: hints must never reduce reachability",
            project.name
        );
    }
}

#[test]
fn pattern_projects_gain_edges_from_hints() {
    // Each hand-written pattern embodies a dynamic idiom, so all but the
    // purely-static ones must gain call edges from hints.
    let mut gained = 0;
    let mut total = 0;
    for project in aji_corpus::pattern_projects() {
        let report = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        total += 1;
        if report.extended.call_edges > report.baseline.call_edges {
            gained += 1;
        }
    }
    assert!(
        gained * 10 >= total * 8,
        "only {gained}/{total} pattern projects gained edges"
    );
}

#[test]
fn recall_never_decreases_and_typically_improves() {
    let mut improved = 0;
    let mut measured = 0;
    for project in aji_corpus::pattern_projects() {
        let report = run_benchmark(&project, &PipelineOptions::with_dynamic_cg()).unwrap();
        let Some(acc) = report.accuracy else { continue };
        if acc.dynamic_edges == 0 {
            continue;
        }
        measured += 1;
        assert!(
            acc.extended.recall_pct() + 1e-9 >= acc.baseline.recall_pct(),
            "{}: recall decreased {} -> {}",
            project.name,
            acc.baseline.recall_pct(),
            acc.extended.recall_pct()
        );
        if acc.extended.recall_pct() > acc.baseline.recall_pct() {
            improved += 1;
        }
    }
    assert!(measured >= 10, "too few measurable projects");
    assert!(improved >= measured / 2, "{improved}/{measured} improved");
}

#[test]
fn hints_are_deterministic() {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .unwrap();
    let a = approximate_interpret(&project, &ApproxOptions::default()).unwrap();
    let b = approximate_interpret(&project, &ApproxOptions::default()).unwrap();
    assert_eq!(a.hints.writes, b.hints.writes);
    assert_eq!(a.hints.reads, b.hints.reads);
    assert_eq!(a.hints.modules, b.hints.modules);
}

#[test]
fn analysis_is_deterministic() {
    let project = aji_corpus::generate(&aji_corpus::GenConfig::small("det-e2e", 11));
    let h = approximate_interpret(&project, &ApproxOptions::default())
        .unwrap()
        .hints;
    let a = analyze(&project, Some(&h), &AnalysisOptions::extended()).unwrap();
    let b = analyze(&project, Some(&h), &AnalysisOptions::extended()).unwrap();
    assert_eq!(a.call_graph.edges, b.call_graph.edges);
    assert_eq!(
        a.call_graph.reachable_functions,
        b.call_graph.reachable_functions
    );
}

#[test]
fn interpreter_and_analysis_agree_on_locations() {
    // The hint pipeline only works if the interpreter's parse and the
    // analysis' parse assign identical locations. Verify through a
    // project whose hints all land.
    let mut project = aji_ast::Project::new("loc-agreement");
    project.add_file(
        "index.js",
        "var t = {};\n\
         var k = 'a';\n\
         t[k] = function tagged() {};\n\
         t.a();",
    );
    let h = approximate_interpret(&project, &ApproxOptions::default())
        .unwrap()
        .hints;
    assert_eq!(h.writes.len(), 1);
    let analysis = analyze(&project, Some(&h), &AnalysisOptions::extended()).unwrap();
    assert!(analysis.hints_applied >= 1);
    // The edge from line 4 to the function on line 3 requires exact loc
    // agreement between the two parses.
    assert!(analysis
        .call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == 4 && f.line == 3));
}

#[test]
fn ablation_write_hints_only() {
    // Table 2's `*` case: [DPR] disabled, [DPW] only.
    let mut project = aji_ast::Project::new("ablation");
    project.add_file(
        "index.js",
        "var t = { inner: function stored() {} };\n\
         var k1 = 'inner';\n\
         var f = t[k1];\n\
         f();\n\
         var api = {};\n\
         api[k1] = function written() {};\n\
         api.inner();",
    );
    let h = approximate_interpret(&project, &ApproxOptions::default())
        .unwrap()
        .hints;
    let w_only = AnalysisOptions {
        use_read_hints: false,
        use_module_hints: false,
        ..AnalysisOptions::extended()
    };
    let r_only = AnalysisOptions {
        use_write_hints: false,
        use_module_hints: false,
        ..AnalysisOptions::extended()
    };
    let aw = analyze(&project, Some(&h), &w_only).unwrap();
    let ar = analyze(&project, Some(&h), &r_only).unwrap();
    // Write-only recovers api.inner() (line 7 → line 6) but not f() (line
    // 4 → line 1's stored).
    assert!(aw.call_graph.edges.iter().any(|(cs, f)| cs.line == 7 && f.line == 6));
    assert!(!aw.call_graph.edges.iter().any(|(cs, f)| cs.line == 4 && f.line == 1));
    // Read-only recovers f() but not api.inner().
    assert!(ar.call_graph.edges.iter().any(|(cs, f)| cs.line == 4 && f.line == 1));
    assert!(!ar.call_graph.edges.iter().any(|(cs, f)| cs.line == 7 && f.line == 6));
}

#[test]
fn generated_population_sample_runs_end_to_end() {
    // Keep this quick: a few representatives of each size class.
    let projects: Vec<_> = aji_corpus::full_population()
        .into_iter()
        .step_by(20)
        .collect();
    for project in projects {
        let report = run_benchmark(&project, &PipelineOptions::with_dynamic_cg())
            .unwrap_or_else(|e| panic!("{} failed: {e}", project.name));
        assert!(report.extended.call_edges >= report.baseline.call_edges);
        if let Some(acc) = report.accuracy {
            assert!(acc.extended.recall_pct() + 1e-9 >= acc.baseline.recall_pct());
        }
    }
}

#[test]
fn hint_reuse_across_applications() {
    // §6: hints inferred for a library can be reused by another
    // application of the same library. Simulate by merging hints from a
    // library-only project into an application analysis.
    let mut lib_only = aji_ast::Project::new("lib-only");
    lib_only.add_file(
        "index.js",
        "module.exports = require('veneer');",
    );
    lib_only.add_file(
        "node_modules/veneer/index.js",
        "var api = {};\n\
         ['alpha', 'beta'].forEach(function(m) {\n\
         api[m] = function impl() { return m; };\n\
         });\n\
         module.exports = api;",
    );
    let lib_hints = approximate_interpret(&lib_only, &ApproxOptions::default())
        .unwrap()
        .hints;

    // The application shares the library file *verbatim and at the same
    // file index ordering*, so locations coincide.
    let mut app = aji_ast::Project::new("app");
    app.add_file("index.js", "var v = require('veneer');\nv.alpha();");
    app.add_file(
        "node_modules/veneer/index.js",
        lib_only.file("node_modules/veneer/index.js").unwrap().src.clone(),
    );
    // Without hints the call is unresolved.
    let base = analyze(&app, None, &AnalysisOptions::baseline()).unwrap();
    assert!(!base.call_graph.edges.iter().any(|(cs, _)| cs.line == 2 && cs.file.index() == 0));
    // With the *library's* hints, it resolves.
    let with = analyze(&app, Some(&lib_hints), &AnalysisOptions::extended()).unwrap();
    assert!(
        with.call_graph
            .edges
            .iter()
            .any(|(cs, f)| cs.file.index() == 0 && cs.line == 2 && f.file.index() == 1 && f.line == 3),
        "edges: {:?}",
        with.call_graph.edges
    );
}

#[test]
fn metrics_totals_are_consistent() {
    for project in aji_corpus::pattern_projects().into_iter().take(5) {
        let report = run_benchmark(&project, &PipelineOptions::default()).unwrap();
        for m in [&report.baseline, &report.extended] {
            assert!(m.resolved_sites <= m.total_sites);
            assert!(m.monomorphic_sites <= m.total_sites);
            assert!(m.reachable_functions <= m.total_functions);
            assert_eq!(
                CgMetrics::of(&report.extended_call_graph).call_edges,
                report.extended.call_edges
            );
        }
    }
}
