//! Fuzz-style robustness tests: randomly generated (syntactically valid)
//! programs must never panic any pipeline stage — the concrete
//! interpreter, the approximate interpreter, or the static analysis —
//! and the hint rules must stay monotone.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::Project;
use aji_interp::{Interp, InterpOptions, NoopTracer};
use aji_pta::{analyze, AnalysisOptions};
use proptest::prelude::*;

const KEYWORDS: &[&str] = &[
    "var", "let", "const", "function", "return", "if", "else", "while", "do", "for", "in",
    "new", "delete", "typeof", "void", "instanceof", "this", "null", "true", "false", "class",
    "extends", "super", "try", "catch", "finally", "throw", "switch", "case", "default",
    "break", "continue", "debugger", "of", "get", "set", "static", "async", "await", "yield",
    "arguments", "eval", "undefined", "NaN", "Infinity",
];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,4}".prop_filter("keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u32..1000).prop_map(|n| n.to_string()),
        "[a-z]{0,6}".prop_map(|s| format!("'{s}'")),
        Just("true".to_string()),
        Just("null".to_string()),
        Just("undefined".to_string()),
        Just("{}".to_string()),
        Just("[]".to_string()),
        ident(),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a})[{b}]")),
            (inner.clone(), ident()).prop_map(|(a, p)| format!("({a}).{p}")),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| format!("{f}({})", args.join(", "))),
            inner.clone().prop_map(|a| format!("(typeof {a})")),
            (ident(), inner.clone())
                .prop_map(|(p, b)| format!("(function({p}) {{ return {b}; }})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("({a} ? {b} : {c})")),
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|xs| format!("[{}]", xs.join(", "))),
            (ident(), inner).prop_map(|(k, v)| format!("({{ {k}: {v} }})")),
        ]
    })
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (ident(), expr()).prop_map(|(x, e)| format!("var {x} = {e};")),
        expr().prop_map(|e| format!("sink({e});")),
        (expr(), expr()).prop_map(|(c, e)| format!("if ({c}) {{ sink({e}); }}")),
        (ident(), expr()).prop_map(|(f, e)| format!("function {f}() {{ return {e}; }}")),
        (expr(), expr(), ident()).prop_map(|(o, v, k)| format!("tbl[{o}] = {v}; var {k} = tbl[{o}];")),
        (expr(), expr()).prop_map(|(a, b)| format!(
            "try {{ sink({a}); }} catch (err0) {{ sink({b}); }}"
        )),
        (ident(), expr()).prop_map(|(x, e)| format!(
            "for (var {x} = 0; {x} < 2; {x}++) {{ sink({e}); }}"
        )),
    ]
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(), 1..5).prop_map(|ss| {
        format!(
            "var tbl = {{}};\nfunction sink(x) {{ return x; }}\n{}",
            ss.join("\n")
        )
    })
}

fn tiny_budgets() -> InterpOptions {
    InterpOptions {
        max_steps: 200_000,
        max_stack: 24,
        max_loop_iters: 500,
        ..InterpOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn concrete_interpreter_never_panics(src in program()) {
        let mut p = Project::new("fuzz");
        p.add_file("index.js", src);
        let mut interp =
            Interp::with_options(&p, tiny_budgets(), Box::new(NoopTracer)).expect("parse");
        // Runtime errors (unbound names etc.) are fine; panics are not.
        let _ = interp.run_module("index.js");
    }

    #[test]
    fn approx_interpreter_never_panics(src in program()) {
        let mut p = Project::new("fuzz");
        p.add_file("index.js", src);
        let opts = ApproxOptions {
            interp: InterpOptions {
                approx: true,
                ..tiny_budgets()
            },
            ..ApproxOptions::default()
        };
        let _ = approximate_interpret(&p, &opts).expect("approx");
    }

    #[test]
    fn full_pipeline_never_panics_and_is_monotone(src in program()) {
        let mut p = Project::new("fuzz");
        p.add_file("index.js", src.clone());
        let opts = ApproxOptions {
            interp: InterpOptions {
                approx: true,
                ..tiny_budgets()
            },
            ..ApproxOptions::default()
        };
        let hints = approximate_interpret(&p, &opts).expect("approx").hints;
        let base = analyze(&p, None, &AnalysisOptions::baseline()).expect("baseline");
        let ext = analyze(&p, Some(&hints), &AnalysisOptions::extended()).expect("extended");
        // Hint rules only add tokens, so the extended call graph is a
        // superset of the baseline's.
        for e in &base.call_graph.edges {
            prop_assert!(
                ext.call_graph.edges.contains(e),
                "extended lost edge {e:?}\nprogram:\n{src}"
            );
        }
        // The non-relational mode must also be a superset of baseline.
        let non = analyze(&p, Some(&hints), &AnalysisOptions::nonrelational()).expect("nonrel");
        for e in &base.call_graph.edges {
            prop_assert!(non.call_graph.edges.contains(e));
        }
    }
}
