//! Fuzz-style robustness tests (ported from proptest to the in-tree
//! `aji-support` check harness): randomly generated (syntactically valid)
//! programs must never panic any pipeline stage — the concrete
//! interpreter, the approximate interpreter, or the static analysis —
//! and the hint rules must stay monotone.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::Project;
use aji_interp::{Interp, InterpOptions, NoopTracer};
use aji_pta::{analyze, AnalysisOptions};
use aji_support::check::{property, TestCase};
use aji_support::prop_assert;

const KEYWORDS: &[&str] = &[
    "var", "let", "const", "function", "return", "if", "else", "while", "do", "for", "in",
    "new", "delete", "typeof", "void", "instanceof", "this", "null", "true", "false", "class",
    "extends", "super", "try", "catch", "finally", "throw", "switch", "case", "default",
    "break", "continue", "debugger", "of", "get", "set", "static", "async", "await", "yield",
    "arguments", "eval", "undefined", "NaN", "Infinity",
];

fn ident(tc: &mut TestCase) -> String {
    let first = tc.char_in("abcdefghijklmnopqrstuvwxyz");
    let rest = tc.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 0..5);
    let mut s = format!("{first}{rest}");
    if KEYWORDS.contains(&s.as_str()) {
        s.push('9');
    }
    s
}

fn expr(tc: &mut TestCase, depth: u32) -> String {
    if depth == 0 || tc.ratio(1, 4) {
        return match tc.int_in(0u32..8) {
            0 => tc.int_in(0u32..1000).to_string(),
            1 => format!("'{}'", tc.string_of("abcdefghijklmnopqrstuvwxyz", 0..7)),
            2 => "true".to_string(),
            3 => "null".to_string(),
            4 => "undefined".to_string(),
            5 => "{}".to_string(),
            6 => "[]".to_string(),
            _ => ident(tc),
        };
    }
    let d = depth - 1;
    match tc.int_in(0u32..9) {
        0 => format!("({} + {})", expr(tc, d), expr(tc, d)),
        1 => format!("({})[{}]", expr(tc, d), expr(tc, d)),
        2 => format!("({}).{}", expr(tc, d), ident(tc)),
        3 => {
            let f = ident(tc);
            let args = tc.vec_of(0..3, |t| expr(t, d)).join(", ");
            format!("{f}({args})")
        }
        4 => format!("(typeof {})", expr(tc, d)),
        5 => format!("(function({}) {{ return {}; }})", ident(tc), expr(tc, d)),
        6 => format!("({} ? {} : {})", expr(tc, d), expr(tc, d), expr(tc, d)),
        7 => format!("[{}]", tc.vec_of(0..3, |t| expr(t, d)).join(", ")),
        _ => format!("({{ {}: {} }})", ident(tc), expr(tc, d)),
    }
}

fn stmt(tc: &mut TestCase) -> String {
    match tc.int_in(0u32..7) {
        0 => format!("var {} = {};", ident(tc), expr(tc, 3)),
        1 => format!("sink({});", expr(tc, 3)),
        2 => format!("if ({}) {{ sink({}); }}", expr(tc, 3), expr(tc, 3)),
        3 => format!("function {}() {{ return {}; }}", ident(tc), expr(tc, 3)),
        4 => {
            let o = expr(tc, 3);
            format!("tbl[{o}] = {}; var {} = tbl[{o}];", expr(tc, 3), ident(tc))
        }
        5 => format!(
            "try {{ sink({}); }} catch (err0) {{ sink({}); }}",
            expr(tc, 3),
            expr(tc, 3)
        ),
        _ => {
            let x = ident(tc);
            format!("for (var {x} = 0; {x} < 2; {x}++) {{ sink({}); }}", expr(tc, 3))
        }
    }
}

fn program(tc: &mut TestCase) -> String {
    let stmts = tc.vec_of(1..5, stmt);
    format!(
        "var tbl = {{}};\nfunction sink(x) {{ return x; }}\n{}",
        stmts.join("\n")
    )
}

fn tiny_budgets() -> InterpOptions {
    InterpOptions {
        max_steps: 200_000,
        max_stack: 24,
        max_loop_iters: 500,
        ..InterpOptions::default()
    }
}

#[test]
fn concrete_interpreter_never_panics() {
    property("concrete_interpreter_never_panics")
        .cases(96)
        .run(|tc| {
            let src = program(tc);
            let mut p = Project::new("fuzz");
            p.add_file("index.js", src);
            let mut interp =
                Interp::with_options(&p, tiny_budgets(), Box::new(NoopTracer)).expect("parse");
            // Runtime errors (unbound names etc.) are fine; panics are
            // not (a panic fails this #[test] directly).
            let _ = interp.run_module("index.js");
            Ok(())
        });
}

#[test]
fn approx_interpreter_never_panics() {
    property("approx_interpreter_never_panics")
        .cases(96)
        .run(|tc| {
            let src = program(tc);
            let mut p = Project::new("fuzz");
            p.add_file("index.js", src);
            let opts = ApproxOptions {
                interp: InterpOptions {
                    approx: true,
                    ..tiny_budgets()
                },
                ..ApproxOptions::default()
            };
            let _ = approximate_interpret(&p, &opts).expect("approx");
            Ok(())
        });
}

#[test]
fn full_pipeline_never_panics_and_is_monotone() {
    property("full_pipeline_never_panics_and_is_monotone")
        .cases(96)
        .run(|tc| {
            let src = program(tc);
            let mut p = Project::new("fuzz");
            p.add_file("index.js", src.clone());
            let opts = ApproxOptions {
                interp: InterpOptions {
                    approx: true,
                    ..tiny_budgets()
                },
                ..ApproxOptions::default()
            };
            let hints = approximate_interpret(&p, &opts).expect("approx").hints;
            let base = analyze(&p, None, &AnalysisOptions::baseline()).expect("baseline");
            let ext = analyze(&p, Some(&hints), &AnalysisOptions::extended()).expect("extended");
            // Hint rules only add tokens, so the extended call graph is a
            // superset of the baseline's.
            for e in &base.call_graph.edges {
                prop_assert!(
                    ext.call_graph.edges.contains(e),
                    "extended lost edge {e:?}\nprogram:\n{src}"
                );
            }
            // The non-relational mode must also be a superset of baseline.
            let non =
                analyze(&p, Some(&hints), &AnalysisOptions::nonrelational()).expect("nonrel");
            for e in &base.call_graph.edges {
                prop_assert!(non.call_graph.edges.contains(e));
            }
            Ok(())
        });
}
