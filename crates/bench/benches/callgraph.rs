//! Benchmark behind Figures 4–7: call-graph construction with and
//! without hints across corpus size classes, measuring how the extra
//! hint-induced dataflow scales. Uses the in-tree `aji-support` bench
//! harness.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_corpus::GenConfig;
use aji_pta::{analyze, AnalysisOptions, CgMetrics};
use aji_support::bench::{black_box, Suite};

fn size_class(libs: usize, mods: usize, seed: u64) -> GenConfig {
    GenConfig {
        name: format!("cls-{libs}x{mods}"),
        seed,
        libs,
        methods_per_lib: 10,
        dynamic_fraction: 0.5,
        app_modules: mods,
        calls_per_module: 5,
        use_mixin: false,
        use_emitter: false,
        driver_coverage: 0.5,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
        computed_writes: 0,
        accessor_methods: 0,
    }
}

fn main() {
    let mut suite = Suite::new("fig4-7-callgraph").iters(15);
    for (libs, mods) in [(2usize, 2usize), (6, 6), (12, 12)] {
        let cfg = size_class(libs, mods, 4242);
        let project = aji_corpus::generate(&cfg);
        let hints = approximate_interpret(&project, &ApproxOptions::default())
            .expect("approx")
            .hints;
        // Sanity: hints must add edges, otherwise the benchmark measures
        // the wrong thing.
        let b = analyze(&project, None, &AnalysisOptions::baseline()).unwrap();
        let x = analyze(&project, Some(&hints), &AnalysisOptions::extended()).unwrap();
        assert!(
            CgMetrics::of(&x.call_graph).call_edges > CgMetrics::of(&b.call_graph).call_edges
        );
        let label = format!("{libs}libs-{mods}mods");
        suite.bench(format!("baseline/{label}"), || {
            black_box(analyze(&project, None, &AnalysisOptions::baseline()).unwrap())
        });
        suite.bench(format!("extended/{label}"), || {
            black_box(analyze(&project, Some(&hints), &AnalysisOptions::extended()).unwrap())
        });
    }
    suite.finish();
}
