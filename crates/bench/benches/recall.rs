//! Criterion benchmark behind Table 2: producing dynamic call graphs
//! (concrete interpreter runs of test drivers) and comparing static call
//! graphs against them.

use aji::{dynamic_call_graph, PipelineOptions};
use aji_interp::InterpOptions;
use aji_pta::{analyze, Accuracy, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_recall(c: &mut Criterion) {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .expect("webframe");
    let _ = PipelineOptions::default();

    let mut g = c.benchmark_group("table2-recall");
    g.sample_size(20);
    g.bench_function("dynamic-callgraph-run", |b| {
        b.iter(|| dynamic_call_graph(&project, &InterpOptions::default()).unwrap())
    });

    let dyn_edges = dynamic_call_graph(&project, &InterpOptions::default()).unwrap();
    let analysis = analyze(&project, None, &AnalysisOptions::baseline()).unwrap();
    g.bench_function("accuracy-comparison", |b| {
        b.iter(|| Accuracy::compare(&analysis.call_graph, &dyn_edges))
    });
    g.finish();
}

criterion_group!(benches, bench_recall);
criterion_main!(benches);
