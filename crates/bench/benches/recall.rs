//! Benchmark behind Table 2: producing dynamic call graphs (concrete
//! interpreter runs of test drivers) and comparing static call graphs
//! against them. Uses the in-tree `aji-support` bench harness.

use aji::{dynamic_call_graph, PipelineOptions};
use aji_interp::InterpOptions;
use aji_pta::{analyze, Accuracy, AnalysisOptions};
use aji_support::bench::{black_box, Suite};

fn main() {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .expect("webframe");
    let _ = PipelineOptions::default();

    let mut suite = Suite::new("table2-recall").iters(20);
    suite.bench("dynamic-callgraph-run", || {
        black_box(dynamic_call_graph(&project, &InterpOptions::default()).unwrap())
    });

    let dyn_edges = dynamic_call_graph(&project, &InterpOptions::default()).unwrap();
    let analysis = analyze(&project, None, &AnalysisOptions::baseline()).unwrap();
    suite.bench("accuracy-comparison", || {
        black_box(Accuracy::compare(&analysis.call_graph, &dyn_edges))
    });
    suite.finish();
}
