//! Benchmarks of the substrates: parser throughput, concrete
//! interpretation, and the approximate interpreter's worklist, plus the
//! budget ablation from DESIGN.md (loop-limit vs hints produced). Uses
//! the in-tree `aji-support` bench harness.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::{FileId, NodeIdGen};
use aji_interp::{Interp, InterpOptions};
use aji_support::bench::{black_box, Suite};

fn bench_parser(suite: &mut Suite) {
    let project = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "parse-bench".into(),
        seed: 9,
        libs: 10,
        methods_per_lib: 12,
        dynamic_fraction: 0.5,
        app_modules: 10,
        calls_per_module: 6,
        use_mixin: true,
        use_emitter: true,
        driver_coverage: 0.5,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
        computed_writes: 0,
        accessor_methods: 0,
    });
    let total: usize = project.files.iter().map(|f| f.src.len()).sum();
    let r = suite.bench(format!("parse-project/{total}B"), || {
        let mut ids = NodeIdGen::new();
        for (i, f) in project.files.iter().enumerate() {
            black_box(aji_parser::parse_module(&f.src, FileId(i as u32), &mut ids).unwrap());
        }
    });
    let mb_per_s = total as f64 / (r.median_ns() as f64 / 1e9) / 1e6;
    eprintln!("  parse throughput: {mb_per_s:.1} MB/s");
}

fn bench_interp(suite: &mut Suite) {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .unwrap();
    suite.bench("concrete-run-webframe", || {
        let mut interp = Interp::new(&project).unwrap();
        black_box(interp.run_module("index.js").unwrap())
    });
}

/// Ablation: how the approximate interpreter's loop budget affects the
/// number of hints (the trade-off §5 mentions but does not explore).
fn bench_budget_ablation(suite: &mut Suite) {
    let project = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "budget-bench".into(),
        seed: 31,
        libs: 6,
        methods_per_lib: 16,
        dynamic_fraction: 0.6,
        app_modules: 6,
        calls_per_module: 4,
        use_mixin: false,
        use_emitter: false,
        driver_coverage: 0.5,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
        computed_writes: 0,
        accessor_methods: 0,
    });
    for loop_limit in [100u64, 1_000, 10_000] {
        let opts = ApproxOptions {
            interp: InterpOptions {
                max_loop_iters: loop_limit,
                ..InterpOptions::approx_defaults()
            },
            ..ApproxOptions::default()
        };
        suite.bench(format!("approx-budget/loop-limit-{loop_limit}"), || {
            black_box(approximate_interpret(&project, &opts).unwrap())
        });
    }
}

fn main() {
    let mut suite = Suite::new("substrate").iters(15);
    bench_parser(&mut suite);
    bench_interp(&mut suite);
    bench_budget_ablation(&mut suite);
    suite.finish();
}
