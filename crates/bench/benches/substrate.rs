//! Criterion benchmarks of the substrates: parser throughput, concrete
//! interpretation, and the approximate interpreter's worklist, plus the
//! budget ablation from DESIGN.md (loop-limit vs hints produced).

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::{FileId, NodeIdGen};
use aji_interp::{Interp, InterpOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parser(c: &mut Criterion) {
    let project = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "parse-bench".into(),
        seed: 9,
        libs: 10,
        methods_per_lib: 12,
        dynamic_fraction: 0.5,
        app_modules: 10,
        calls_per_module: 6,
        use_mixin: true,
        use_emitter: true,
        driver_coverage: 0.5,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
    });
    let total: usize = project.files.iter().map(|f| f.src.len()).sum();
    let mut g = c.benchmark_group("substrate-parser");
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("parse-project", |b| {
        b.iter(|| {
            let mut ids = NodeIdGen::new();
            for (i, f) in project.files.iter().enumerate() {
                aji_parser::parse_module(&f.src, FileId(i as u32), &mut ids).unwrap();
            }
        })
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .unwrap();
    let mut g = c.benchmark_group("substrate-interp");
    g.sample_size(20);
    g.bench_function("concrete-run-webframe", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&project).unwrap();
            interp.run_module("index.js").unwrap()
        })
    });
    g.finish();
}

/// Ablation: how the approximate interpreter's loop budget affects the
/// number of hints (the trade-off §5 mentions but does not explore).
fn bench_budget_ablation(c: &mut Criterion) {
    let project = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "budget-bench".into(),
        seed: 31,
        libs: 6,
        methods_per_lib: 16,
        dynamic_fraction: 0.6,
        app_modules: 6,
        calls_per_module: 4,
        use_mixin: false,
        use_emitter: false,
        driver_coverage: 0.5,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
    });
    let mut g = c.benchmark_group("ablation-approx-budget");
    g.sample_size(15);
    for loop_limit in [100u64, 1_000, 10_000] {
        let opts = ApproxOptions {
            interp: InterpOptions {
                max_loop_iters: loop_limit,
                ..InterpOptions::approx_defaults()
            },
            ..ApproxOptions::default()
        };
        g.bench_with_input(
            BenchmarkId::new("loop-limit", loop_limit),
            &opts,
            |b, opts| b.iter(|| approximate_interpret(&project, opts).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parser, bench_interp, bench_budget_ablation);
criterion_main!(benches);
