//! Criterion benchmarks for the three pipeline stages of Table 3:
//! baseline static analysis, approximate interpretation, and the extended
//! static analysis, on representative corpus projects.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_pta::{analyze, AnalysisOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_stages(c: &mut Criterion) {
    let small = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .expect("webframe");
    let medium = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "bench-medium".into(),
        seed: 77,
        libs: 6,
        methods_per_lib: 10,
        dynamic_fraction: 0.5,
        app_modules: 6,
        calls_per_module: 5,
        use_mixin: true,
        use_emitter: true,
        driver_coverage: 0.6,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
    });

    let mut g = c.benchmark_group("table3-stages");
    g.sample_size(20);
    for (label, project) in [("webframe", &small), ("generated-medium", &medium)] {
        let hints = approximate_interpret(project, &ApproxOptions::default())
            .expect("approx")
            .hints;
        g.bench_with_input(BenchmarkId::new("baseline", label), project, |b, p| {
            b.iter(|| analyze(p, None, &AnalysisOptions::baseline()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("approx-interp", label), project, |b, p| {
            b.iter(|| approximate_interpret(p, &ApproxOptions::default()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("extended", label), project, |b, p| {
            b.iter(|| analyze(p, Some(&hints), &AnalysisOptions::extended()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
