//! Benchmarks for the three pipeline stages of Table 3 — baseline static
//! analysis, approximate interpretation, and the extended static
//! analysis — on representative corpus projects, using the in-tree
//! `aji-support` bench harness.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_pta::{analyze, AnalysisOptions};
use aji_support::bench::{black_box, Suite};

fn main() {
    let small = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .expect("webframe");
    let medium = aji_corpus::generate(&aji_corpus::GenConfig {
        name: "bench-medium".into(),
        seed: 77,
        libs: 6,
        methods_per_lib: 10,
        dynamic_fraction: 0.5,
        app_modules: 6,
        calls_per_module: 5,
        use_mixin: true,
        use_emitter: true,
        driver_coverage: 0.6,
        vulns: 0,
        hard_dispatch_fraction: 0.0,
        computed_writes: 0,
        accessor_methods: 0,
    });

    let mut suite = Suite::new("table3-stages").iters(20);
    for (label, project) in [("webframe", &small), ("generated-medium", &medium)] {
        let hints = approximate_interpret(project, &ApproxOptions::default())
            .expect("approx")
            .hints;
        suite.bench(format!("baseline/{label}"), || {
            black_box(analyze(project, None, &AnalysisOptions::baseline()).unwrap())
        });
        suite.bench(format!("approx-interp/{label}"), || {
            black_box(approximate_interpret(project, &ApproxOptions::default()).unwrap())
        });
        suite.bench(format!("extended/{label}"), || {
            black_box(analyze(project, Some(&hints), &AnalysisOptions::extended()).unwrap())
        });
    }
    suite.finish();
}
