//! Experiment harness for the *aji* reproduction — and the shared
//! **parallel corpus-evaluation driver** every experiment binary runs on.
//!
//! The paper's evaluation (§5) repeats the same shape six times: load a
//! corpus (`aji_corpus::table1_benchmarks` or `full_population`), run the
//! pipeline on every project, report per-project rows and corpus-level
//! summaries. This crate centralises that shape:
//!
//! * [`run_corpus`] — fan [`aji::run_benchmark`] over a corpus on scoped
//!   worker threads ([`aji_support::par::map`]), preserving project order.
//! * [`run_corpus_map`] — the generic variant for binaries that run
//!   something other than the full pipeline per project (`table1` only
//!   parses, `ablations` runs six analysis modes on one shared parse).
//! * [`collect_reports`] — the uniform error path: split successes from
//!   failures, printing each failure as `name: error` on stderr.
//! * [`CorpusCli`] / [`exit_code`] — the uniform command line
//!   (`--threads N`, `--json`, `AJI_THREADS`) and exit codes
//!   (0 = all projects succeeded, 1 = some failed, 2 = bad usage).
//! * [`corpus_metrics_json`] — the deterministic (timing-free) corpus
//!   report used by `--json` output and the determinism tests.
//!
//! # Determinism
//!
//! Parallel output is **byte-identical to serial output** apart from
//! wall-clock fields. Three properties make that hold:
//!
//! 1. [`aji_support::par::map`] returns results in input order, whatever
//!    the thread interleaving;
//! 2. every analysis in the pipeline is deterministic for a fixed corpus
//!    (seeded corpus generation, `BTreeMap`-ordered solvers);
//! 3. observability data is collected into a **fresh [`aji_obs::Registry`]
//!    per worker** and folded into the caller's registry with
//!    [`aji_obs::Registry::absorb`] — a commutative, order-insensitive
//!    merge — *after* all workers finish, in project order.
//!
//! Timings (`*_seconds` on [`aji::BenchmarkReport`], span `total_ns`) are
//! the one nondeterministic residue; [`corpus_metrics_json`] excludes
//! them, which is what the byte-identity tests compare. See
//! BENCHMARKS.md for the full methodology.
//!
//! The experiment binaries live under `src/bin/` (one per table/figure of
//! the paper — see DESIGN.md's experiment index); the Criterion-style
//! benches under `benches/`.
//!
//! # Example
//!
//! ```
//! use aji::PipelineOptions;
//! use aji_bench::{collect_reports, run_corpus};
//!
//! let projects: Vec<_> = aji_corpus::pattern_projects().into_iter().take(2).collect();
//! let results = run_corpus(projects, &PipelineOptions::default(), 2);
//! assert_eq!(results.len(), 2);
//! let (reports, failures) = collect_reports(results);
//! assert_eq!((reports.len(), failures), (2, 0));
//! ```

#![warn(missing_docs)]

use aji::{run_benchmark, BenchmarkReport, PipelineError, PipelineOptions};
use aji_ast::Project;
use aji_support::Json;
use std::fmt;
use std::process::ExitCode;
use std::sync::Arc;

pub mod diff;

/// Outcome of running one corpus project: the project name plus either the
/// payload produced for it or the error that stopped it.
///
/// Produced by [`run_corpus`] (where `R` is [`BenchmarkReport`] and `E` is
/// [`PipelineError`]) and [`run_corpus_map`] (any `R`/`E`). The name is
/// kept outside the `Result` so failures can still be attributed.
#[derive(Debug)]
pub struct ProjectResult<R = BenchmarkReport, E = PipelineError> {
    /// `Project::name` of the corpus entry.
    pub name: String,
    /// What the per-project function returned.
    pub outcome: Result<R, E>,
}

/// Runs the full [`aji::run_benchmark`] pipeline over a corpus on up to
/// `threads` scoped worker threads, returning per-project results **in
/// input order**.
///
/// `threads == 0` means "use available parallelism" (capped at 8), the
/// [`aji_support::par::map`] convention; pass
/// [`CorpusCli::from_env`]'s `threads` to honour `--threads`/`AJI_THREADS`.
///
/// If observability collection is active on the calling thread (`AJI_OBS`,
/// [`aji_obs::force_enable`], or an enclosing [`aji_obs::scoped`] region),
/// each worker collects into its own registry and the driver folds all of
/// them into the caller's registry in project order once the fan-out
/// completes — so counters, histograms and span aggregates are identical
/// whatever `threads` is. See the crate docs for why.
///
/// # Example
///
/// ```
/// use aji::PipelineOptions;
/// use aji_bench::run_corpus;
///
/// let projects: Vec<_> = aji_corpus::pattern_projects().into_iter().take(3).collect();
/// let serial = run_corpus(projects.clone(), &PipelineOptions::default(), 1);
/// let parallel = run_corpus(projects, &PipelineOptions::default(), 3);
/// let names = |rs: &[aji_bench::ProjectResult]| -> Vec<String> {
///     rs.iter().map(|r| r.name.clone()).collect()
/// };
/// assert_eq!(names(&serial), names(&parallel)); // input order, not finish order
/// ```
pub fn run_corpus(
    projects: Vec<Project>,
    opts: &PipelineOptions,
    threads: usize,
) -> Vec<ProjectResult> {
    run_corpus_map(projects, threads, |p| run_benchmark(p, opts))
}

/// Generic corpus fan-out: applies `f` to every project on up to `threads`
/// scoped worker threads, preserving input order and merging per-worker
/// observability data deterministically (see [`run_corpus`]).
///
/// This is what experiment binaries that do *not* run the full pipeline
/// build on: `table1` parses and counts functions, `ablations` runs six
/// analysis configurations against one shared parse and hint set.
///
/// When collection is active, a `corpus.projects` counter records the
/// corpus size and each worker's events land under the caller's registry.
///
/// # Example
///
/// ```
/// use aji_bench::run_corpus_map;
/// use std::sync::Arc;
///
/// let reg = Arc::new(aji_obs::Registry::new());
/// let projects: Vec<_> = aji_corpus::pattern_projects().into_iter().take(3).collect();
/// let results = aji_obs::scoped(&reg, || {
///     run_corpus_map(projects, 2, |p| {
///         aji_parser::parse_project(p).map(|parsed| parsed.modules.len())
///     })
/// });
/// assert!(results.iter().all(|r| r.outcome.is_ok()));
/// assert_eq!(reg.report().counter("corpus.projects"), Some(3));
/// ```
pub fn run_corpus_map<R, E, F>(
    projects: Vec<Project>,
    threads: usize,
    f: F,
) -> Vec<ProjectResult<R, E>>
where
    R: Send,
    E: Send,
    F: Fn(&Project) -> Result<R, E> + Sync,
{
    // TLS-scoped registries are per-thread: workers spawned below do NOT
    // see the caller's scope, so capture it here and merge explicitly.
    let parent = aji_obs::current_registry();
    let n = projects.len();
    let raw = aji_support::par::map(projects, threads, |project| {
        let name = project.name.clone();
        if let Some(parent) = &parent {
            // `new_like` inherits the parent's flight-recorder config with
            // a fresh ring, so each project's trace fills identically no
            // matter which worker runs it.
            let reg = Arc::new(aji_obs::Registry::new_like(parent));
            let outcome = aji_obs::scoped(&reg, || f(&project));
            (name, outcome, Some(reg.report()))
        } else {
            (name, f(&project), None)
        }
    });
    if let Some(parent) = &parent {
        // Input order; `absorb` is commutative for counters and appends
        // trace events per project, so this matches a serial run no
        // matter how the workers interleaved.
        for (_, _, obs) in &raw {
            if let Some(obs) = obs {
                parent.absorb(obs);
            }
        }
        aji_obs::counter_add("corpus.projects", n as u64);
        aji_obs::record_peak_rss();
    }
    raw.into_iter()
        .map(|(name, outcome, _)| ProjectResult { name, outcome })
        .collect()
}

/// Splits corpus results into successful payloads and a failure count,
/// printing each failure as `name: error` on stderr — the uniform
/// error-handling path shared by every experiment binary.
///
/// Successes keep their input (corpus) order.
pub fn collect_reports<R, E: fmt::Display>(results: Vec<ProjectResult<R, E>>) -> (Vec<R>, usize) {
    let mut ok = Vec::with_capacity(results.len());
    let mut failures = 0usize;
    for r in results {
        match r.outcome {
            Ok(payload) => ok.push(payload),
            Err(e) => {
                eprintln!("{}: {e}", r.name);
                failures += 1;
            }
        }
    }
    (ok, failures)
}

/// The uniform experiment-binary exit code: success only if every corpus
/// project succeeded.
///
/// (Usage errors exit with code 2 from [`CorpusCli::from_env`] before any
/// work starts.)
pub fn exit_code(failures: usize) -> ExitCode {
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Runs the corpus in **daemon (thin-client) mode**: one `analyze`
/// request per project against a running `aji-serve` daemon, fanned out
/// over up to `threads` client threads, results **in corpus order**.
///
/// Each request carries the project inline (`Project::to_json`), so the
/// daemon needs no corpus of its own, and opens a fresh connection
/// ([`aji_support::wire::request`]) — responses depend only on request
/// content, never on connection interleaving, which is what keeps daemon
/// runs byte-identical at any client thread count. The success payload is
/// the daemon's `result` field, which is exactly the project's
/// [`BenchmarkReport::metrics_json`] — so [`daemon_metrics_json`] over
/// these results matches [`corpus_metrics_json`] over a local run
/// byte-for-byte (`tests/daemon_determinism.rs` pins this).
///
/// `dynamic` selects the dynamic-call-graph pipeline
/// ([`PipelineOptions::with_dynamic_cg`]), as `table2` needs.
pub fn run_corpus_daemon(
    projects: Vec<Project>,
    socket: &str,
    threads: usize,
    dynamic: bool,
) -> Vec<ProjectResult<Json, String>> {
    aji_support::par::map(projects, threads, |project| {
        let name = project.name.clone();
        let mut pairs = vec![
            ("op".to_string(), Json::Str("analyze".into())),
            ("project".to_string(), project.to_json()),
        ];
        if dynamic {
            pairs.push(("dynamic".to_string(), Json::Bool(true)));
        }
        let outcome = match aji_support::wire::request(socket, &Json::Obj(pairs)) {
            Ok(resp) if resp.get("ok") == Some(&Json::Bool(true)) => resp
                .get("result")
                .cloned()
                .ok_or_else(|| "daemon response frame has no result".to_string()),
            Ok(resp) => Err(resp
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("daemon error frame without message")
                .to_string()),
            Err(e) => Err(format!("daemon request failed: {e}")),
        };
        ProjectResult { name, outcome }
    })
}

/// The daemon-mode twin of [`corpus_metrics_json`]: success payloads are
/// embedded as-is (they already are `metrics_json` objects), failures
/// become `{"name", "error"}` entries in place.
pub fn daemon_metrics_json(results: &[ProjectResult<Json, String>]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| match &r.outcome {
                Ok(payload) => payload.clone(),
                Err(e) => Json::obj(vec![
                    ("name", Json::Str(r.name.clone())),
                    ("error", Json::Str(e.clone())),
                ]),
            })
            .collect(),
    )
}

/// Wraps a per-project metrics array ([`corpus_metrics_json`] or
/// [`daemon_metrics_json`]) in the §5 vulnerability summary the `vulns`
/// text report prints: total and reachable vulnerability counts plus
/// total reachable functions, aggregated from the entries (entries with
/// an `"error"` field count only toward `failures`). The `vulns --json`
/// and `vulns --daemon` paths both print this object, so the
/// machine-readable output carries the same reach totals as the table —
/// the bare array used to return before computing them.
#[must_use]
pub fn vulns_corpus_json(metrics: &Json) -> Json {
    let empty = Vec::new();
    let entries = metrics.as_arr().unwrap_or(&empty);
    let num = |entry: &Json, outer: &str, inner: &str| -> f64 {
        entry
            .get(outer)
            .and_then(|o| o.get(inner))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let (mut total, mut reach_b, mut reach_x) = (0.0, 0.0, 0.0);
    let (mut funcs_b, mut funcs_x) = (0.0, 0.0);
    let mut failures = 0usize;
    for entry in entries {
        if entry.get("error").is_some() {
            failures += 1;
            continue;
        }
        total += num(entry, "vulns", "total");
        reach_b += num(entry, "vulns", "reachable_baseline");
        reach_x += num(entry, "vulns", "reachable_extended");
        funcs_b += num(entry, "baseline", "reachable_functions");
        funcs_x += num(entry, "extended", "reachable_functions");
    }
    Json::obj(vec![
        ("projects", Json::Num((entries.len() - failures) as f64)),
        ("failures", Json::Num(failures as f64)),
        (
            "vulns",
            Json::obj(vec![
                ("total", Json::Num(total)),
                ("reachable_baseline", Json::Num(reach_b)),
                ("reachable_extended", Json::Num(reach_x)),
            ]),
        ),
        (
            "reachable_functions",
            Json::obj(vec![
                ("baseline", Json::Num(funcs_b)),
                ("extended", Json::Num(funcs_x)),
            ]),
        ),
        ("per_project", metrics.clone()),
    ])
}

/// The shared `--daemon SOCKET` code path of the experiment binaries:
/// runs [`run_corpus_daemon`], prints [`daemon_metrics_json`] (the same
/// deterministic report `--json` prints for a local run), and returns
/// the uniform [`exit_code`].
pub fn run_daemon_mode(
    projects: Vec<Project>,
    socket: &str,
    threads: usize,
    dynamic: bool,
) -> ExitCode {
    let results = run_corpus_daemon(projects, socket, threads, dynamic);
    let failures = results.iter().filter(|r| r.outcome.is_err()).count();
    for r in &results {
        if let Err(e) = &r.outcome {
            eprintln!("{}: {e}", r.name);
        }
    }
    println!("{}", daemon_metrics_json(&results));
    exit_code(failures)
}

/// The **deterministic** corpus-level report: one entry per project, in
/// corpus order — [`BenchmarkReport::metrics_json`] for successes (which
/// excludes the nondeterministic wall-clock fields), `{"name", "error"}`
/// for failures.
///
/// Two runs over the same corpus print byte-identical text whatever the
/// thread count; `tests/corpus_determinism.rs` asserts exactly that.
pub fn corpus_metrics_json<E: fmt::Display>(
    results: &[ProjectResult<BenchmarkReport, E>],
) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| match &r.outcome {
                Ok(report) => report.metrics_json(),
                Err(e) => Json::obj(vec![
                    ("name", Json::Str(r.name.clone())),
                    ("error", Json::Str(e.to_string())),
                ]),
            })
            .collect(),
    )
}

/// The command-line options every corpus binary shares.
///
/// * `--threads N` — worker threads; `0` means "use available
///   parallelism" (capped at 8, the [`aji_support::par::map`] convention).
///   Defaults to the `AJI_THREADS` environment variable via
///   [`aji_support::par::threads_from_env`], so
///   `AJI_THREADS=4 cargo run --bin fig4_7` and
///   `cargo run --bin fig4_7 -- --threads 4` are equivalent (the flag
///   wins when both are given).
/// * `--json` — print the deterministic [`corpus_metrics_json`] report
///   instead of the human-readable table (only on binaries that produce
///   [`BenchmarkReport`]s).
/// * `--daemon SOCKET` — thin-client mode: send each project to a running
///   `aji-serve` daemon instead of analyzing locally, and print the same
///   deterministic JSON report ([`run_daemon_mode`]). Gated like `--json`:
///   only binaries whose corpus output is a [`BenchmarkReport`] stream
///   accept it.
///
/// # Example
///
/// ```
/// use aji_bench::CorpusCli;
///
/// let cli = CorpusCli::parse(["--threads".into(), "4".into(), "--json".into()], true).unwrap();
/// assert_eq!((cli.threads, cli.json), (4, true));
/// let cli = CorpusCli::parse(["--daemon".into(), "/tmp/aji.sock".into()], true).unwrap();
/// assert_eq!(cli.daemon.as_deref(), Some("/tmp/aji.sock"));
/// assert!(CorpusCli::parse(["--bogus".into()], true).is_err());
/// assert!(CorpusCli::parse(["--json".into()], false).is_err()); // not supported here
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCli {
    /// Worker-thread count for [`run_corpus`] / [`run_corpus_map`]
    /// (`0` = auto).
    pub threads: usize,
    /// Emit the deterministic JSON report instead of the table.
    pub json: bool,
    /// `aji-serve` socket path for thin-client mode ([`run_daemon_mode`]).
    pub daemon: Option<String>,
}

impl CorpusCli {
    /// Parses an argument list (without the program name).
    ///
    /// `json_supported` gates the `--json` and `--daemon` flags: binaries
    /// whose output is not a [`BenchmarkReport`] corpus reject them up
    /// front rather than silently ignoring them.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, a missing or
    /// non-numeric `--threads` value, a missing `--daemon` socket path, or
    /// `--json`/`--daemon` where unsupported.
    pub fn parse<I>(args: I, json_supported: bool) -> Result<CorpusCli, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = CorpusCli {
            threads: aji_support::par::threads_from_env(),
            json: false,
            daemon: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--threads" => {
                    let v = it.next().ok_or("--threads expects a number")?;
                    cli.threads = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value: {v}"))?;
                }
                "--json" if json_supported => cli.json = true,
                "--json" => return Err("--json is not supported by this binary".to_string()),
                "--daemon" if json_supported => {
                    cli.daemon = Some(it.next().ok_or("--daemon expects a socket path")?);
                }
                "--daemon" => {
                    return Err("--daemon is not supported by this binary".to_string())
                }
                other => match (other.strip_prefix("--threads="), other.strip_prefix("--daemon=")) {
                    (Some(v), _) => {
                        cli.threads = v
                            .parse()
                            .map_err(|_| format!("invalid --threads value: {v}"))?;
                    }
                    (None, Some(v)) if json_supported => cli.daemon = Some(v.to_string()),
                    (None, Some(_)) => {
                        return Err("--daemon is not supported by this binary".to_string())
                    }
                    (None, None) => return Err(format!("unknown argument: {other}")),
                },
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments, handling `--help` (exit 0) and usage
    /// errors (message + usage on stderr, exit 2) itself so every binary's
    /// `main` reduces to `let cli = CorpusCli::from_env("name", true);`.
    pub fn from_env(bin: &str, json_supported: bool) -> CorpusCli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage(bin, json_supported));
            std::process::exit(0);
        }
        match Self::parse(args, json_supported) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("{bin}: {e}");
                eprintln!("{}", Self::usage(bin, json_supported));
                std::process::exit(2);
            }
        }
    }

    fn usage(bin: &str, json_supported: bool) -> String {
        let json_line = if json_supported {
            "\n  --json           print the deterministic corpus report as JSON\
             \n  --daemon SOCKET  send projects to a running aji-serve daemon\n                   (implies JSON output; see DAEMON.md)"
        } else {
            ""
        };
        format!(
            "usage: {bin} [--threads N]{}\n\n  --threads N      worker threads (0 = auto, capped at 8); \
             defaults to $AJI_THREADS{json_line}",
            if json_supported {
                " [--json] [--daemon SOCKET]"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn vulns_corpus_json_aggregates_totals_and_skips_failures() {
        let metrics = Json::parse(
            r#"[
              {"name":"a","baseline":{"reachable_functions":7},"extended":{"reachable_functions":25},
               "vulns":{"total":2,"reachable_baseline":1,"reachable_extended":2}},
              {"name":"b","error":"boom"},
              {"name":"c","baseline":{"reachable_functions":3},"extended":{"reachable_functions":4}}
            ]"#,
        )
        .unwrap();
        let wrapped = vulns_corpus_json(&metrics);
        assert_eq!(wrapped.get("projects").and_then(Json::as_f64), Some(2.0));
        assert_eq!(wrapped.get("failures").and_then(Json::as_f64), Some(1.0));
        let vulns = wrapped.get("vulns").unwrap();
        assert_eq!(vulns.get("total").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            vulns.get("reachable_baseline").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            vulns.get("reachable_extended").and_then(Json::as_f64),
            Some(2.0)
        );
        let funcs = wrapped.get("reachable_functions").unwrap();
        assert_eq!(funcs.get("baseline").and_then(Json::as_f64), Some(10.0));
        assert_eq!(funcs.get("extended").and_then(Json::as_f64), Some(29.0));
        // The per-project entries ride along unchanged.
        assert_eq!(wrapped.get("per_project"), Some(&metrics));
    }

    #[test]
    fn cli_parses_threads_and_json() {
        let cli = CorpusCli::parse(args(&["--threads", "3", "--json"]), true).unwrap();
        assert_eq!(
            cli,
            CorpusCli { threads: 3, json: true, daemon: None }
        );
        let cli = CorpusCli::parse(args(&["--threads=2"]), false).unwrap();
        assert_eq!(
            cli,
            CorpusCli { threads: 2, json: false, daemon: None }
        );
    }

    #[test]
    fn cli_parses_daemon_socket() {
        let cli = CorpusCli::parse(args(&["--daemon", "/tmp/a.sock"]), true).unwrap();
        assert_eq!(cli.daemon.as_deref(), Some("/tmp/a.sock"));
        let cli = CorpusCli::parse(args(&["--daemon=/tmp/b.sock"]), true).unwrap();
        assert_eq!(cli.daemon.as_deref(), Some("/tmp/b.sock"));
    }

    #[test]
    fn cli_rejects_bad_input() {
        assert!(CorpusCli::parse(args(&["--threads"]), true).is_err());
        assert!(CorpusCli::parse(args(&["--threads", "x"]), true).is_err());
        assert!(CorpusCli::parse(args(&["--wat"]), true).is_err());
        assert!(CorpusCli::parse(args(&["--json"]), false).is_err());
        assert!(CorpusCli::parse(args(&["--daemon"]), true).is_err());
        assert!(CorpusCli::parse(args(&["--daemon", "/tmp/a.sock"]), false).is_err());
        assert!(CorpusCli::parse(args(&["--daemon=/tmp/a.sock"]), false).is_err());
    }

    #[test]
    fn daemon_metrics_json_embeds_payloads_and_errors_in_place() {
        let results = vec![
            ProjectResult::<Json, String> {
                name: "good".to_string(),
                outcome: Ok(Json::obj(vec![("name", Json::Str("good".into()))])),
            },
            ProjectResult::<Json, String> {
                name: "bad".to_string(),
                outcome: Err("socket gone".to_string()),
            },
        ];
        let json = daemon_metrics_json(&results).to_string();
        assert_eq!(
            json,
            r#"[{"name":"good"},{"name":"bad","error":"socket gone"}]"#
        );
    }

    #[test]
    fn daemon_requests_against_a_dead_socket_fail_cleanly_in_order() {
        let projects: Vec<Project> =
            aji_corpus::pattern_projects().into_iter().take(3).collect();
        let names: Vec<String> = projects.iter().map(|p| p.name.clone()).collect();
        let results = run_corpus_daemon(projects, "/nonexistent/aji.sock", 2, false);
        let got: Vec<String> = results.iter().map(|r| r.name.clone()).collect();
        assert_eq!(got, names);
        assert!(results.iter().all(|r| r.outcome.is_err()));
    }

    #[test]
    fn corpus_map_preserves_order_and_attributes_failures() {
        let mut projects = aji_corpus::pattern_projects();
        projects.truncate(4);
        let names: Vec<String> = projects.iter().map(|p| p.name.clone()).collect();
        let results = run_corpus_map(projects, 4, |p| {
            if p.name.len() % 2 == 0 {
                Err(format!("odd one out: {}", p.name))
            } else {
                Ok(p.module_count())
            }
        });
        let got: Vec<String> = results.iter().map(|r| r.name.clone()).collect();
        assert_eq!(got, names);
        let (ok, failures) = collect_reports(results);
        assert_eq!(ok.len() + failures, 4);
    }

    #[test]
    fn obs_merge_is_thread_count_invariant() {
        let slice = |n: usize| -> Vec<Project> {
            aji_corpus::pattern_projects().into_iter().take(n).collect()
        };
        let run = |threads: usize| {
            let reg = Arc::new(aji_obs::Registry::new());
            let results = aji_obs::scoped(&reg, || {
                run_corpus(slice(3), &PipelineOptions::default(), threads)
            });
            (corpus_metrics_json(&results).to_string(), reg.report())
        };
        let (serial_json, serial_obs) = run(1);
        let (parallel_json, parallel_obs) = run(3);
        assert_eq!(serial_json, parallel_json);
        assert_eq!(serial_obs.counters, parallel_obs.counters);
        let counts = |r: &aji_obs::ObsReport| -> Vec<(String, u64)> {
            r.spans.iter().map(|s| (s.path.clone(), s.count)).collect()
        };
        assert_eq!(counts(&serial_obs), counts(&parallel_obs));
    }

    #[test]
    fn corpus_json_reports_failures_in_place() {
        let results = vec![ProjectResult::<BenchmarkReport, String> {
            name: "broken".to_string(),
            outcome: Err("nope".to_string()),
        }];
        let json = corpus_metrics_json(&results).to_string();
        assert!(json.contains("\"error\":\"nope\""), "{json}");
    }
}
