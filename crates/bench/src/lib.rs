//! Experiment harness for the *aji* reproduction.
//!
//! All functionality lives in the binaries under `src/bin/` (one per
//! table/figure of the paper — see DESIGN.md's experiment index) and the
//! Criterion benches under `benches/`. This library target exists only to
//! anchor the crate.
