//! Perf-regression gate: structural comparison of two benchmark / metrics
//! JSON documents (`aji-report --diff old.json new.json`).
//!
//! The gate's contract follows the repo's determinism split:
//!
//! * **Deterministic counters** (steps, IC hits/misses, edges, hint
//!   counts, …) must match **exactly** — they are thread-count and rerun
//!   invariant by construction, so any drift is a real behavior change.
//! * **Wall-clock quantities** (span `total_ns`, `*_secs`, `*_per_sec`
//!   throughputs, speedups, RSS peaks) get a **relative tolerance band**
//!   (default ±25%), because a shared CI box cannot promise more.
//!
//! Keys present on only one side are reported as warnings, not failures,
//! so adding a metric does not break the gate against older history —
//! with one exception: if an entire **guarded counter family**
//! (`interp.*`, `oracle.*`, `quant.*`) present in the old document has no members at
//! all in the new one, that is a fatal finding. A single renamed counter
//! is a rename; a whole family of core-interpreter or oracle counters
//! going dark means the instrumentation itself was lost (a stripped
//! feature, a disabled registry), which is exactly the regression the
//! gate exists to catch. The
//! [`TraceReport`](aji_obs::TraceReport) events list is skipped entirely:
//! event streams are compared byte-for-byte by the determinism tests, and
//! their length is environment-dependent in non-deterministic runs.

use aji_support::Json;

/// Classification of one leaf value, deciding how it is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafClass {
    /// Must match exactly (deterministic counter, string, bool).
    Exact,
    /// Compared within the relative tolerance band.
    WallClock,
}

/// One comparison violation or warning.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// `/`-joined path of the leaf (e.g. `obs/counters/interp.steps`).
    pub path: String,
    /// Human-readable description of the mismatch.
    pub message: String,
    /// `true` for gate failures, `false` for one-side-only warnings.
    pub fatal: bool,
}

/// The outcome of a diff: all findings, fatal and not.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Everything worth telling the user, in path order.
    pub findings: Vec<DiffFinding>,
    /// Number of leaves compared (for the summary line).
    pub compared: usize,
}

impl DiffReport {
    /// True when no fatal finding was recorded — the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| !f.fatal)
    }

    /// Renders the report as text, one finding per line, plus a summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = if f.fatal { "FAIL" } else { "warn" };
            out.push_str(&format!("{tag} {}: {}\n", f.path, f.message));
        }
        let fails = self.findings.iter().filter(|f| f.fatal).count();
        out.push_str(&format!(
            "{} leaves compared, {} failures, {} warnings\n",
            self.compared,
            fails,
            self.findings.len() - fails
        ));
        out
    }
}

/// Substrings that mark a key as wall-clock-derived. Matched against the
/// lower-cased final path segment.
const WALL_MARKERS: &[&str] = &[
    "_ns", "_ms", "_secs", "_s", "secs", "seconds", "elapsed", "wall", "per_sec", "speedup",
    "rss", "_ts", "duration", "overhead",
];

/// Counter families whose *total* disappearance from the new document is
/// a gate failure, not a warning (see module docs). Matched as a prefix
/// of any `/`-separated path segment, so `obs/counters/interp.steps/value`
/// and a name-keyed `counters/interp.ic.hits` both count.
const GUARDED_FAMILIES: &[&str] = &["interp.", "oracle.", "quant."];

fn in_family(path: &str, family: &str) -> bool {
    path.split('/').any(|seg| seg.starts_with(family))
}

fn classify(path: &str) -> LeafClass {
    let leaf = path.rsplit('/').next().unwrap_or(path).to_ascii_lowercase();
    for m in WALL_MARKERS {
        if m.starts_with('_') {
            // Suffix markers: `total_ns` yes, `warnings` no.
            if leaf.ends_with(m) {
                return LeafClass::WallClock;
            }
        } else if leaf.contains(m) {
            return LeafClass::WallClock;
        }
    }
    LeafClass::Exact
}

/// Flattens a JSON document to `(path, leaf)` pairs.
///
/// Two canonicalizations make `ObsReport`-shaped data diffable by *name*
/// instead of by array position:
///
/// * an array of objects that all carry a string `"name"` (counters,
///   gauges, histograms) or `"path"` (spans) field is keyed by that field
///   rather than by index, so inserting a counter does not shift every
///   later one onto the wrong comparison partner;
/// * a `"trace"` object's `"events"` array is dropped (see module docs) —
///   its `"dropped"` count still participates.
fn flatten(doc: &Json, path: &str, out: &mut Vec<(String, Json)>) {
    match doc {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                if k == "events" && path.ends_with("/trace") {
                    continue;
                }
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}/{k}")
                };
                flatten(v, &sub, out);
            }
        }
        Json::Arr(items) => {
            let key_of = |item: &Json| -> Option<String> {
                let name = item.get("name").or_else(|| item.get("path"))?;
                name.as_str().map(str::to_string)
            };
            if !items.is_empty() && items.iter().all(|i| key_of(i).is_some()) {
                for item in items {
                    let key = key_of(item).expect("checked above");
                    let mut stripped: Vec<(String, Json)> = Vec::new();
                    if let Json::Obj(pairs) = item {
                        for (k, v) in pairs {
                            if k != "name" && k != "path" {
                                stripped.push((k.clone(), v.clone()));
                            }
                        }
                    }
                    flatten(&Json::Obj(stripped), &format!("{path}/{key}"), out);
                }
            } else {
                for (i, item) in items.iter().enumerate() {
                    flatten(item, &format!("{path}/{i}"), out);
                }
            }
        }
        leaf => out.push((path.to_string(), leaf.clone())),
    }
}

fn leaf_repr(v: &Json) -> String {
    v.to_string()
}

/// Compares two parsed JSON documents, returning every finding.
///
/// `tolerance` is the allowed relative drift for wall-clock leaves, as a
/// fraction (0.25 = ±25%). Deterministic leaves must match exactly.
#[must_use]
pub fn diff_reports(old: &Json, new: &Json, tolerance: f64) -> DiffReport {
    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    flatten(old, "", &mut old_leaves);
    flatten(new, "", &mut new_leaves);
    let old_map: std::collections::BTreeMap<_, _> = old_leaves.into_iter().collect();
    let new_map: std::collections::BTreeMap<_, _> = new_leaves.into_iter().collect();

    let mut report = DiffReport::default();
    for (path, old_v) in &old_map {
        let Some(new_v) = new_map.get(path) else {
            report.findings.push(DiffFinding {
                path: path.clone(),
                message: "present in old, missing in new".to_string(),
                fatal: false,
            });
            continue;
        };
        report.compared += 1;
        match (old_v.as_f64(), new_v.as_f64()) {
            (Some(a), Some(b)) => match classify(path) {
                LeafClass::Exact =>
                {
                    #[allow(clippy::float_cmp)] // exact-match contract
                    if a != b {
                        report.findings.push(DiffFinding {
                            path: path.clone(),
                            message: format!("deterministic value changed: {a} -> {b}"),
                            fatal: true,
                        });
                    }
                }
                LeafClass::WallClock => {
                    let denom = a.abs().max(f64::EPSILON);
                    let drift = (b - a).abs() / denom;
                    if drift > tolerance {
                        report.findings.push(DiffFinding {
                            path: path.clone(),
                            message: format!(
                                "wall-clock drift {:.1}% exceeds ±{:.0}%: {a} -> {b}",
                                drift * 100.0,
                                tolerance * 100.0
                            ),
                            fatal: true,
                        });
                    }
                }
            },
            _ => {
                if old_v != new_v {
                    report.findings.push(DiffFinding {
                        path: path.clone(),
                        message: format!(
                            "value changed: {} -> {}",
                            leaf_repr(old_v),
                            leaf_repr(new_v)
                        ),
                        fatal: true,
                    });
                }
            }
        }
    }
    for path in new_map.keys() {
        if !old_map.contains_key(path) {
            report.findings.push(DiffFinding {
                path: path.clone(),
                message: "new metric (missing in old)".to_string(),
                fatal: false,
            });
        }
    }
    // Missing keys warn individually, but a guarded family going dark
    // entirely is instrumentation loss and fails the gate (module docs).
    for family in GUARDED_FAMILIES {
        let old_n = old_map.keys().filter(|p| in_family(p, family)).count();
        if old_n > 0 && !new_map.keys().any(|p| in_family(p, family)) {
            report.findings.push(DiffFinding {
                path: format!("{family}*"),
                message: format!(
                    "counter family vanished: {old_n} {family}* metrics in old, none in new \
                     (instrumentation lost, not a rename)"
                ),
                fatal: true,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let doc = parse(r#"{"steps": 100, "elapsed_secs": 1.5}"#);
        let r = diff_reports(&doc, &doc, 0.25);
        assert!(r.passed());
        assert_eq!(r.compared, 2);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn deterministic_drift_is_fatal() {
        let old = parse(r#"{"interp": {"steps": 100}}"#);
        let new = parse(r#"{"interp": {"steps": 101}}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(!r.passed());
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].fatal);
        assert_eq!(r.findings[0].path, "interp/steps");
    }

    #[test]
    fn wall_clock_within_band_passes_and_outside_fails() {
        let old = parse(r#"{"total_ns": 1000, "steps_per_sec": 50.0}"#);
        let within = parse(r#"{"total_ns": 1200, "steps_per_sec": 55.0}"#);
        assert!(diff_reports(&old, &within, 0.25).passed());
        let outside = parse(r#"{"total_ns": 2000, "steps_per_sec": 55.0}"#);
        let r = diff_reports(&old, &outside, 0.25);
        assert!(!r.passed());
        assert_eq!(r.findings[0].path, "total_ns");
    }

    #[test]
    fn named_arrays_are_keyed_by_name_not_position() {
        let old = parse(r#"{"counters": [{"name": "a", "value": 1}, {"name": "b", "value": 2}]}"#);
        // Same counters, different order, plus a new one: must pass with a
        // single non-fatal warning for the addition.
        let new = parse(
            r#"{"counters": [{"name": "b", "value": 2}, {"name": "c", "value": 9}, {"name": "a", "value": 1}]}"#,
        );
        let r = diff_reports(&old, &new, 0.25);
        assert!(r.passed());
        assert_eq!(r.findings.len(), 1);
        assert!(!r.findings[0].fatal);
        assert_eq!(r.findings[0].path, "counters/c/value");
    }

    #[test]
    fn span_records_are_keyed_by_path_and_total_ns_is_tolerant() {
        let old = parse(
            r#"{"spans": [{"path": "pipeline/solve", "count": 2, "total_ns": 1000000}]}"#,
        );
        let new = parse(
            r#"{"spans": [{"path": "pipeline/solve", "count": 2, "total_ns": 1100000}]}"#,
        );
        assert!(diff_reports(&old, &new, 0.25).passed());
        let changed = parse(
            r#"{"spans": [{"path": "pipeline/solve", "count": 3, "total_ns": 1000000}]}"#,
        );
        assert!(!diff_reports(&old, &changed, 0.25).passed());
    }

    #[test]
    fn trace_events_are_skipped_but_dropped_count_is_not() {
        let old = parse(r#"{"obs": {"trace": {"events": [{"step": 1}], "dropped": 0}}}"#);
        let new = parse(r#"{"obs": {"trace": {"events": [], "dropped": 0}}}"#);
        assert!(diff_reports(&old, &new, 0.25).passed());
        let dropped = parse(r#"{"obs": {"trace": {"events": [], "dropped": 5}}}"#);
        assert!(!diff_reports(&old, &dropped, 0.25).passed());
    }

    #[test]
    fn missing_and_extra_keys_warn_without_failing() {
        let old = parse(r#"{"a": 1, "gone": 2}"#);
        let new = parse(r#"{"a": 1, "fresh": 3}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(r.passed());
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| !f.fatal));
    }

    #[test]
    fn string_and_bool_leaves_compare_exactly() {
        let old = parse(r#"{"result": "86475", "ok": true}"#);
        let new = parse(r#"{"result": "86476", "ok": true}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(!r.passed());
        assert_eq!(r.findings[0].path, "result");
    }

    #[test]
    fn vanished_interp_family_is_fatal() {
        let old = parse(
            r#"{"counters": [{"name": "interp.steps", "value": 100}, {"name": "interp.ic.hits", "value": 7}, {"name": "pta.edges", "value": 3}]}"#,
        );
        let new = parse(r#"{"counters": [{"name": "pta.edges", "value": 3}]}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(!r.passed());
        let fatal: Vec<_> = r.findings.iter().filter(|f| f.fatal).collect();
        assert_eq!(fatal.len(), 1);
        assert_eq!(fatal[0].path, "interp.*");
        assert!(fatal[0].message.contains("2 interp.* metrics"), "{}", fatal[0].message);
    }

    #[test]
    fn vanished_oracle_family_is_fatal() {
        let old = parse(r#"{"counters": [{"name": "oracle.mismatches", "value": 4}]}"#);
        let new = parse(r#"{"counters": [{"name": "fresh.metric", "value": 1}]}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(!r.passed());
        assert!(r.findings.iter().any(|f| f.fatal && f.path == "oracle.*"));
    }

    #[test]
    fn vanished_quant_family_is_fatal() {
        // Object keys participate like counter names: the `quant.`-prefixed
        // top-level keys of the aji-quant report form the guarded family.
        let old = parse(r#"{"quant.ranking": {"missed": 10}, "quant.eval": {"recovered": 9}}"#);
        let new = parse(r#"{"other": 1}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(!r.passed());
        assert!(r.findings.iter().any(|f| f.fatal && f.path == "quant.*"));
    }

    #[test]
    fn partially_vanished_family_still_only_warns() {
        // One interp counter renamed away but the family survives: the
        // usual non-fatal missing-key warning, no family failure.
        let old = parse(
            r#"{"counters": [{"name": "interp.steps", "value": 100}, {"name": "interp.ic.hits", "value": 7}]}"#,
        );
        let new = parse(r#"{"counters": [{"name": "interp.steps", "value": 100}]}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(r.passed());
        assert!(r.findings.iter().all(|f| !f.fatal));
    }

    #[test]
    fn family_absent_from_both_sides_is_no_finding() {
        let old = parse(r#"{"pta": {"edges": 3}}"#);
        let new = parse(r#"{"pta": {"edges": 3}}"#);
        let r = diff_reports(&old, &new, 0.25);
        assert!(r.passed());
        assert!(r.findings.is_empty());
    }

    #[test]
    fn render_summarizes() {
        let old = parse(r#"{"steps": 1}"#);
        let new = parse(r#"{"steps": 2}"#);
        let text = diff_reports(&old, &new, 0.25).render();
        assert!(text.contains("FAIL steps"));
        assert!(text.contains("1 failures"));
    }
}
