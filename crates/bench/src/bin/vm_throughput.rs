//! Interpreter-throughput benchmark: tree-walker vs bytecode VM.
//!
//! Runs a purpose-written, fully slot-compilable hot loop (locals,
//! `while`, property get/set through inline caches, direct and member
//! calls) through the same `Interp` twice — once with `use_vm: false`
//! (tree-walker) and once with `use_vm: true` (bytecode VM) — and reports
//! steps/second for each engine plus the speedup. Both engines charge the
//! identical number of steps for the identical program, so steps/sec is a
//! like-for-like work rate, not a proxy metric.
//!
//! Usage: `vm-throughput [--metrics-json] [--require-speedup X] [--recorder] [--out FILE]`
//!
//! * `--metrics-json`    print only the deterministic metrics (steps, IC
//!                       and compile counters, per-site IC misses,
//!                       results) as JSON — no timings, so two runs are
//!                       byte-identical. Used by
//!                       `scripts/check-hermetic.sh` for a `cmp` check
//!                       and as the `aji-report --diff` baseline: its key
//!                       paths are a subset of the full report's.
//! * `--require-speedup X`  exit non-zero unless VM/tree speedup ≥ X.
//! * `--recorder`        also time both engines with a flight recorder
//!                       (and its step-attributed profiler) live, and
//!                       report the recorder-on overhead per engine.
//! * `--out FILE`        also write the (full) JSON report to FILE.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use aji_interp::{Interp, InterpOptions, NoopTracer, Value};
use aji_support::Json;

/// The benchmark program. Everything on the hot path sits inside the
/// bytecode compiler's supported subset: identifier locals, `while`,
/// object-literal allocation, monomorphic property gets/sets, direct
/// calls and member calls. Function declarations live at module top
/// level (module bodies are always tree-walked; only *calls* enter the
/// VM).
const HOT_SRC: &str = r#"
function kick(i) {
  this.sum = (this.sum + (i & 15)) % 1048576;
  return this.sum;
}
function hot(n) {
  var p = { x: 1, y: 2, sum: 0, kick: kick };
  var q = { a: 3, b: 5, c: 7, d: 11 };
  var r = { u: 13, v: 17, w: 19, z: 23 };
  var acc = 0;
  var i = 0;
  while (i < n) {
    let a = p.x + (i & 7);
    let b = p.y + q.a * 3 - (i & 3);
    let t = (a + b) % 255;
    if (t >= 0) {
      let u = r.u + (t & 31);
      let v = r.v + (u & 63);
      r.u = (r.w + u) % 255;
      r.v = (r.z + v) % 255;
      r.w = (u + v) % 255;
      r.z = (r.u + r.v) % 255;
      p.x = (b - a + r.w) % 255;
      p.y = (a + t + r.z) % 255;
    } else {
      p.x = (b - a) % 255;
      p.y = (a + t) % 255;
    }
    q.a = (q.b + t) % 255;
    q.b = (q.c + a) % 255;
    q.c = (q.d + b) % 255;
    q.d = (q.a + q.b) % 255;
    p.sum = (p.sum + a + b + q.c + r.u) % 1048576;
    if ((i & 15) === 0) {
      let k = p.kick(i);
      acc = (acc + k) % 1048576;
    }
    acc = (acc + p.sum + t) % 1048576;
    i = i + 1;
  }
  return acc;
}
exports.hot = hot;
"#;

/// Inner-loop iterations per `hot(N)` call.
const INNER: f64 = 20_000.0;
/// Timed `hot(N)` calls per engine.
const CALLS: u32 = 25;
/// Warm-up calls per engine (populates the bytecode cache and ICs).
const WARMUP: u32 = 3;
/// Timing passes per engine; the fastest is reported (minimum-of-N is
/// the standard way to strip scheduler and thermal noise from a
/// deterministic workload).
const PASSES: u32 = 3;

struct EngineRun {
    steps: u64,
    result: String,
    elapsed_s: f64,
    counters: Vec<(String, u64)>,
}

fn counter_value(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// One pass over the workload: fresh interpreter, warm-up, then `CALLS`
/// timed calls. Returns (steps, elapsed, final result).
fn one_pass(use_vm: bool) -> Result<(u64, f64, String), String> {
    let mut project = aji_ast::Project::new("vm-throughput");
    project.add_file("index.js", HOT_SRC);
    let opts = InterpOptions {
        max_steps: u64::MAX >> 1,
        use_vm,
        ..InterpOptions::default()
    };
    let mut interp = Interp::with_options(&project, opts, Box::new(NoopTracer))
        .map_err(|e| format!("parse error: {e:?}"))?;
    let exports = interp
        .run_module("index.js")
        .map_err(|e| format!("module error: {e:?}"))?;
    let hot = interp
        .get_property_public(&exports, "hot")
        .map_err(|e| format!("export error: {e:?}"))?;
    for _ in 0..WARMUP {
        interp
            .call_function(hot.clone(), Value::Undefined, &[Value::Num(INNER)])
            .map_err(|e| format!("warmup error: {e:?}"))?;
    }
    interp.reset_steps();
    let before = interp.steps();
    let t0 = Instant::now();
    let mut result = Value::Undefined;
    for _ in 0..CALLS {
        result = interp
            .call_function(hot.clone(), Value::Undefined, &[Value::Num(INNER)])
            .map_err(|e| format!("run error: {e:?}"))?;
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let steps = interp.steps() - before;
    Ok((steps, elapsed_s, interp.to_string_public(&result)))
}

/// Runs the workload twice per engine: a *metrics* pass inside a scoped
/// observability registry carrying a deterministic flight recorder (to
/// read IC and compile counters plus per-site IC misses and the
/// step-attributed profile), then `PASSES` *timing* passes. With
/// `record_timing` false the timing passes run with observability
/// inactive — the production configuration, where counter handles are
/// no-ops and the hot path pays no atomics. With it true each timing
/// pass runs under a registry with a full (wall-clock-stamping)
/// recorder and profiler live, pricing the flight recorder itself. The
/// program is deterministic, so all passes execute the identical step
/// sequence; we assert it.
fn run_engine(use_vm: bool, record_timing: bool) -> Result<EngineRun, String> {
    let registry = Arc::new(aji_obs::Registry::new());
    registry.install_recorder(aji_obs::TraceConfig::deterministic());
    let (metric_steps, _, metric_result) = aji_obs::scoped(&registry, || one_pass(use_vm))?;
    let counters: Vec<(String, u64)> = registry
        .report()
        .counters
        .into_iter()
        .map(|c| (c.name, c.value))
        .collect();
    let mut best: Option<(u64, f64, String)> = None;
    for _ in 0..PASSES {
        let (steps, elapsed_s, result) = if record_timing {
            let reg = Arc::new(aji_obs::Registry::new());
            reg.install_recorder(aji_obs::TraceConfig::default());
            aji_obs::scoped(&reg, || one_pass(use_vm))?
        } else {
            one_pass(use_vm)?
        };
        if steps != metric_steps || result != metric_result {
            return Err(format!(
                "nondeterministic workload: metrics pass {metric_steps} steps → \
                 {metric_result}, timing pass {steps} steps → {result}"
            ));
        }
        if best.as_ref().is_none_or(|(_, e, _)| elapsed_s < *e) {
            best = Some((steps, elapsed_s, result));
        }
    }
    let (steps, elapsed_s, result) = best.expect("at least one pass");
    Ok(EngineRun {
        steps,
        result,
        elapsed_s,
        counters,
    })
}

/// The per-site IC miss table (`interp.ic_miss_site.<fn@file:line:prop#ic>`
/// counters from the metrics pass), as a name-sorted JSON object.
fn ic_miss_sites(run: &EngineRun) -> Json {
    const PREFIX: &str = "interp.ic_miss_site.";
    let mut pairs: Vec<(String, Json)> = run
        .counters
        .iter()
        .filter_map(|(n, v)| {
            n.strip_prefix(PREFIX)
                .map(|site| (site.to_string(), Json::Num(*v as f64)))
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(pairs)
}

/// The deterministic metric fields shared by `--metrics-json` output and
/// the full report's per-engine objects — identical key paths, so
/// `aji-report --diff` can gate a fresh `--metrics-json` run against a
/// committed full report.
fn engine_metric_fields(run: &EngineRun) -> Vec<(&'static str, Json)> {
    vec![
        ("steps", Json::Num(run.steps as f64)),
        ("result", Json::Str(run.result.clone())),
        (
            "vm_compiles",
            Json::Num(counter_value(&run.counters, "interp.vm_compiles") as f64),
        ),
        (
            "vm_bails",
            Json::Num(counter_value(&run.counters, "interp.vm_bails") as f64),
        ),
        (
            "ic_hits",
            Json::Num(counter_value(&run.counters, "interp.ic_hits") as f64),
        ),
        (
            "ic_misses",
            Json::Num(counter_value(&run.counters, "interp.ic_misses") as f64),
        ),
        ("ic_miss_sites", ic_miss_sites(run)),
    ]
}

fn engine_metrics(run: &EngineRun) -> Json {
    Json::obj(engine_metric_fields(run))
}

/// Full-report engine object: the deterministic metrics inline plus the
/// wall-clock fields.
fn engine_full(run: &EngineRun, sps: f64) -> Json {
    let mut fields = engine_metric_fields(run);
    fields.push(("elapsed_s", Json::Num(run.elapsed_s)));
    fields.push(("steps_per_sec", Json::Num(sps.round())));
    Json::obj(fields)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vm-throughput [--metrics-json] [--require-speedup X] [--recorder] [--out FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut metrics_only = false;
    let mut require_speedup: Option<f64> = None;
    let mut with_recorder = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics-json" => metrics_only = true,
            "--require-speedup" => match args.next().and_then(|x| x.parse().ok()) {
                Some(x) => require_speedup = Some(x),
                None => return usage(),
            },
            "--recorder" => with_recorder = true,
            "--out" => match args.next() {
                Some(f) => out = Some(f),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let tree = match run_engine(false, false) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vm-throughput: tree-walker: {e}");
            return ExitCode::FAILURE;
        }
    };
    let vm = match run_engine(true, false) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vm-throughput: vm: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Both engines must do the same work and compute the same answer —
    // a throughput number over divergent executions would be meaningless.
    if tree.steps != vm.steps || tree.result != vm.result {
        eprintln!(
            "vm-throughput: engines diverged: tree {} steps → {}, vm {} steps → {}",
            tree.steps, tree.result, vm.steps, vm.result
        );
        return ExitCode::FAILURE;
    }

    if metrics_only {
        let doc = Json::obj(vec![
            ("benchmark", Json::Str("vm-throughput".into())),
            ("tree", engine_metrics(&tree)),
            ("vm", engine_metrics(&vm)),
        ]);
        println!("{doc}");
        return ExitCode::SUCCESS;
    }

    let tree_sps = tree.steps as f64 / tree.elapsed_s;
    let vm_sps = vm.steps as f64 / vm.elapsed_s;
    let speedup = vm_sps / tree_sps;
    let mut fields = vec![
        ("benchmark", Json::Str("vm-throughput".into())),
        (
            "workload",
            Json::obj(vec![
                ("inner_iters", Json::Num(INNER)),
                ("timed_calls", Json::Num(f64::from(CALLS))),
                ("warmup_calls", Json::Num(f64::from(WARMUP))),
            ]),
        ),
        ("tree", engine_full(&tree, tree_sps)),
        ("vm", engine_full(&vm, vm_sps)),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ];

    if with_recorder {
        let pct = |off: f64, on: f64| ((off / on - 1.0) * 1000.0).round() / 10.0;
        let mut section = Vec::new();
        for (name, use_vm, off_run) in [("tree", false, &tree), ("vm", true, &vm)] {
            let on = match run_engine(use_vm, true) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("vm-throughput: {name} (recorder on): {e}");
                    return ExitCode::FAILURE;
                }
            };
            if on.steps != off_run.steps || on.result != off_run.result {
                eprintln!("vm-throughput: {name} diverged under the recorder");
                return ExitCode::FAILURE;
            }
            let on_sps = on.steps as f64 / on.elapsed_s;
            let off_sps = off_run.steps as f64 / off_run.elapsed_s;
            section.push((
                name,
                Json::obj(vec![
                    ("elapsed_s", Json::Num(on.elapsed_s)),
                    ("steps_per_sec", Json::Num(on_sps.round())),
                    ("overhead_pct", Json::Num(pct(off_sps, on_sps))),
                ]),
            ));
        }
        fields.push(("recorder", Json::obj(section)));
    }

    // First-class peak-RSS reading (VmHWM, Linux procfs); covers the
    // whole process life, so it prices the workload plus both engines.
    let rss_reg = Arc::new(aji_obs::Registry::new());
    if let Some(kb) = aji_obs::scoped(&rss_reg, aji_obs::record_peak_rss) {
        fields.push((
            "process",
            Json::obj(vec![("peak_rss_kb", Json::Num(kb as f64))]),
        ));
    }

    fields.push((
        "notes",
        Json::Str(
            "single-core wall clock, min of 3 passes, obs inactive during timing; \
             steps are identical across engines by the parity contract; analysis \
             output (oracle recall 93.0% with hints, corpus determinism) is pinned \
             unchanged by tests/oracle_pipeline.rs and tests/bytecode_differential.rs"
                .into(),
        ),
    ));
    let doc = Json::obj(fields);
    let text = doc.to_string();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("vm-throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(min) = require_speedup {
        if speedup < min {
            eprintln!("vm-throughput: speedup {speedup:.2}x below required {min:.2}x");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
