//! aji-report: profile the analysis pipeline with `aji-obs` and render the
//! collected span tree, counters and histograms.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p aji-bench --bin aji-report -- [OPTIONS] [FILE]
//!
//!   (no FILE)          run the pipeline on the doc-example project
//!   FILE               render a saved report instead of running anything:
//!                      either `aji-report --json` output or a
//!                      `BenchmarkReport` JSON with an "obs" field
//!   --project NAME     run on the named corpus pattern project
//!                      (webframe, pubsub, plugin-host, …)
//!   --dynamic          also run the dynamic call-graph phase
//!   --json             print the ObsReport as JSON instead of text
//!   --top N            show the top N counters (default 20)
//! ```
//!
//! The binary force-enables collection; `AJI_OBS` need not be set.

use aji::{run_benchmark, PipelineOptions};
use aji_ast::Project;
use aji_obs::{render_text, ObsReport, RenderOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: aji-report [--project NAME] [--dynamic] [--json] [--top N] [FILE]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut json = false;
    let mut dynamic = false;
    let mut top = 20usize;
    let mut project_name: Option<String> = None;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--dynamic" => dynamic = true,
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            "--project" => match args.next() {
                Some(n) => project_name = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return usage(),
            _ => file = Some(a),
        }
    }

    let (label, report) = if let Some(path) = file {
        match load_report(&path) {
            Ok(r) => (path, r),
            Err(e) => {
                eprintln!("aji-report: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let project = match project_name.as_deref() {
            None => doc_example(),
            Some(name) => match find_project(name) {
                Some(p) => p,
                None => {
                    eprintln!("aji-report: unknown project '{}'", project_name.unwrap());
                    eprintln!(
                        "known: {}",
                        aji_corpus::pattern_projects()
                            .iter()
                            .map(|p| p.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
        };
        match profile(&project, dynamic) {
            Ok(r) => (project.name.clone(), r),
            Err(e) => {
                eprintln!("aji-report: pipeline failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if json {
        println!("{}", report.to_json_string());
    } else {
        println!("== aji-report: {label} ==");
        print!("{}", render_text(&report, &RenderOptions { top_counters: top }));
    }
    ExitCode::SUCCESS
}

/// Runs the pipeline with collection force-enabled and returns the per-run
/// observability report.
fn profile(project: &Project, dynamic: bool) -> Result<ObsReport, aji::PipelineError> {
    aji_obs::force_enable();
    let opts = if dynamic {
        PipelineOptions::with_dynamic_cg()
    } else {
        PipelineOptions::default()
    };
    let report = run_benchmark(project, &opts)?;
    Ok(report
        .obs
        .expect("collection was force-enabled, report.obs must be set"))
}

/// Loads a saved report: either a bare `ObsReport` (`aji-report --json`
/// output) or a `BenchmarkReport` JSON carrying an `"obs"` field.
fn load_report(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    if let Ok(r) = ObsReport::from_json_str(&text) {
        return Ok(r);
    }
    let doc = aji_support::Json::parse(&text).map_err(|e| e.to_string())?;
    let obs = doc
        .get("obs")
        .ok_or("neither an ObsReport nor a BenchmarkReport with an \"obs\" field")?;
    ObsReport::from_json_str(&obs.to_string()).map_err(|e| e.to_string())
}

/// The crate-level doc example: a dynamic method table that the baseline
/// analysis cannot resolve but the extended analysis can.
fn doc_example() -> Project {
    let mut project = Project::new("doc-example");
    project.add_file(
        "index.js",
        "var api = {};\n\
         ['go', 'stop'].forEach(function(m) { api[m] = function() { return m; }; });\n\
         api.go();\n\
         api.stop();",
    );
    project.test_driver = Some("index.js".to_string());
    project
}

fn find_project(name: &str) -> Option<Project> {
    aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == name)
}
