//! aji-report: profile the analysis pipeline with `aji-obs` and render the
//! collected span tree, hot-function table, counters and histograms — plus
//! the flight-recorder export and perf-regression tooling.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p aji-bench --bin aji-report -- [OPTIONS] [FILE]
//!
//!   (no FILE)          run the pipeline on the doc-example project
//!   FILE               render a saved report instead of running anything:
//!                      either `aji-report --json` output or a
//!                      `BenchmarkReport` JSON with an "obs" field
//!   --project NAME     run on the named corpus pattern project
//!                      (webframe, pubsub, plugin-host, …)
//!   --dynamic          also run the dynamic call-graph phase
//!   --json             print the ObsReport as JSON instead of text
//!   --top N            show the top N counters (default 20)
//!   --top-fns N        show the top N hot functions (default 10)
//!   --deterministic    record the flight recorder in deterministic mode
//!                      (zeroed wall clocks; byte-identical across reruns
//!                      and thread counts)
//!   --chrome-trace OUT write the recorded trace as a Chrome/Perfetto
//!                      trace-event JSON to OUT (open in chrome://tracing
//!                      or https://ui.perfetto.dev)
//!   --diff OLD NEW     compare two saved metrics/report JSONs as a perf
//!                      gate: deterministic counters must match exactly,
//!                      wall-clock values within the tolerance band;
//!                      exits 1 on violation
//!   --tolerance PCT    wall-clock band for --diff, percent (default 25)
//! ```
//!
//! The binary force-enables collection and installs a flight recorder on
//! live runs; `AJI_OBS` need not be set.

use aji::{run_benchmark, PipelineOptions};
use aji_ast::Project;
use aji_bench::diff::diff_reports;
use aji_obs::{render_text, ObsReport, RenderOptions, TraceConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aji-report [--project NAME] [--dynamic] [--json] [--top N] [--top-fns N]\n\
         \x20                 [--deterministic] [--chrome-trace OUT] [FILE]\n\
         \x20      aji-report --diff OLD NEW [--tolerance PCT]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut json = false;
    let mut dynamic = false;
    let mut deterministic = false;
    let mut top = 20usize;
    let mut top_fns = 10usize;
    let mut tolerance = 25.0f64;
    let mut chrome_trace: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut project_name: Option<String> = None;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--dynamic" => dynamic = true,
            "--deterministic" => deterministic = true,
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            "--top-fns" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top_fns = n,
                None => return usage(),
            },
            "--tolerance" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => tolerance = n,
                None => return usage(),
            },
            "--chrome-trace" => match args.next() {
                Some(p) => chrome_trace = Some(p),
                None => return usage(),
            },
            "--diff" => match (args.next(), args.next()) {
                (Some(old), Some(new)) => diff = Some((old, new)),
                _ => return usage(),
            },
            "--project" => match args.next() {
                Some(n) => project_name = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return usage(),
            _ => file = Some(a),
        }
    }

    if let Some((old, new)) = diff {
        return run_diff(&old, &new, tolerance / 100.0);
    }

    let (label, report) = if let Some(path) = file {
        match load_report(&path) {
            Ok(r) => (path, r),
            Err(e) => {
                eprintln!("aji-report: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let project = match project_name.as_deref() {
            None => doc_example(),
            Some(name) => match find_project(name) {
                Some(p) => p,
                None => {
                    eprintln!("aji-report: unknown project '{}'", project_name.unwrap());
                    eprintln!(
                        "known: {}",
                        aji_corpus::pattern_projects()
                            .iter()
                            .map(|p| p.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
        };
        match profile(&project, dynamic, deterministic) {
            Ok(r) => (project.name.clone(), r),
            Err(e) => {
                eprintln!("aji-report: pipeline failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if let Some(out) = chrome_trace {
        let Some(trace) = &report.trace else {
            eprintln!("aji-report: report carries no trace (recorder was not installed)");
            return ExitCode::FAILURE;
        };
        let doc = trace.to_chrome_trace();
        if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
            eprintln!("aji-report: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "aji-report: wrote {} trace events to {out}",
            trace.events.len()
        );
    }

    if json {
        println!("{}", report.to_json_string());
    } else {
        println!("== aji-report: {label} ==");
        print!(
            "{}",
            render_text(
                &report,
                &RenderOptions {
                    top_counters: top,
                    top_functions: top_fns,
                }
            )
        );
    }
    ExitCode::SUCCESS
}

/// `--diff OLD NEW`: load both documents, compare, render findings, and
/// gate on fatal ones.
fn run_diff(old_path: &str, new_path: &str, tolerance: f64) -> ExitCode {
    let load = |path: &str| -> Result<aji_support::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        aji_support::Json::parse(&text).map_err(|e| e.to_string())
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) => {
            eprintln!("aji-report: cannot load {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        (_, Err(e)) => {
            eprintln!("aji-report: cannot load {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diff_reports(&old, &new, tolerance);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the pipeline with collection force-enabled and a flight recorder
/// installed, returning the per-run observability report (with trace and
/// hot-function profile).
fn profile(
    project: &Project,
    dynamic: bool,
    deterministic: bool,
) -> Result<ObsReport, aji::PipelineError> {
    aji_obs::force_enable();
    let config = if deterministic {
        TraceConfig::deterministic()
    } else {
        TraceConfig::default()
    };
    if let Some(reg) = aji_obs::current_registry() {
        reg.install_recorder(config);
    }
    let opts = if dynamic {
        PipelineOptions::with_dynamic_cg()
    } else {
        PipelineOptions::default()
    };
    let report = run_benchmark(project, &opts)?;
    Ok(report
        .obs
        .expect("collection was force-enabled, report.obs must be set"))
}

/// Loads a saved report: either a bare `ObsReport` (`aji-report --json`
/// output) or a `BenchmarkReport` JSON carrying an `"obs"` field.
fn load_report(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    if let Ok(r) = ObsReport::from_json_str(&text) {
        return Ok(r);
    }
    let doc = aji_support::Json::parse(&text).map_err(|e| e.to_string())?;
    let obs = doc
        .get("obs")
        .ok_or("neither an ObsReport nor a BenchmarkReport with an \"obs\" field")?;
    ObsReport::from_json_str(&obs.to_string()).map_err(|e| e.to_string())
}

/// The crate-level doc example: a dynamic method table that the baseline
/// analysis cannot resolve but the extended analysis can.
fn doc_example() -> Project {
    let mut project = Project::new("doc-example");
    project.add_file(
        "index.js",
        "var api = {};\n\
         ['go', 'stop'].forEach(function(m) { api[m] = function() { return m; }; });\n\
         api.go();\n\
         api.stop();",
    );
    project.test_driver = Some("index.js".to_string());
    project
}

fn find_project(name: &str) -> Option<Project> {
    aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == name)
}
