//! Table 2: call-edge-set recall and per-call precision of the baseline
//! and extended analyses against dynamic call graphs obtained by running
//! each benchmark's test driver.
//!
//! Run with `cargo run --release -p aji-bench --bin table2`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`,
//! `--json` for the deterministic corpus report, `--daemon SOCKET` to
//! send projects to a running `aji-serve` daemon instead of analyzing
//! locally — same JSON output; see DAEMON.md); see BENCHMARKS.md.

use aji::PipelineOptions;
use aji_bench::{collect_reports, corpus_metrics_json, exit_code, run_corpus, CorpusCli};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("table2", true);
    let projects = aji_corpus::table1_benchmarks();
    if let Some(socket) = cli.daemon.clone() {
        return aji_bench::run_daemon_mode(projects, &socket, cli.threads, true);
    }
    let results = run_corpus(projects, &PipelineOptions::with_dynamic_cg(), cli.threads);

    if cli.json {
        let failures = results.iter().filter(|r| r.outcome.is_err()).count();
        println!("{}", corpus_metrics_json(&results));
        return exit_code(failures);
    }
    let (reports, failures) = collect_reports(results);

    println!("== Table 2: recall and precision vs dynamic call graphs ==");
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "dyn-edge", "recallB%", "recallX%", "precB%", "precX%"
    );
    let mut recalls_b = Vec::new();
    let mut recalls_x = Vec::new();
    let mut precs_b = Vec::new();
    let mut precs_x = Vec::new();
    for report in &reports {
        let Some(acc) = &report.accuracy else {
            eprintln!("{}: no dynamic call graph", report.name);
            continue;
        };
        println!(
            "{:<22} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            report.name,
            acc.dynamic_edges,
            acc.baseline.recall_pct(),
            acc.extended.recall_pct(),
            acc.baseline.precision_pct(),
            acc.extended.precision_pct()
        );
        if acc.dynamic_edges > 0 {
            recalls_b.push(acc.baseline.recall_pct());
            recalls_x.push(acc.extended.recall_pct());
            precs_b.push(acc.baseline.precision_pct());
            precs_x.push(acc.extended.precision_pct());
        }
    }
    println!();
    println!("== Summary (cf. paper §5) ==");
    println!(
        "avg recall:    {:.1}% -> {:.1}%   (paper: 75.9% -> 88.1%)",
        avg(&recalls_b),
        avg(&recalls_x)
    );
    println!(
        "avg precision: {:.1}% -> {:.1}%  (paper: -1.5pp)",
        avg(&precs_b),
        avg(&precs_x)
    );
    exit_code(failures)
}

fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
