//! Table 3: running times of the baseline static analysis, approximate
//! interpretation, and the extended static analysis, per benchmark.
//!
//! Run with `cargo run --release -p aji-bench --bin table3`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`,
//! `--json` for the deterministic corpus report, `--daemon SOCKET` to
//! send projects to a running `aji-serve` daemon instead of analyzing
//! locally — same JSON output; see DAEMON.md); see BENCHMARKS.md.
//! Note the wall-clock columns here are per-phase and remain meaningful
//! under `--threads N > 1` (each project's phases run on one worker), but
//! they are not byte-reproducible; `--json` reports only the
//! deterministic metrics.

use aji::PipelineOptions;
use aji_bench::{collect_reports, corpus_metrics_json, exit_code, run_corpus, CorpusCli};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("table3", true);
    let projects = aji_corpus::table1_benchmarks();
    if let Some(socket) = cli.daemon.clone() {
        return aji_bench::run_daemon_mode(projects, &socket, cli.threads, false);
    }
    let results = run_corpus(projects, &PipelineOptions::default(), cli.threads);

    if cli.json {
        let failures = results.iter().filter(|r| r.outcome.is_err()).count();
        println!("{}", corpus_metrics_json(&results));
        return exit_code(failures);
    }
    let (reports, failures) = collect_reports(results);

    println!("== Table 3: running times (seconds) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "benchmark", "baseline", "approx", "extended"
    );
    let mut tb = Vec::new();
    let mut ta = Vec::new();
    let mut tx = Vec::new();
    for report in &reports {
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>12.4}",
            report.name, report.baseline_seconds, report.approx_seconds, report.extended_seconds
        );
        tb.push(report.baseline_seconds);
        ta.push(report.approx_seconds);
        tx.push(report.extended_seconds);
    }
    println!();
    println!("== Summary ==");
    println!(
        "totals: baseline {:.3}s, approx {:.3}s, extended {:.3}s",
        tb.iter().sum::<f64>(),
        ta.iter().sum::<f64>(),
        tx.iter().sum::<f64>()
    );
    println!(
        "extended/baseline time ratio avg: {:.2}x (paper: <1.1x for 76/141, >2x for 20/141)",
        avg_ratio(&tb, &tx)
    );
    exit_code(failures)
}

fn avg_ratio(base: &[f64], ext: &[f64]) -> f64 {
    let mut rs = Vec::new();
    for (b, x) in base.iter().zip(ext) {
        if *b > 0.0 {
            rs.push(x / b);
        }
    }
    if rs.is_empty() {
        0.0
    } else {
        rs.iter().sum::<f64>() / rs.len() as f64
    }
}
