//! Table 3: running times of the baseline static analysis, approximate
//! interpretation, and the extended static analysis, per benchmark.
//!
//! Run with `cargo run --release -p aji-bench --bin table3`.

use aji::{run_benchmark, PipelineOptions};

fn main() {
    let projects = aji_corpus::table1_benchmarks();
    println!("== Table 3: running times (seconds) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "benchmark", "baseline", "approx", "extended"
    );
    let mut tb = Vec::new();
    let mut ta = Vec::new();
    let mut tx = Vec::new();
    for p in &projects {
        let report = match run_benchmark(p, &PipelineOptions::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", p.name);
                continue;
            }
        };
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>12.4}",
            p.name, report.baseline_seconds, report.approx_seconds, report.extended_seconds
        );
        tb.push(report.baseline_seconds);
        ta.push(report.approx_seconds);
        tx.push(report.extended_seconds);
    }
    println!();
    println!("== Summary ==");
    println!(
        "totals: baseline {:.3}s, approx {:.3}s, extended {:.3}s",
        tb.iter().sum::<f64>(),
        ta.iter().sum::<f64>(),
        tx.iter().sum::<f64>()
    );
    println!(
        "extended/baseline time ratio avg: {:.2}x (paper: <1.1x for 76/141, >2x for 20/141)",
        avg_ratio(&tb, &tx)
    );
}

fn avg_ratio(base: &[f64], ext: &[f64]) -> f64 {
    let mut rs = Vec::new();
    for (b, x) in base.iter().zip(ext) {
        if *b > 0.0 {
            rs.push(x / b);
        }
    }
    if rs.is_empty() {
        0.0
    } else {
        rs.iter().sum::<f64>() / rs.len() as f64
    }
}
