//! Table 1: the benchmarks with dynamic call graphs and their sizes
//! (packages, modules, functions, code size).
//!
//! Run with `cargo run --release -p aji-bench --bin table1`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`); see
//! BENCHMARKS.md.

use aji_ast::visit::{FunctionCollector, Visit};
use aji_bench::{collect_reports, exit_code, run_corpus_map, CorpusCli};
use std::process::ExitCode;

struct Row {
    name: String,
    packages: usize,
    modules: usize,
    functions: usize,
    size_kb: f64,
}

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("table1", false);
    let projects = aji_corpus::table1_benchmarks();
    let n = projects.len();
    // Table 1 only needs the parse, not the pipeline.
    let results = run_corpus_map(projects, cli.threads, |p| {
        let parsed = aji_parser::parse_project(p).map_err(|e| format!("parse error: {e}"))?;
        let mut c = FunctionCollector::default();
        for m in &parsed.modules {
            c.visit_module(m);
        }
        Ok::<_, String>(Row {
            name: p.name.clone(),
            packages: p.package_count(),
            modules: p.module_count(),
            functions: c.functions.len(),
            size_kb: p.code_size_bytes() as f64 / 1024.0,
        })
    });
    let (rows, failures) = collect_reports(results);

    println!("== Table 1: Node.js benchmarks with dynamic call graphs ==");
    println!(
        "{:<22} {:>9} {:>8} {:>10} {:>10}",
        "benchmark", "packages", "modules", "functions", "size (kB)"
    );
    let mut total_funcs = 0usize;
    for r in &rows {
        total_funcs += r.functions;
        println!(
            "{:<22} {:>9} {:>8} {:>10} {:>10.1}",
            r.name, r.packages, r.modules, r.functions, r.size_kb
        );
    }
    println!();
    println!("{n} benchmarks, {total_funcs} function definitions in total");
    exit_code(failures)
}
