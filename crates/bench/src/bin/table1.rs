//! Table 1: the benchmarks with dynamic call graphs and their sizes
//! (packages, modules, functions, code size).
//!
//! Run with `cargo run --release -p aji-bench --bin table1`.

use aji_ast::visit::{FunctionCollector, Visit};

fn main() {
    let projects = aji_corpus::table1_benchmarks();
    println!("== Table 1: Node.js benchmarks with dynamic call graphs ==");
    println!(
        "{:<22} {:>9} {:>8} {:>10} {:>10}",
        "benchmark", "packages", "modules", "functions", "size (kB)"
    );
    let mut total_funcs = 0usize;
    for p in &projects {
        let parsed = match aji_parser::parse_project(p) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{}: parse error: {e}", p.name);
                continue;
            }
        };
        let mut c = FunctionCollector::default();
        for m in &parsed.modules {
            c.visit_module(m);
        }
        total_funcs += c.functions.len();
        println!(
            "{:<22} {:>9} {:>8} {:>10} {:>10.1}",
            p.name,
            p.package_count(),
            p.module_count(),
            c.functions.len(),
            p.code_size_bytes() as f64 / 1024.0
        );
    }
    println!();
    println!(
        "{} benchmarks, {} function definitions in total",
        projects.len(),
        total_funcs
    );
}
