//! Ablation study over the corpus:
//!
//! * \[DPW\]-only vs \[DPR\]-only vs both (the paper disables \[DPR\] for one
//!   OOM case in Table 2);
//! * the §4 *non-relational* alternative to \[DPW\], quantifying the
//!   precision it loses;
//! * the §6 proxy-read extension.
//!
//! Each project is parsed **once** and approximately interpreted **once**;
//! all six analysis modes share that parse and hint set (they differ only
//! in [`AnalysisOptions`]), so the study costs one pre-analysis per
//! project instead of six.
//!
//! Run with `cargo run --release -p aji-bench --bin ablations`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`); see
//! BENCHMARKS.md.

use aji_approx::{approximate_interpret_parsed, ApproxOptions};
use aji_bench::{collect_reports, exit_code, run_corpus_map, CorpusCli};
use aji_pta::{analyze_parsed, AnalysisOptions, CgMetrics};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("ablations", false);
    let projects = aji_corpus::table1_benchmarks();
    let n = projects.len();

    let modes: Vec<(&str, AnalysisOptions)> = vec![
        ("baseline", AnalysisOptions::baseline()),
        (
            "dpw-only",
            AnalysisOptions {
                use_read_hints: false,
                use_module_hints: false,
                ..AnalysisOptions::extended()
            },
        ),
        (
            "dpr-only",
            AnalysisOptions {
                use_write_hints: false,
                use_module_hints: false,
                ..AnalysisOptions::extended()
            },
        ),
        ("extended", AnalysisOptions::extended()),
        ("nonrelational", AnalysisOptions::nonrelational()),
        ("with-proxy-reads", AnalysisOptions::with_proxy_reads()),
    ];

    // Per project: one parse, one approximate interpretation, six analyses.
    let results = run_corpus_map(projects, cli.threads, |p| {
        let parsed = aji_parser::parse_project(p).map_err(|e| format!("parse error: {e}"))?;
        let approx = approximate_interpret_parsed(p, &parsed, &ApproxOptions::default());
        Ok::<_, String>(
            modes
                .iter()
                .map(|(_, opts)| {
                    CgMetrics::of(&analyze_parsed(p, &parsed, Some(&approx.hints), opts).call_graph)
                })
                .collect::<Vec<_>>(),
        )
    });
    let (per_project, failures) = collect_reports(results);

    println!("== Ablations over {n} benchmarks ==");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "mode", "edges", "reach", "resolved%", "mono%", "targets/site"
    );
    for (i, (name, _)) in modes.iter().enumerate() {
        let mut edges = 0usize;
        let mut reach = 0usize;
        let mut resolved = 0usize;
        let mut mono = 0usize;
        let mut sites = 0usize;
        for metrics in &per_project {
            let m = &metrics[i];
            edges += m.call_edges;
            reach += m.reachable_functions;
            resolved += m.resolved_sites;
            mono += m.monomorphic_sites;
            sites += m.total_sites;
        }
        println!(
            "{:<18} {:>10} {:>10} {:>9.1} {:>9.1} {:>12.3}",
            name,
            edges,
            reach,
            100.0 * resolved as f64 / sites.max(1) as f64,
            100.0 * mono as f64 / sites.max(1) as f64,
            edges as f64 / resolved.max(1) as f64
        );
    }
    println!();
    println!("expected shape:");
    println!("  edges:        baseline < dpw-only < extended; dpr-only adds little on its own");
    println!("  targets/site: nonrelational > extended at equal coverage — the §4 relational");
    println!("                rule is strictly more precise (see also aji-pta's ablation tests,");
    println!("                where one shared write site goes from 3 to 9 edges)");
    println!("  note: the non-relational mode only covers syntactic `o[k] = v` sites, not the");
    println!("        defineProperty/assign natives, so its absolute edge count is lower here");
    println!("  with-proxy-reads == extended on this corpus (no proxy-base reads with known keys)");
    exit_code(failures)
}
