//! Ablation study over the corpus:
//!
//! * \[DPW\]-only vs \[DPR\]-only vs both (the paper disables \[DPR\] for one
//!   OOM case in Table 2);
//! * the §4 *non-relational* alternative to \[DPW\], quantifying the
//!   precision it loses;
//! * the §6 proxy-read extension.
//!
//! Run with `cargo run --release -p aji-bench --bin ablations`.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_pta::{analyze, AnalysisOptions, CgMetrics};

fn main() {
    let projects = aji_corpus::table1_benchmarks();

    let modes: Vec<(&str, AnalysisOptions)> = vec![
        ("baseline", AnalysisOptions::baseline()),
        (
            "dpw-only",
            AnalysisOptions {
                use_read_hints: false,
                use_module_hints: false,
                ..AnalysisOptions::extended()
            },
        ),
        (
            "dpr-only",
            AnalysisOptions {
                use_write_hints: false,
                use_module_hints: false,
                ..AnalysisOptions::extended()
            },
        ),
        ("extended", AnalysisOptions::extended()),
        ("nonrelational", AnalysisOptions::nonrelational()),
        ("with-proxy-reads", AnalysisOptions::with_proxy_reads()),
    ];

    println!("== Ablations over {} benchmarks ==", projects.len());
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "mode", "edges", "reach", "resolved%", "mono%", "targets/site"
    );
    for (name, opts) in &modes {
        let mut edges = 0usize;
        let mut reach = 0usize;
        let mut resolved = 0usize;
        let mut mono = 0usize;
        let mut sites = 0usize;
        for p in &projects {
            let hints = match approximate_interpret(p, &ApproxOptions::default()) {
                Ok(r) => r.hints,
                Err(e) => {
                    eprintln!("{}: {e}", p.name);
                    continue;
                }
            };
            let a = match analyze(p, Some(&hints), opts) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{}: {e}", p.name);
                    continue;
                }
            };
            let m = CgMetrics::of(&a.call_graph);
            edges += m.call_edges;
            reach += m.reachable_functions;
            resolved += m.resolved_sites;
            mono += m.monomorphic_sites;
            sites += m.total_sites;
        }
        println!(
            "{:<18} {:>10} {:>10} {:>9.1} {:>9.1} {:>12.3}",
            name,
            edges,
            reach,
            100.0 * resolved as f64 / sites.max(1) as f64,
            100.0 * mono as f64 / sites.max(1) as f64,
            edges as f64 / resolved.max(1) as f64
        );
    }
    println!();
    println!("expected shape:");
    println!("  edges:        baseline < dpw-only < extended; dpr-only adds little on its own");
    println!("  targets/site: nonrelational > extended at equal coverage — the §4 relational");
    println!("                rule is strictly more precise (see also aji-pta's ablation tests,");
    println!("                where one shared write site goes from 3 to 9 edges)");
    println!("  note: the non-relational mode only covers syntactic `o[k] = v` sites, not the");
    println!("        defineProperty/assign natives, so its absolute edge count is lower here");
    println!("  with-proxy-reads == extended on this corpus (no proxy-base reads with known keys)");
}
