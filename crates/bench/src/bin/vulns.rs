//! The §5 vulnerability reachability study: how many functions with
//! known (synthetic) vulnerabilities in dependencies are reachable in the
//! baseline vs extended call graphs, plus total reachable functions.
//!
//! Run with `cargo run --release -p aji-bench --bin vulns`.

use aji::{run_benchmark, PipelineOptions};

fn main() {
    let projects = aji_corpus::table1_benchmarks();
    println!("== Vulnerability reachability (cf. paper §5) ==");
    println!(
        "{:<22} {:>6} {:>10} {:>10}",
        "benchmark", "vulns", "reachB", "reachX"
    );
    let mut total = 0usize;
    let mut reach_b = 0usize;
    let mut reach_x = 0usize;
    let mut funcs_b = 0usize;
    let mut funcs_x = 0usize;
    for p in &projects {
        let report = match run_benchmark(p, &PipelineOptions::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", p.name);
                continue;
            }
        };
        funcs_b += report.baseline.reachable_functions;
        funcs_x += report.extended.reachable_functions;
        if let Some(v) = &report.vulns {
            println!(
                "{:<22} {:>6} {:>10} {:>10}",
                p.name, v.total, v.reachable_baseline, v.reachable_extended
            );
            total += v.total;
            reach_b += v.reachable_baseline;
            reach_x += v.reachable_extended;
        }
    }
    println!();
    println!("== Summary ==");
    println!(
        "vulnerabilities: {total} total; reachable {reach_b} (baseline) -> {reach_x} (extended)   (paper: 447 total; 52 -> 55)"
    );
    println!(
        "total reachable functions: {funcs_b} -> {funcs_x}   (paper: 42661 -> 53805)"
    );
}
