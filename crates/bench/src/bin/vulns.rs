//! The §5 vulnerability reachability study: how many functions with
//! known (synthetic) vulnerabilities in dependencies are reachable in the
//! baseline vs extended call graphs, plus total reachable functions.
//!
//! Run with `cargo run --release -p aji-bench --bin vulns`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`,
//! `--json` for the deterministic corpus report, `--daemon SOCKET` to
//! send projects to a running `aji-serve` daemon instead of analyzing
//! locally — same JSON output; see DAEMON.md); see BENCHMARKS.md.

use aji::PipelineOptions;
use aji_bench::{
    collect_reports, corpus_metrics_json, daemon_metrics_json, exit_code, run_corpus,
    run_corpus_daemon, vulns_corpus_json, CorpusCli,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("vulns", true);
    let projects = aji_corpus::table1_benchmarks();
    if let Some(socket) = cli.daemon.clone() {
        // Same summary wrapper as the local `--json` path, so thin-client
        // and local machine-readable output stay byte-identical.
        let results = run_corpus_daemon(projects, &socket, cli.threads, false);
        let failures = results.iter().filter(|r| r.outcome.is_err()).count();
        for r in &results {
            if let Err(e) = &r.outcome {
                eprintln!("{}: {e}", r.name);
            }
        }
        println!("{}", vulns_corpus_json(&daemon_metrics_json(&results)));
        return exit_code(failures);
    }
    let results = run_corpus(projects, &PipelineOptions::default(), cli.threads);

    if cli.json {
        let failures = results.iter().filter(|r| r.outcome.is_err()).count();
        println!("{}", vulns_corpus_json(&corpus_metrics_json(&results)));
        return exit_code(failures);
    }
    let (reports, failures) = collect_reports(results);

    println!("== Vulnerability reachability (cf. paper §5) ==");
    println!(
        "{:<22} {:>6} {:>10} {:>10}",
        "benchmark", "vulns", "reachB", "reachX"
    );
    let mut total = 0usize;
    let mut reach_b = 0usize;
    let mut reach_x = 0usize;
    let mut funcs_b = 0usize;
    let mut funcs_x = 0usize;
    for report in &reports {
        funcs_b += report.baseline.reachable_functions;
        funcs_x += report.extended.reachable_functions;
        if let Some(v) = &report.vulns {
            println!(
                "{:<22} {:>6} {:>10} {:>10}",
                report.name, v.total, v.reachable_baseline, v.reachable_extended
            );
            total += v.total;
            reach_b += v.reachable_baseline;
            reach_x += v.reachable_extended;
        }
    }
    println!();
    println!("== Summary ==");
    println!(
        "vulnerabilities: {total} total; reachable {reach_b} (baseline) -> {reach_x} (extended)   (paper: 447 total; 52 -> 55)"
    );
    println!(
        "total reachable functions: {funcs_b} -> {funcs_x}   (paper: 42661 -> 53805)"
    );
    exit_code(failures)
}
