//! Figures 4–7 (and the §5 headline numbers): per-benchmark call edges,
//! reachable functions, resolved and monomorphic call sites, for the
//! baseline and the extended analysis, over the full 141-project
//! population. Also prints the hint-count and pre-analysis-coverage
//! statistics reported in §5.
//!
//! Run with `cargo run --release -p aji-bench --bin fig4_7`.
//! Accepts the shared corpus flags (`--threads N`, `AJI_THREADS`,
//! `--json` for the deterministic corpus report, `--daemon SOCKET` to
//! send projects to a running `aji-serve` daemon instead of analyzing
//! locally — same JSON output; see DAEMON.md); see BENCHMARKS.md.

use aji::{BenchmarkReport, PipelineOptions};
use aji_bench::{collect_reports, corpus_metrics_json, exit_code, run_corpus, CorpusCli};
use std::process::ExitCode;

struct Row {
    name: String,
    base_edges: usize,
    ext_edges: usize,
    base_reach: usize,
    ext_reach: usize,
    base_resolved: f64,
    ext_resolved: f64,
    base_mono: f64,
    ext_mono: f64,
    hints: usize,
    coverage: f64,
    approx_secs: f64,
}

fn row_of(r: &BenchmarkReport) -> Row {
    Row {
        name: r.name.clone(),
        base_edges: r.baseline.call_edges,
        ext_edges: r.extended.call_edges,
        base_reach: r.baseline.reachable_functions,
        ext_reach: r.extended.reachable_functions,
        base_resolved: r.baseline.resolved_pct(),
        ext_resolved: r.extended.resolved_pct(),
        base_mono: r.baseline.monomorphic_pct(),
        ext_mono: r.extended.monomorphic_pct(),
        hints: r.hint_count,
        coverage: r.approx_stats.coverage(),
        approx_secs: r.approx_seconds,
    }
}

fn main() -> ExitCode {
    let cli = CorpusCli::from_env("fig4_7", true);
    let projects = aji_corpus::full_population();
    let n = projects.len();
    if let Some(socket) = cli.daemon.clone() {
        return aji_bench::run_daemon_mode(projects, &socket, cli.threads, false);
    }
    let results = run_corpus(projects, &PipelineOptions::default(), cli.threads);

    if cli.json {
        let failures = results.iter().filter(|r| r.outcome.is_err()).count();
        println!("{}", corpus_metrics_json(&results));
        return exit_code(failures);
    }
    let (reports, failures) = collect_reports(results);
    let rows: Vec<Row> = reports.iter().map(row_of).collect();

    println!("== Figures 4-7: per-benchmark metrics ({n} programs) ==");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6} {:>8}",
        "benchmark",
        "edgeB",
        "edgeX",
        "reachB",
        "reachX",
        "resB%",
        "resX%",
        "monoB%",
        "monoX%",
        "hints",
        "cov%",
        "approx-s"
    );
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_by_key(|r| r.base_edges);
    for r in &sorted {
        println!(
            "{:<22} {:>7} {:>7} {:>7} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>7} {:>6.1} {:>8.3}",
            r.name,
            r.base_edges,
            r.ext_edges,
            r.base_reach,
            r.ext_reach,
            r.base_resolved,
            r.ext_resolved,
            r.base_mono,
            r.ext_mono,
            r.hints,
            r.coverage * 100.0,
            r.approx_secs
        );
    }

    // §5 headline averages (relative increases, averaged per benchmark as
    // in the paper).
    let mut edge_incr = Vec::new();
    let mut reach_incr = Vec::new();
    let mut resolved_delta = Vec::new();
    let mut mono_delta = Vec::new();
    for r in &rows {
        if r.base_edges > 0 {
            edge_incr.push(100.0 * (r.ext_edges as f64 - r.base_edges as f64) / r.base_edges as f64);
        }
        if r.base_reach > 0 {
            reach_incr
                .push(100.0 * (r.ext_reach as f64 - r.base_reach as f64) / r.base_reach as f64);
        }
        resolved_delta.push(r.ext_resolved - r.base_resolved);
        mono_delta.push(r.ext_mono - r.base_mono);
    }
    let mut hints: Vec<usize> = rows.iter().map(|r| r.hints).collect();
    hints.sort_unstable();
    let coverage_avg = avg(&rows.iter().map(|r| r.coverage * 100.0).collect::<Vec<_>>());
    let approx_times: Vec<f64> = rows.iter().map(|r| r.approx_secs).collect();

    println!();
    println!("== Summary (cf. paper §5) ==");
    println!("avg extra call edges:        {:+.1}%   (paper: +55.1%)", avg(&edge_incr));
    println!("avg extra reachable funcs:   {:+.1}%   (paper: +21.8%)", avg(&reach_incr));
    println!(
        "avg resolved call sites:     {:+.1}pp  (paper: +17.7pp)",
        avg(&resolved_delta)
    );
    println!(
        "avg monomorphic call sites:  {:+.1}pp  (paper: -1.5pp)",
        avg(&mono_delta)
    );
    println!(
        "hints per program:           min {} / median {} / max {}   (paper: 0 / 1492 / 15036)",
        hints.first().unwrap_or(&0),
        hints.get(hints.len() / 2).unwrap_or(&0),
        hints.last().unwrap_or(&0)
    );
    println!(
        "functions visited by approx: {:.1}%   (paper: 60%)",
        coverage_avg
    );
    println!(
        "approx interpretation time:  min {:.3}s / avg {:.3}s / max {:.3}s   (paper: 0.6s-51s, avg 4.5s)",
        approx_times.iter().cloned().fold(f64::INFINITY, f64::min),
        avg(&approx_times),
        approx_times.iter().cloned().fold(0.0, f64::max)
    );
    exit_code(failures)
}

fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
