//! The request engine: protocol dispatch over the [`HintStore`].
//!
//! One [`Engine`] owns one store and handles one request at a time —
//! the daemon is deliberately single-threaded (parsed modules are `Rc`
//! trees), and determinism across *client-side* fan-out follows from
//! responses being pure functions of request content.
//!
//! The request catalogue (see DAEMON.md for the full reference):
//!
//! | op           | effect                                              |
//! |--------------|-----------------------------------------------------|
//! | `analyze`    | full pipeline; warm responses come from the store   |
//! | `oracle`     | differential soundness oracle on one project        |
//! | `invalidate` | evict a project or one module's dependency cone     |
//! | `stats`      | store counters, layer sizes, request count          |
//! | `save`       | write the store snapshot now                        |
//! | `shutdown`   | save (if configured) and stop the accept loop       |
//!
//! Every response is `{"ok":true,"op":...,"result":...}` or
//! `{"ok":false,"op":...,"error":"..."}`. Request-level errors are valid
//! frames; only transport garbage is answered with a protocol error.

use std::path::PathBuf;
use std::sync::Arc;

use aji::PipelineOptions;
use aji_ast::Project;
use aji_oracle::OracleOptions;
use aji_support::hash::Fnv64;
use aji_support::{Json, ToJson};

use crate::store::HintStore;

/// Domain-separation seed for the hint layer's approx-options
/// fingerprint: hint keys must not collide with full pipeline or oracle
/// fingerprints, because the hint layer is shared between `analyze`
/// variants (static and dynamic) whose *full* fingerprints differ.
const APPROX_FP_SEED: u64 = 0x0A99_C0FF_1E1D;

/// Engine configuration.
#[derive(Default)]
pub struct EngineOptions {
    /// Digest seed for the store (snapshots only reload under the same
    /// seed).
    pub seed: u64,
    /// Snapshot file; `None` disables persistence.
    pub store_path: Option<PathBuf>,
    /// Pipeline options for `analyze` (a request's `"dynamic": true`
    /// additionally switches `dynamic_cg` on).
    pub pipeline: PipelineOptions,
    /// Oracle options for `oracle`.
    pub oracle: OracleOptions,
}


/// The daemon's brain: a [`HintStore`] plus request dispatch.
pub struct Engine {
    opts: EngineOptions,
    store: HintStore,
    /// Lazily-built index of the built-in corpora, for `"name"` requests.
    corpus: std::collections::BTreeMap<String, Project>,
    patterns_loaded: bool,
    population_loaded: bool,
    requests: u64,
}

impl Engine {
    /// Creates an engine, reloading the store snapshot if `store_path`
    /// names an existing, seed-compatible file.
    pub fn new(opts: EngineOptions) -> Engine {
        let store = match &opts.store_path {
            Some(p) => HintStore::open(p, opts.seed),
            None => HintStore::new(opts.seed),
        };
        Engine {
            opts,
            store,
            corpus: std::collections::BTreeMap::new(),
            patterns_loaded: false,
            population_loaded: false,
            requests: 0,
        }
    }

    /// Read access to the store (tests and the bench binary).
    pub fn store(&self) -> &HintStore {
        &self.store
    }

    /// Handles one request frame. Returns the response frame and whether
    /// the daemon should shut down after sending it.
    ///
    /// With `"obs": true` in the request, the op runs under a fresh
    /// per-request [`aji_obs::Registry`] and the response gains an
    /// `"obs"` field with its report — span tree, counters, histograms —
    /// which aji-report can render and diff. Obs-carrying responses
    /// contain timings and are therefore *not* byte-stable; the cache
    /// stores only the deterministic `result` payload.
    pub fn handle(&mut self, req: &Json) -> (Json, bool) {
        self.requests += 1;
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => {
                return (
                    err_frame("?", "request has no 'op' field".to_string()),
                    false,
                )
            }
        };
        if req.get("obs").and_then(Json::as_bool) == Some(true) {
            let reg = Arc::new(aji_obs::Registry::new());
            let (mut frame, shutdown) = aji_obs::scoped(&reg, || self.dispatch(&op, req));
            if let Json::Obj(pairs) = &mut frame {
                pairs.push(("obs".to_string(), reg.report().to_json()));
            }
            (frame, shutdown)
        } else {
            self.dispatch(&op, req)
        }
    }

    /// Requests handled so far (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> (Json, bool) {
        match op {
            "analyze" => (self.op_analyze(req), false),
            "oracle" => (self.op_oracle(req), false),
            "invalidate" => (self.op_invalidate(req), false),
            "stats" => (self.op_stats(), false),
            "save" => (self.op_save(), false),
            "shutdown" => {
                let persisted = self.save_if_configured();
                (
                    ok_frame(
                        "shutdown",
                        Json::obj(vec![("persisted", Json::Bool(persisted))]),
                    ),
                    true,
                )
            }
            other => (
                err_frame(other, format!("unknown op '{other}'")),
                false,
            ),
        }
    }

    /// `analyze`: response cache first; on a miss, parse through the
    /// parse layer, reuse hints when the hint layer has this `(digest,
    /// approx fingerprint)`, and run the remaining pipeline phases. The
    /// cached value is the deterministic `metrics_json` payload, so warm
    /// and cold responses are byte-identical.
    fn op_analyze(&mut self, req: &Json) -> Json {
        let project = match self.resolve_project(req) {
            Ok(p) => p,
            Err(e) => return err_frame("analyze", e),
        };
        let mut opts = self.opts.pipeline.clone();
        if req.get("dynamic").and_then(Json::as_bool) == Some(true) {
            opts.dynamic_cg = true;
        }
        let fp = opts.fingerprint();
        let digest = self.store.project_digest(&project);
        if let Some(body) = self.store.response("analyze", &project.name, digest, fp) {
            return match Json::parse(&body) {
                Ok(result) => ok_frame("analyze", result),
                Err(e) => err_frame("analyze", format!("corrupt cached response: {e}")),
            };
        }
        let parsed = match self.store.parse(&project) {
            Ok(p) => p,
            Err(e) => return err_frame("analyze", format!("parse error: {e}")),
        };
        let mut h = Fnv64::new(APPROX_FP_SEED);
        opts.approx.fingerprint_into(&mut h);
        let approx_fp = h.finish();
        let report = match self.store.hints(&project.name, digest, approx_fp) {
            Some((hints, stats)) => {
                aji::run_benchmark_with_hints(&project, &parsed, hints, stats, &opts)
            }
            None => {
                let report = aji::run_benchmark_parsed(&project, &parsed, &opts);
                if let Ok(r) = &report {
                    self.store.put_hints(
                        &project.name,
                        digest,
                        approx_fp,
                        r.hints.clone(),
                        r.approx_stats.clone(),
                    );
                }
                report
            }
        };
        match report {
            Ok(report) => {
                let result = report.metrics_json();
                self.store
                    .put_response("analyze", &project.name, digest, fp, result.to_string());
                ok_frame("analyze", result)
            }
            Err(e) => err_frame("analyze", format!("pipeline error: {e}")),
        }
    }

    /// `oracle`: same caching shape as `analyze` (response layer keyed
    /// under the oracle fingerprint, parse layer shared with `analyze` —
    /// an oracle run after an analyze of the same sources re-parses
    /// nothing).
    fn op_oracle(&mut self, req: &Json) -> Json {
        let project = match self.resolve_project(req) {
            Ok(p) => p,
            Err(e) => return err_frame("oracle", e),
        };
        let fp = self.opts.oracle.fingerprint();
        let digest = self.store.project_digest(&project);
        if let Some(body) = self.store.response("oracle", &project.name, digest, fp) {
            return match Json::parse(&body) {
                Ok(result) => ok_frame("oracle", result),
                Err(e) => err_frame("oracle", format!("corrupt cached response: {e}")),
            };
        }
        let parsed = match self.store.parse(&project) {
            Ok(p) => p,
            Err(e) => return err_frame("oracle", format!("parse error: {e}")),
        };
        match aji_oracle::run_oracle_parsed(&project, &parsed, &self.opts.oracle) {
            Ok(oracle) => {
                let result = oracle.to_json();
                self.store
                    .put_response("oracle", &project.name, digest, fp, result.to_string());
                ok_frame("oracle", result)
            }
            Err(e) => err_frame("oracle", format!("oracle error: {e}")),
        }
    }

    fn op_invalidate(&mut self, req: &Json) -> Json {
        let Some(name) = req.get("name").and_then(Json::as_str) else {
            return err_frame("invalidate", "invalidate needs a 'name'".to_string());
        };
        let path = req.get("path").and_then(Json::as_str);
        match self.store.invalidate(name, path) {
            Ok(out) => ok_frame("invalidate", out.to_json()),
            Err(e) => err_frame("invalidate", e),
        }
    }

    fn op_stats(&self) -> Json {
        let (projects, modules, hints, responses) = self.store.sizes();
        let store = self.store.stats();
        ok_frame(
            "stats",
            Json::obj(vec![
                ("requests", self.requests.to_json()),
                ("seed", Json::Str(aji_support::hash::hex(self.store.seed()))),
                ("store", store.to_json()),
                (
                    "sizes",
                    Json::obj(vec![
                        ("projects", projects.to_json()),
                        ("modules", modules.to_json()),
                        ("hints", hints.to_json()),
                        ("responses", responses.to_json()),
                    ]),
                ),
            ]),
        )
    }

    fn op_save(&mut self) -> Json {
        match &self.opts.store_path {
            None => err_frame("save", "no --store file configured".to_string()),
            Some(p) => match self.store.save_to(p) {
                Ok(()) => ok_frame(
                    "save",
                    Json::obj(vec![("path", Json::Str(p.display().to_string()))]),
                ),
                Err(e) => err_frame("save", format!("cannot save: {e}")),
            },
        }
    }

    /// Saves if persistence is configured; reports whether a snapshot
    /// was written.
    pub fn save_if_configured(&mut self) -> bool {
        match &self.opts.store_path {
            None => false,
            Some(p) => match self.store.save_to(p) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("aji-serve: snapshot save failed: {e}");
                    false
                }
            },
        }
    }

    /// A request names its project either inline (`"project": {...}`, in
    /// [`Project::from_json`] form) or by built-in corpus name
    /// (`"name": "..."` — the pattern corpus first, then the generated
    /// population, both built lazily and indexed once).
    fn resolve_project(&mut self, req: &Json) -> Result<Project, String> {
        if let Some(doc) = req.get("project") {
            return Project::from_json(doc);
        }
        let Some(name) = req.get("name").and_then(Json::as_str) else {
            return Err("request needs a 'project' (inline) or 'name' (corpus)".to_string());
        };
        if let Some(p) = self.corpus.get(name) {
            return Ok(p.clone());
        }
        if !self.patterns_loaded {
            self.patterns_loaded = true;
            for p in aji_corpus::pattern_projects() {
                self.corpus.insert(p.name.clone(), p);
            }
            if let Some(p) = self.corpus.get(name) {
                return Ok(p.clone());
            }
        }
        if !self.population_loaded {
            self.population_loaded = true;
            for p in aji_corpus::full_population() {
                self.corpus.insert(p.name.clone(), p);
            }
            if let Some(p) = self.corpus.get(name) {
                return Ok(p.clone());
            }
        }
        Err(format!("unknown corpus project '{name}'"))
    }
}

/// `{"ok":true,"op":op,"result":result}`.
fn ok_frame(op: &str, result: Json) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str(op.to_string())),
        ("result", result),
    ])
}

/// `{"ok":false,"op":op,"error":error}`.
fn err_frame(op: &str, error: String) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("op", Json::Str(op.to_string())),
        ("error", Json::Str(error)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_req(project: &Json) -> Json {
        Json::obj(vec![
            ("op", Json::Str("analyze".into())),
            ("project", project.clone()),
        ])
    }

    fn tiny_project() -> Json {
        let p = Project {
            name: "engine-test".into(),
            files: vec![aji_ast::ProjectFile {
                path: "main.js".into(),
                src: "var o = { f: function() { return 1; } }; var k = 'f'; o[k]();".into(),
            }],
            main: "main.js".into(),
            test_driver: None,
            vulns: Vec::new(),
        };
        p.to_json()
    }

    #[test]
    fn analyze_warm_response_is_byte_identical_and_counted() {
        let mut engine = Engine::new(EngineOptions::default());
        let req = analyze_req(&tiny_project());
        let (cold, stop) = engine.handle(&req);
        assert!(!stop);
        assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "{cold}");
        let (warm, _) = engine.handle(&req);
        assert_eq!(cold.to_string(), warm.to_string());
        let s = engine.store().stats();
        assert_eq!((s.response_hits, s.response_misses), (1, 1));
    }

    #[test]
    fn dynamic_analyze_reuses_hints_not_responses() {
        let mut engine = Engine::new(EngineOptions::default());
        let project = tiny_project();
        let (first, _) = engine.handle(&analyze_req(&project));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        let mut dyn_req = analyze_req(&project);
        if let Json::Obj(pairs) = &mut dyn_req {
            pairs.push(("dynamic".to_string(), Json::Bool(true)));
        }
        let (second, _) = engine.handle(&dyn_req);
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{second}");
        assert!(
            second.get("result").and_then(|r| r.get("accuracy")).is_some(),
            "dynamic run reports accuracy"
        );
        let s = engine.store().stats();
        assert_eq!(s.hint_hits, 1, "approx phase skipped on the dynamic run");
        assert_eq!(s.response_hits, 0, "different fingerprint, so no response hit");
    }

    #[test]
    fn corpus_lookup_and_unknown_names() {
        let mut engine = Engine::new(EngineOptions::default());
        let (resp, _) = engine.handle(&Json::obj(vec![
            ("op", Json::Str("analyze".into())),
            ("name", Json::Str("definitely-not-a-project".into())),
        ]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let patterns = aji_corpus::pattern_projects();
        let (resp, _) = engine.handle(&Json::obj(vec![
            ("op", Json::Str("analyze".into())),
            ("name", Json::Str(patterns[0].name.clone())),
        ]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    }

    #[test]
    fn bad_requests_are_error_frames() {
        let mut engine = Engine::new(EngineOptions::default());
        let (resp, stop) = engine.handle(&Json::obj(vec![("noop", Json::Bool(true))]));
        assert!(!stop);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let (resp, _) = engine.handle(&Json::obj(vec![("op", Json::Str("fly".into()))]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let (resp, _) = engine.handle(&Json::obj(vec![("op", Json::Str("save".into()))]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "save without store");
        // A parse error is a request-level error, not a cached response.
        let broken = Project {
            name: "broken".into(),
            files: vec![aji_ast::ProjectFile {
                path: "main.js".into(),
                src: "var = ;".into(),
            }],
            main: "main.js".into(),
            test_driver: None,
            vulns: Vec::new(),
        };
        let (resp, _) = engine.handle(&analyze_req(&broken.to_json()));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn shutdown_without_store_reports_unpersisted() {
        let mut engine = Engine::new(EngineOptions::default());
        let (resp, stop) = engine.handle(&Json::obj(vec![("op", Json::Str("shutdown".into()))]));
        assert!(stop);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            resp.get("result").and_then(|r| r.get("persisted")),
            Some(&Json::Bool(false))
        );
    }

    #[test]
    fn obs_requests_carry_a_per_request_report() {
        let mut engine = Engine::new(EngineOptions::default());
        let mut req = analyze_req(&tiny_project());
        if let Json::Obj(pairs) = &mut req {
            pairs.push(("obs".to_string(), Json::Bool(true)));
        }
        let (resp, _) = engine.handle(&req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let obs = resp.get("obs").expect("per-request obs report");
        let spans = obs.get("spans").and_then(Json::as_arr).expect("span list");
        assert!(
            spans
                .iter()
                .any(|s| s.get("path").and_then(Json::as_str) == Some("pipeline")),
            "pipeline span recorded"
        );
        // The same request without obs: byte-identical result payload.
        let (plain, _) = engine.handle(&analyze_req(&tiny_project()));
        assert_eq!(
            plain.get("result").map(Json::to_string),
            resp.get("result").map(Json::to_string)
        );
    }

    #[test]
    fn stats_frame_shape() {
        let mut engine = Engine::new(EngineOptions::default());
        engine.handle(&analyze_req(&tiny_project()));
        let (resp, _) = engine.handle(&Json::obj(vec![("op", Json::Str("stats".into()))]));
        let result = resp.get("result").expect("result");
        assert_eq!(result.get("requests").and_then(Json::as_f64), Some(2.0));
        let store = result.get("store").expect("store counters");
        assert_eq!(store.get("response_misses").and_then(Json::as_f64), Some(1.0));
        let sizes = result.get("sizes").expect("layer sizes");
        assert_eq!(sizes.get("projects").and_then(Json::as_f64), Some(1.0));
    }
}
