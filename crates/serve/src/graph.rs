//! Module import graph and invalidation cones.
//!
//! `invalidate` with a `path` must evict exactly the modules whose
//! analysis results could depend on the edited file: the file itself plus
//! everything that (transitively) `require`s it — its **dependency
//! cone** in the reverse-import graph. This module builds that graph
//! from parsed ASTs, using the same module-resolution rules as the
//! points-to solver ([`aji_pta::solver::resolve_module`]), so the daemon and the
//! analysis never disagree about which file a `require("./lib")` names.
//!
//! Only statically-resolvable imports — `require("<literal>")` — become
//! edges. Dynamic `require(expr)` sites are invisible here, which is
//! safe for the *store* because every derived layer (hints, responses)
//! is also keyed by a whole-project content digest: a missed edge can
//! cost a cache miss, never a stale answer.

use std::collections::BTreeSet;
use std::rc::Rc;

use aji_ast::visit::{walk_expr, Visit};
use aji_ast::{ast::ExprKind, FileId, Module, Project};

/// Import edges between a project's modules, with a reverse index for
/// cone queries. Indices are file indices ([`FileId::index`]).
#[derive(Debug, Clone)]
pub struct ModuleGraph {
    /// File paths, in project order (`paths[i]` is `FileId(i)`).
    paths: Vec<String>,
    /// `imports[i]` — files that file `i` `require`s.
    imports: Vec<BTreeSet<usize>>,
    /// `dependents[i]` — files that `require` file `i` (reverse edges).
    dependents: Vec<BTreeSet<usize>>,
}

/// Collects the string arguments of statically-resolvable
/// `require("<literal>")` calls in one module.
struct RequireScan {
    specs: Vec<String>,
}

impl Visit for RequireScan {
    fn visit_expr(&mut self, e: &aji_ast::ast::Expr) {
        if let ExprKind::Call { callee, args, .. } = &e.kind {
            if let ExprKind::Ident(name) = &callee.kind {
                if name == "require" && args.len() == 1 && !args[0].spread {
                    if let ExprKind::Str(spec) = &args[0].expr.kind {
                        self.specs.push(spec.clone());
                    }
                }
            }
        }
        walk_expr(self, e);
    }
}

impl ModuleGraph {
    /// Builds the graph for a parsed project. `modules[i]` must be the
    /// parse of `project.files[i]`.
    pub fn build(project: &Project, modules: &[Rc<Module>]) -> ModuleGraph {
        let paths: Vec<String> = project.files.iter().map(|f| f.path.clone()).collect();
        let n = paths.len();
        let mut imports = vec![BTreeSet::new(); n];
        let mut dependents = vec![BTreeSet::new(); n];
        for (i, module) in modules.iter().enumerate() {
            let mut scan = RequireScan { specs: Vec::new() };
            scan.visit_module(module);
            for spec in scan.specs {
                if let Some(target) = aji_pta::solver::resolve_module(&paths, FileId(i as u32), &spec) {
                    if let Some(j) = paths.iter().position(|p| *p == target) {
                        if i != j {
                            imports[i].insert(j);
                            dependents[j].insert(i);
                        }
                    }
                }
            }
        }
        ModuleGraph {
            paths,
            imports,
            dependents,
        }
    }

    /// File paths, in project order.
    pub fn paths(&self) -> &[String] {
        &self.paths
    }

    /// Index of a path, if it names a module of this project.
    pub fn index_of(&self, path: &str) -> Option<usize> {
        self.paths.iter().position(|p| p == path)
    }

    /// Files that file `i` imports (direct edges only).
    pub fn imports(&self, i: usize) -> &BTreeSet<usize> {
        &self.imports[i]
    }

    /// The dependency cone of `path`: the file itself plus every file
    /// that transitively `require`s it — exactly the set whose cached
    /// parses an edit to `path` can stale. `None` if the path is not a
    /// module of this project.
    pub fn cone(&self, path: &str) -> Option<BTreeSet<usize>> {
        let start = self.index_of(path)?;
        let mut cone = BTreeSet::new();
        let mut work = vec![start];
        while let Some(i) = work.pop() {
            if cone.insert(i) {
                work.extend(self.dependents[i].iter().copied());
            }
        }
        Some(cone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::ProjectFile;

    fn project(files: &[(&str, &str)]) -> Project {
        Project {
            name: "graph-test".into(),
            files: files
                .iter()
                .map(|(p, s)| ProjectFile {
                    path: (*p).to_string(),
                    src: (*s).to_string(),
                })
                .collect(),
            main: files[0].0.to_string(),
            test_driver: None,
            vulns: Vec::new(),
        }
    }

    fn build(files: &[(&str, &str)]) -> ModuleGraph {
        let p = project(files);
        let parsed = aji_parser::parse_project(&p).expect("parse");
        ModuleGraph::build(&p, &parsed.modules)
    }

    #[test]
    fn direct_requires_become_edges() {
        let g = build(&[
            ("main.js", "var a = require('./a'); a.go();"),
            ("a.js", "module.exports = { go: function() { return 1; } };"),
        ]);
        assert_eq!(g.imports(0).iter().copied().collect::<Vec<_>>(), vec![1]);
        assert!(g.imports(1).is_empty());
    }

    #[test]
    fn cone_is_reflexive_and_transitive() {
        // main -> mid -> leaf: editing leaf stales mid and main.
        let g = build(&[
            ("main.js", "var m = require('./mid');"),
            ("mid.js", "var l = require('./leaf'); module.exports = l;"),
            ("leaf.js", "module.exports = 1;"),
        ]);
        let cone: Vec<usize> = g.cone("leaf.js").unwrap().into_iter().collect();
        assert_eq!(cone, vec![0, 1, 2]);
        let mid_cone: Vec<usize> = g.cone("mid.js").unwrap().into_iter().collect();
        assert_eq!(mid_cone, vec![0, 1]);
        // Editing main stales only main.
        assert_eq!(g.cone("main.js").unwrap().len(), 1);
    }

    #[test]
    fn cone_handles_require_cycles() {
        let g = build(&[
            ("a.js", "var b = require('./b');"),
            ("b.js", "var a = require('./a');"),
        ]);
        assert_eq!(g.cone("a.js").unwrap().len(), 2);
        assert_eq!(g.cone("b.js").unwrap().len(), 2);
    }

    #[test]
    fn dynamic_requires_are_not_edges() {
        let g = build(&[
            ("main.js", "var name = './a'; var a = require(name);"),
            ("a.js", "module.exports = 1;"),
        ]);
        assert!(g.imports(0).is_empty());
        // a.js still has a (trivial) cone: itself.
        assert_eq!(g.cone("a.js").unwrap().len(), 1);
    }

    #[test]
    fn unknown_path_has_no_cone() {
        let g = build(&[("main.js", "var x = 1;")]);
        assert!(g.cone("nope.js").is_none());
        assert_eq!(g.index_of("main.js"), Some(0));
    }

    #[test]
    fn resolution_matches_solver_suffix_rules() {
        // require('./lib') resolves to lib/index.js via the solver's
        // suffix rules; the graph must agree.
        let g = build(&[
            ("main.js", "var l = require('./lib');"),
            ("lib/index.js", "module.exports = 2;"),
        ]);
        assert_eq!(g.imports(0).iter().copied().collect::<Vec<_>>(), vec![1]);
    }
}
