//! Warm-vs-cold benchmark for the daemon's hint store (PR9 gate).
//!
//! Drives an in-process [`aji_serve::Engine`] through the same request
//! frames the socket protocol carries, over the hand-written pattern
//! corpus, in three passes:
//!
//! 1. **cold** — empty store; every project runs the full pipeline;
//! 2. **warm** — same requests again; every response must come from the
//!    response layer, byte-identical to the cold pass;
//! 3. **hints** — the same projects with `"dynamic": true`: a different
//!    full fingerprint (response miss) but the same approx fingerprint,
//!    so the most expensive phase is skipped via the hint layer.
//!
//! ```text
//! serve-bench [--json] [--require-speedup X] [--iters N]
//! ```
//!
//! `--require-speedup X` exits nonzero unless warm is at least `X`×
//! faster than cold — the acceptance gate (`scripts/check-hermetic.sh`
//! requires 3×). JSON output feeds `BENCH_pr9_serve.json`; see
//! BENCHMARKS.md.

use std::time::Instant;

use aji_support::{Json, ToJson};

fn analyze_frame(project: &aji_ast::Project, dynamic: bool) -> Json {
    let mut pairs = vec![
        ("op".to_string(), Json::Str("analyze".into())),
        ("project".to_string(), project.to_json()),
    ];
    if dynamic {
        pairs.push(("dynamic".to_string(), Json::Bool(true)));
    }
    Json::Obj(pairs)
}

/// Runs one pass over the corpus, returning (seconds, response bodies).
fn pass(
    engine: &mut aji_serve::Engine,
    projects: &[aji_ast::Project],
    dynamic: bool,
) -> (f64, Vec<String>) {
    let start = Instant::now();
    let mut responses = Vec::with_capacity(projects.len());
    for p in projects {
        let (resp, _) = engine.handle(&analyze_frame(p, dynamic));
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(true)),
            "analyze failed for {}: {resp}",
            p.name
        );
        responses.push(resp.to_string());
    }
    (start.elapsed().as_secs_f64(), responses)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut require_speedup: Option<f64> = None;
    let mut iters = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--require-speedup" => {
                let v = it.next().expect("--require-speedup needs a value");
                require_speedup = Some(v.parse().expect("--require-speedup needs a number"));
            }
            "--iters" => {
                let v = it.next().expect("--iters needs a value");
                iters = v.parse().expect("--iters needs an integer");
            }
            other => {
                eprintln!("serve-bench: unknown flag '{other}'");
                eprintln!("usage: serve-bench [--json] [--require-speedup X] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    let projects = aji_corpus::pattern_projects();
    let mut engine = aji_serve::Engine::new(aji_serve::EngineOptions::default());

    let (cold_seconds, cold) = pass(&mut engine, &projects, false);

    // Warm passes (best of `iters`, the conventional bench discipline).
    let mut warm_seconds = f64::INFINITY;
    let mut warm = Vec::new();
    for _ in 0..iters.max(1) {
        let (secs, responses) = pass(&mut engine, &projects, false);
        if secs < warm_seconds {
            warm_seconds = secs;
        }
        warm = responses;
    }
    let identical = cold == warm;
    assert!(identical, "warm responses must be byte-identical to cold");

    let (hint_seconds, _) = pass(&mut engine, &projects, true);

    let stats = engine.store().stats();
    assert_eq!(
        stats.hint_hits as usize,
        projects.len(),
        "every dynamic analyze must reuse cached hints"
    );
    let speedup = cold_seconds / warm_seconds.max(1e-9);

    let report = Json::obj(vec![
        ("bench", Json::Str("pr9_serve".into())),
        ("projects", projects.len().to_json()),
        ("cold_seconds", Json::Num(cold_seconds)),
        ("warm_seconds", Json::Num(warm_seconds)),
        ("warm_speedup", Json::Num(speedup)),
        ("hint_reuse_seconds", Json::Num(hint_seconds)),
        ("responses_identical", Json::Bool(identical)),
        ("store", stats.to_json()),
    ]);
    if json {
        println!("{report}");
    } else {
        println!(
            "serve-bench: {} projects | cold {:.3}s | warm {:.4}s ({:.0}x) | hint-reuse pass {:.3}s",
            projects.len(),
            cold_seconds,
            warm_seconds,
            speedup,
            hint_seconds
        );
        println!(
            "store: parse {}h/{}m | hints {}h/{}m | responses {}h/{}m",
            stats.parse_hits,
            stats.parse_misses,
            stats.hint_hits,
            stats.hint_misses,
            stats.response_hits,
            stats.response_misses
        );
    }

    if let Some(min) = require_speedup {
        if speedup < min {
            eprintln!("serve-bench: FAIL warm speedup {speedup:.1}x < required {min}x");
            std::process::exit(1);
        }
        eprintln!("serve-bench: OK warm speedup {speedup:.1}x >= {min}x");
    }
}
