//! The `aji-serve` binary: daemon mode and a one-shot client.
//!
//! ```text
//! # daemon
//! aji-serve --socket /tmp/aji.sock [--store hints.json] [--seed N]
//!
//! # client (one request per invocation; response frame on stdout)
//! aji-serve --client /tmp/aji.sock --op analyze --name callback-hub
//! aji-serve --client /tmp/aji.sock --op analyze --project-file p.json --dynamic
//! aji-serve --client /tmp/aji.sock --op invalidate --name p --path lib/a.js
//! aji-serve --client /tmp/aji.sock --op stats
//! aji-serve --client /tmp/aji.sock --op shutdown
//! aji-serve --client /tmp/aji.sock --request '{"op":"stats"}'
//! ```
//!
//! The client exits 0 when the response frame has `"ok": true`, 1 on a
//! request-level error, 2 on usage or transport problems. See DAEMON.md
//! for the protocol reference.

use std::process::ExitCode;

use aji_support::{wire, Json};

fn usage() -> &'static str {
    "usage:\n  aji-serve --socket PATH [--store FILE] [--seed N]\n  aji-serve --client SOCKET (--request JSON | --op OP [--name NAME | --project-file FILE] [--path FILE] [--dynamic] [--obs])"
}

struct Cli {
    socket: Option<String>,
    client: Option<String>,
    store: Option<String>,
    seed: u64,
    request: Option<String>,
    op: Option<String>,
    name: Option<String>,
    project_file: Option<String>,
    path: Option<String>,
    dynamic: bool,
    obs: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        socket: None,
        client: None,
        store: None,
        seed: 0,
        request: None,
        op: None,
        name: None,
        project_file: None,
        path: None,
        dynamic: false,
        obs: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--socket" => cli.socket = Some(value("--socket")?),
            "--client" => cli.client = Some(value("--client")?),
            "--store" => cli.store = Some(value("--store")?),
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_string())?;
            }
            "--request" => cli.request = Some(value("--request")?),
            "--op" => cli.op = Some(value("--op")?),
            "--name" => cli.name = Some(value("--name")?),
            "--project-file" => cli.project_file = Some(value("--project-file")?),
            "--path" => cli.path = Some(value("--path")?),
            "--dynamic" => cli.dynamic = true,
            "--obs" => cli.obs = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(cli)
}

/// Builds the request frame from client flags.
fn build_request(cli: &Cli) -> Result<Json, String> {
    if let Some(raw) = &cli.request {
        return Json::parse(raw).map_err(|e| format!("--request is not valid JSON: {e}"));
    }
    let Some(op) = &cli.op else {
        return Err(format!("client mode needs --op or --request\n{}", usage()));
    };
    let mut pairs = vec![("op".to_string(), Json::Str(op.clone()))];
    if let Some(name) = &cli.name {
        pairs.push(("name".to_string(), Json::Str(name.clone())));
    }
    if let Some(file) = &cli.project_file {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {file}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{file} is not valid JSON: {e}"))?;
        pairs.push(("project".to_string(), doc));
    }
    if let Some(path) = &cli.path {
        pairs.push(("path".to_string(), Json::Str(path.clone())));
    }
    if cli.dynamic {
        pairs.push(("dynamic".to_string(), Json::Bool(true)));
    }
    if cli.obs {
        pairs.push(("obs".to_string(), Json::Bool(true)));
    }
    Ok(Json::Obj(pairs))
}

fn run_client(socket: &str, cli: &Cli) -> ExitCode {
    let req = match build_request(cli) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aji-serve: {e}");
            return ExitCode::from(2);
        }
    };
    match wire::request(socket, &req) {
        Ok(resp) => {
            println!("{resp}");
            if resp.get("ok") == Some(&Json::Bool(true)) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("aji-serve: request failed: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(unix)]
fn run_daemon(socket: &str, cli: &Cli) -> ExitCode {
    use std::os::unix::net::UnixListener;
    let opts = aji_serve::EngineOptions {
        seed: cli.seed,
        store_path: cli.store.as_ref().map(std::path::PathBuf::from),
        ..aji_serve::EngineOptions::default()
    };
    let mut engine = aji_serve::Engine::new(opts);
    // A stale socket file from a crashed daemon would make bind fail.
    let _ = std::fs::remove_file(socket);
    let listener = match UnixListener::bind(socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("aji-serve: cannot bind {socket}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("aji-serve: listening on {socket}");
    let outcome = aji_serve::serve(&listener, &mut engine);
    let _ = std::fs::remove_file(socket);
    match outcome {
        Ok(()) => {
            eprintln!("aji-serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aji-serve: accept loop failed: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(not(unix))]
fn run_daemon(_socket: &str, _cli: &Cli) -> ExitCode {
    eprintln!("aji-serve: daemon mode needs Unix sockets");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match (&cli.client, &cli.socket) {
        (Some(socket), None) => run_client(&socket.clone(), &cli),
        (None, Some(socket)) => run_daemon(&socket.clone(), &cli),
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
