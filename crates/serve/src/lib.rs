//! Analysis-as-a-service: the `aji serve` daemon.
//!
//! Every experiment binary in this workspace is batch-shaped: parse the
//! corpus, analyze, print, exit — and the most expensive phase
//! (approximate interpretation, §5) is recomputed from scratch on every
//! run even when nothing changed. This crate turns the pipeline into a
//! long-lived service with an incremental core:
//!
//! * [`Engine`] — dispatches the request catalogue (`analyze`, `oracle`,
//!   `invalidate`, `stats`, `save`, `shutdown`) over a [`HintStore`];
//! * [`HintStore`] — three content-hash-keyed cache layers (per-file
//!   parses, solved hint sets, whole responses) with deterministic JSON
//!   snapshots that survive daemon restarts;
//! * [`ModuleGraph`] — the reverse-import index that scopes `invalidate`
//!   to the dependency cone of an edited module;
//! * [`serve`] — the Unix-socket accept loop speaking line-delimited
//!   JSON ([`aji_support::wire`]).
//!
//! The contract that makes caching safe to trust: **a warm response is
//! byte-identical to a cold one.** Cache keys embed a digest of the full
//! project content and a fingerprint of every result-affecting option,
//! so stale hits are structurally impossible, and the cached value is
//! the same deterministic `metrics_json` payload a fresh pipeline
//! produces. `tests/daemon_determinism.rs` pins both properties, and
//! the protocol reference in `DAEMON.md` documents the exact request
//! and response shapes with examples.
//!
//! The daemon is single-threaded by design — modules are `Rc` trees and
//! the solver is already fast once hints are cached — and concurrent
//! clients each open their own connection per request, so responses
//! depend only on request content, never on connection interleaving.
//! That is what keeps `--daemon` runs of the experiment binaries
//! byte-identical at any client thread count.
//!
//! # Example
//!
//! ```
//! use aji_serve::{Engine, EngineOptions};
//! use aji_support::Json;
//!
//! let mut engine = Engine::new(EngineOptions::default());
//! let (resp, _shutdown) = engine.handle(&Json::obj(vec![
//!     ("op", Json::Str("stats".into())),
//! ]));
//! assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod graph;
pub mod store;

pub use engine::{Engine, EngineOptions};
pub use graph::ModuleGraph;
pub use store::{HintStore, Invalidated, StoreStats};

use std::io::{self, BufReader};

use aji_support::{wire, Json};

/// Runs the accept loop until a `shutdown` request arrives.
///
/// Connections are served one at a time (the engine is single-threaded);
/// each connection may carry any number of request frames. A transport
/// error on one connection drops that connection, not the daemon; a
/// malformed (non-JSON) frame is answered with an error frame and the
/// connection closed, since framing can no longer be trusted.
///
/// # Errors
///
/// Only listener-level accept failures abort the loop.
#[cfg(unix)]
pub fn serve(
    listener: &std::os::unix::net::UnixListener,
    engine: &mut Engine,
) -> io::Result<()> {
    for conn in listener.incoming() {
        let stream = conn?;
        match serve_connection(stream, engine) {
            Ok(true) => return Ok(()),
            Ok(false) => {}
            Err(e) => eprintln!("aji-serve: connection error: {e}"),
        }
    }
    Ok(())
}

/// Serves one connection to completion. Returns `Ok(true)` if a
/// `shutdown` request was handled.
#[cfg(unix)]
fn serve_connection(
    stream: std::os::unix::net::UnixStream,
    engine: &mut Engine,
) -> Result<bool, wire::WireError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        match wire::read_frame(&mut reader) {
            Ok(None) => return Ok(false),
            Ok(Some(req)) => {
                let (resp, shutdown) = engine.handle(&req);
                // A vanished client must not take the daemon down.
                if wire::write_frame(&mut writer, &resp).is_err() {
                    return Ok(shutdown);
                }
                if shutdown {
                    return Ok(true);
                }
            }
            Err(wire::WireError::Protocol(e)) => {
                let frame = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("op", Json::Str("?".into())),
                    ("error", Json::Str(format!("malformed frame: {e}"))),
                ]);
                let _ = wire::write_frame(&mut writer, &frame);
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::os::unix::net::UnixListener;

    fn temp_socket(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("aji-serve-lib-{tag}-{}.sock", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    /// Spawn an in-process daemon; the engine lives inside the thread
    /// (it is not `Send` — modules are `Rc` trees).
    fn spawn_daemon(path: &str) -> std::thread::JoinHandle<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).unwrap();
        std::thread::spawn(move || {
            let mut engine = Engine::new(EngineOptions::default());
            serve(&listener, &mut engine).unwrap();
        })
    }

    #[test]
    fn stats_roundtrip_and_clean_shutdown() {
        let path = temp_socket("stats");
        let daemon = spawn_daemon(&path);
        let resp = wire::request(
            &path,
            &Json::obj(vec![("op", Json::Str("stats".into()))]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let resp = wire::request(
            &path,
            &Json::obj(vec![("op", Json::Str("shutdown".into()))]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        daemon.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_frames_get_an_error_and_do_not_kill_the_daemon() {
        use std::io::Write;
        let path = temp_socket("garbage");
        let daemon = spawn_daemon(&path);
        // Raw garbage on one connection…
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        stream.write_all(b"{not json}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        drop(stream);
        // …leaves the daemon serving the next one.
        let resp = wire::request(
            &path,
            &Json::obj(vec![("op", Json::Str("shutdown".into()))]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        daemon.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
