//! The persistent, content-hash-keyed [`HintStore`].
//!
//! Three cache layers, cheapest to most valuable:
//!
//! 1. **Parse layer** — per-file [`Module`] parses, keyed by `(source
//!    digest, node-id offset)`. In-memory only: modules are `Rc` trees
//!    and re-parsing is cheap next to re-analysis.
//! 2. **Hint layer** — solved approximate-interpretation results
//!    ([`Hints`] + [`ApproxStats`]), keyed by `(project digest,
//!    approx-options fingerprint)`. Persisted: §5 puts approximate
//!    interpretation at the majority of pipeline wall-clock, so these
//!    are the expensive artifacts worth keeping across daemon restarts.
//! 3. **Response layer** — complete serialized analysis/oracle response
//!    bodies, keyed by `(op, project digest, full options fingerprint)`.
//!    Persisted: a warm `analyze` is a string lookup.
//!
//! **Why stale answers are impossible.** Every key contains a digest of
//! the complete request-relevant input: the full project content (name,
//! entry points, every file's path and text, vulnerability annotations)
//! and a fingerprint of every result-affecting option. An edit changes
//! the digest, so edited projects *cannot* hit old entries — the caches
//! are self-validating. [`HintStore::invalidate`] is therefore an
//! *eviction* API (reclaim memory, force recomputation), not a
//! correctness requirement; `tests/daemon_determinism.rs` pins this with
//! randomized edit sequences.
//!
//! **Node-id discipline.** A cold [`aji_parser::parse_project`] numbers
//! AST nodes project-wide in file order. The parse layer records the id
//! interval `[id_start, id_end)` each cached module was parsed under and
//! reuses it only when the current generator is exactly at `id_start` —
//! so an incrementally-assembled [`ParsedProject`] is *identical* (ids
//! and all) to a cold parse, and everything downstream (hints keyed by
//! [`aji_ast::Loc`], node-id-keyed call graphs) is byte-stable. An edit
//! that changes a file's node count simply stops reuse at that file:
//! later files re-parse because their `id_start` no longer matches.
//!
//! Snapshots are deterministic JSON (BTree iteration order, hex-encoded
//! digests) written atomically (`tmp` + rename), so two daemons that saw
//! the same requests write byte-identical store files.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use std::rc::Rc;

use aji_approx::{ApproxStats, Hints};
use aji_ast::{FileId, Module, NodeIdGen, Project};
use aji_parser::{parse_module, ParseError, ParsedProject};
use aji_support::hash::{fnv64, from_hex, hex};
use aji_support::{FromJson, Json, ToJson};

use crate::graph::ModuleGraph;

/// Hit/miss/eviction counters, one pair per cache layer. Exposed by the
/// daemon's `stats` op (deliberately *not* inside `analyze` responses,
/// which must be byte-identical warm vs. cold).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-file parses served from the parse layer.
    pub parse_hits: u64,
    /// Per-file parses that ran the parser.
    pub parse_misses: u64,
    /// Approximate-interpretation runs skipped via the hint layer.
    pub hint_hits: u64,
    /// Hint-layer lookups that missed.
    pub hint_misses: u64,
    /// Whole responses served from the response layer.
    pub response_hits: u64,
    /// Response-layer lookups that missed.
    pub response_misses: u64,
    /// `invalidate` requests that evicted something.
    pub invalidations: u64,
}

impl StoreStats {
    /// Counters as a JSON object (key order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("parse_hits", self.parse_hits.to_json()),
            ("parse_misses", self.parse_misses.to_json()),
            ("hint_hits", self.hint_hits.to_json()),
            ("hint_misses", self.hint_misses.to_json()),
            ("response_hits", self.response_hits.to_json()),
            ("response_misses", self.response_misses.to_json()),
            ("invalidations", self.invalidations.to_json()),
        ])
    }
}

/// One cached per-file parse: the module and the node-id interval it was
/// parsed under.
#[derive(Clone)]
struct FileEntry {
    /// Seeded digest of the file's source text.
    digest: u64,
    /// Node-id counter value when this file's parse began.
    id_start: usize,
    /// Counter value after — the resume point for the next file.
    id_end: usize,
    /// The parse itself.
    module: Rc<Module>,
}

/// One cached approximate-interpretation result.
#[derive(Clone)]
struct HintEntry {
    hints: Hints,
    stats: ApproxStats,
}

/// Everything cached for one project name.
#[derive(Default)]
struct ProjectCache {
    /// Parse layer; index `i` is `FileId(i)`. `None` = evicted.
    files: Vec<Option<FileEntry>>,
    /// Import graph of the most recent parse (for cone invalidation).
    graph: Option<ModuleGraph>,
    /// Hint layer: `(project digest, approx fingerprint)` → result.
    hints: BTreeMap<(u64, u64), HintEntry>,
    /// Response layer: `(op, project digest, options fingerprint)` →
    /// serialized response body.
    responses: BTreeMap<(String, u64, u64), String>,
}

/// What one [`HintStore::invalidate`] call evicted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Invalidated {
    /// Cached module parses dropped.
    pub modules: usize,
    /// Hint-layer entries dropped.
    pub hints: usize,
    /// Response-layer entries dropped.
    pub responses: usize,
    /// Paths of the dependency cone that was evicted (sorted by file
    /// order; the whole project when no `path` was given).
    pub cone: Vec<String>,
}

impl Invalidated {
    /// The eviction summary the `invalidate` response carries.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("modules", self.modules.to_json()),
            ("hints", self.hints.to_json()),
            ("responses", self.responses.to_json()),
            (
                "cone",
                Json::Arr(self.cone.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
        ])
    }
}

/// The daemon's cache: parse, hint and response layers for any number of
/// projects, all keyed under one digest seed. See the module docs for
/// the layer-by-layer design.
pub struct HintStore {
    seed: u64,
    projects: BTreeMap<String, ProjectCache>,
    stats: StoreStats,
}

/// Snapshot format version; bump on any incompatible change.
const SNAPSHOT_VERSION: f64 = 1.0;

impl HintStore {
    /// An empty store whose digests are seeded with `seed`.
    pub fn new(seed: u64) -> HintStore {
        HintStore {
            seed,
            projects: BTreeMap::new(),
            stats: StoreStats::default(),
        }
    }

    /// The digest seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Digest of the complete request-relevant project content: its
    /// canonical JSON form covers the name, entry points, every file's
    /// path and source, and vulnerability annotations.
    pub fn project_digest(&self, project: &Project) -> u64 {
        fnv64(self.seed, project.to_json().to_string().as_bytes())
    }

    /// Parses a project through the parse layer: unchanged files at
    /// unchanged node-id offsets are spliced from cache, the rest run
    /// the parser. The result is identical to a cold
    /// [`aji_parser::parse_project`] of the same sources.
    ///
    /// # Errors
    ///
    /// The first parse error, tagged with the offending file's path. The
    /// previously cached entries are left as they were (they remain
    /// digest-validated).
    pub fn parse(&mut self, project: &Project) -> Result<ParsedProject, ParseError> {
        let seed = self.seed;
        let cache = self.projects.entry(project.name.clone()).or_default();
        let source_map = project.source_map();
        let mut ids = NodeIdGen::new();
        let mut modules = Vec::with_capacity(project.files.len());
        let mut entries: Vec<Option<FileEntry>> = Vec::with_capacity(project.files.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (i, file) in project.files.iter().enumerate() {
            let digest = fnv64(seed, file.src.as_bytes());
            let id_start = ids.count();
            let cached = cache
                .files
                .get(i)
                .and_then(Option::as_ref)
                .filter(|e| e.digest == digest && e.id_start == id_start)
                .cloned();
            match cached {
                Some(e) => {
                    ids = NodeIdGen::starting_at(e.id_end);
                    modules.push(e.module.clone());
                    entries.push(Some(e));
                    hits += 1;
                }
                None => {
                    let module = parse_module(&file.src, FileId(i as u32), &mut ids)
                        .map_err(|e| e.with_path(file.path.clone()))?;
                    let module = Rc::new(module);
                    entries.push(Some(FileEntry {
                        digest,
                        id_start,
                        id_end: ids.count(),
                        module: Rc::clone(&module),
                    }));
                    modules.push(module);
                    misses += 1;
                }
            }
        }
        cache.files = entries;
        cache.graph = Some(ModuleGraph::build(project, &modules));
        self.stats.parse_hits += hits;
        self.stats.parse_misses += misses;
        aji_obs::counter_add("serve.store.parse_hits", hits);
        aji_obs::counter_add("serve.store.parse_misses", misses);
        Ok(ParsedProject {
            source_map,
            modules,
            ids,
        })
    }

    /// Hint-layer lookup (counts a hit or a miss).
    pub fn hints(&mut self, name: &str, digest: u64, approx_fp: u64) -> Option<(Hints, ApproxStats)> {
        let found = self
            .projects
            .get(name)
            .and_then(|c| c.hints.get(&(digest, approx_fp)))
            .cloned();
        if found.is_some() {
            self.stats.hint_hits += 1;
            aji_obs::counter_add("serve.store.hint_hits", 1);
        } else {
            self.stats.hint_misses += 1;
            aji_obs::counter_add("serve.store.hint_misses", 1);
        }
        found.map(|e| (e.hints, e.stats))
    }

    /// Stores an approximate-interpretation result.
    pub fn put_hints(
        &mut self,
        name: &str,
        digest: u64,
        approx_fp: u64,
        hints: Hints,
        stats: ApproxStats,
    ) {
        self.projects
            .entry(name.to_string())
            .or_default()
            .hints
            .insert((digest, approx_fp), HintEntry { hints, stats });
    }

    /// Response-layer lookup (counts a hit or a miss).
    pub fn response(&mut self, op: &str, name: &str, digest: u64, fp: u64) -> Option<String> {
        let found = self
            .projects
            .get(name)
            .and_then(|c| c.responses.get(&(op.to_string(), digest, fp)))
            .cloned();
        if found.is_some() {
            self.stats.response_hits += 1;
            aji_obs::counter_add("serve.store.response_hits", 1);
        } else {
            self.stats.response_misses += 1;
            aji_obs::counter_add("serve.store.response_misses", 1);
        }
        found
    }

    /// Stores a serialized response body.
    pub fn put_response(&mut self, op: &str, name: &str, digest: u64, fp: u64, body: String) {
        self.projects
            .entry(name.to_string())
            .or_default()
            .responses
            .insert((op.to_string(), digest, fp), body);
    }

    /// Evicts cached state for `name`.
    ///
    /// With `path: None` the project's entire cache is dropped. With a
    /// path, the parse layer drops exactly the dependency cone of that
    /// module (see [`ModuleGraph::cone`]) while the derived layers
    /// (hints, responses) drop entirely — they aggregate whole-project
    /// results, so any member of the cone taints all of them.
    ///
    /// Evicting an unknown project is a no-op (nothing cached means
    /// nothing stale); naming a path that is not a module of a *known*
    /// project is an error, since that is almost certainly a typo.
    ///
    /// # Errors
    ///
    /// The unknown path, when one is given for a cached project.
    pub fn invalidate(&mut self, name: &str, path: Option<&str>) -> Result<Invalidated, String> {
        if !self.projects.contains_key(name) {
            return Ok(Invalidated::default());
        }
        let out = match path {
            None => {
                let cache = self.projects.remove(name).expect("present above");
                Invalidated {
                    modules: cache.files.iter().flatten().count(),
                    hints: cache.hints.len(),
                    responses: cache.responses.len(),
                    cone: cache
                        .graph
                        .as_ref()
                        .map(|g| g.paths().to_vec())
                        .unwrap_or_default(),
                }
            }
            Some(p) => {
                let cache = self.projects.get_mut(name).expect("present above");
                let (cone, cone_paths) = {
                    let Some(graph) = cache.graph.as_ref() else {
                        return Err(format!(
                            "project '{name}' has no cached parse to invalidate by path"
                        ));
                    };
                    let Some(cone) = graph.cone(p) else {
                        return Err(format!("'{p}' is not a module of project '{name}'"));
                    };
                    let cone_paths: Vec<String> = cone
                        .iter()
                        .filter_map(|&i| graph.paths().get(i).cloned())
                        .collect();
                    (cone, cone_paths)
                };
                let mut modules = 0;
                for &i in &cone {
                    if let Some(slot) = cache.files.get_mut(i) {
                        if slot.take().is_some() {
                            modules += 1;
                        }
                    }
                }
                let hints = cache.hints.len();
                cache.hints.clear();
                let responses = cache.responses.len();
                cache.responses.clear();
                Invalidated {
                    modules,
                    hints,
                    responses,
                    cone: cone_paths,
                }
            }
        };
        self.stats.invalidations += 1;
        aji_obs::counter_add("serve.store.invalidations", 1);
        Ok(out)
    }

    /// Entry counts per layer, for the `stats` response:
    /// `(projects, cached modules, hint entries, response entries)`.
    pub fn sizes(&self) -> (usize, usize, usize, usize) {
        let mut modules = 0;
        let mut hints = 0;
        let mut responses = 0;
        for c in self.projects.values() {
            modules += c.files.iter().flatten().count();
            hints += c.hints.len();
            responses += c.responses.len();
        }
        (self.projects.len(), modules, hints, responses)
    }

    /// The persistent layers (hints, responses) as a deterministic JSON
    /// snapshot. The parse layer is not persisted: modules are cheap to
    /// re-derive and not `Send`/serializable by design.
    pub fn snapshot(&self) -> Json {
        let mut projects = Vec::new();
        for (name, cache) in &self.projects {
            if cache.hints.is_empty() && cache.responses.is_empty() {
                continue;
            }
            let hints: Vec<Json> = cache
                .hints
                .iter()
                .map(|((digest, fp), e)| {
                    Json::obj(vec![
                        ("digest", Json::Str(hex(*digest))),
                        ("fingerprint", Json::Str(hex(*fp))),
                        (
                            "stats",
                            Json::obj(vec![
                                ("functions_total", e.stats.functions_total.to_json()),
                                ("functions_visited", e.stats.functions_visited.to_json()),
                                ("items_processed", e.stats.items_processed.to_json()),
                                ("items_aborted", e.stats.items_aborted.to_json()),
                                ("total_steps", e.stats.total_steps.to_json()),
                            ]),
                        ),
                        ("hints", e.hints.to_json()),
                    ])
                })
                .collect();
            let responses: Vec<Json> = cache
                .responses
                .iter()
                .map(|((op, digest, fp), body)| {
                    Json::obj(vec![
                        ("op", Json::Str(op.clone())),
                        ("digest", Json::Str(hex(*digest))),
                        ("fingerprint", Json::Str(hex(*fp))),
                        ("body", Json::Str(body.clone())),
                    ])
                })
                .collect();
            projects.push(Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("hints", Json::Arr(hints)),
                ("responses", Json::Arr(responses)),
            ]));
        }
        Json::obj(vec![
            ("version", Json::Num(SNAPSHOT_VERSION)),
            ("seed", Json::Str(hex(self.seed))),
            ("projects", Json::Arr(projects)),
        ])
    }

    /// Loads a snapshot produced by [`HintStore::snapshot`] into this
    /// store, returning the number of entries restored.
    ///
    /// # Errors
    ///
    /// A description of the first shape problem — wrong version, seed
    /// mismatch (snapshots are not portable between key spaces), or a
    /// malformed entry. Entries loaded before the error remain.
    pub fn load_snapshot(&mut self, doc: &Json) -> Result<usize, String> {
        let version = doc
            .get("version")
            .and_then(Json::as_f64)
            .ok_or("snapshot has no version")?;
        if version != SNAPSHOT_VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_str)
            .and_then(from_hex)
            .ok_or("snapshot has no seed")?;
        if seed != self.seed {
            return Err(format!(
                "snapshot seed {} does not match store seed {}",
                hex(seed),
                hex(self.seed)
            ));
        }
        let projects = doc
            .get("projects")
            .and_then(Json::as_arr)
            .ok_or("snapshot has no projects")?;
        let mut loaded = 0;
        for p in projects {
            let name = p
                .get("name")
                .and_then(Json::as_str)
                .ok_or("snapshot project has no name")?;
            let key = |e: &Json| -> Result<(u64, u64), String> {
                let digest = e
                    .get("digest")
                    .and_then(Json::as_str)
                    .and_then(from_hex)
                    .ok_or("entry has no digest")?;
                let fp = e
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(from_hex)
                    .ok_or("entry has no fingerprint")?;
                Ok((digest, fp))
            };
            for e in p.get("hints").and_then(Json::as_arr).unwrap_or(&[]) {
                let (digest, fp) = key(e)?;
                let hints = Hints::from_json(e.get("hints").ok_or("hint entry has no hints")?)
                    .map_err(|err| format!("bad hint set: {err}"))?;
                let s = e.get("stats").ok_or("hint entry has no stats")?;
                let field = |k: &str| -> Result<usize, String> {
                    s.get(k)
                        .and_then(Json::as_f64)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("hint stats missing '{k}'"))
                };
                let stats = ApproxStats {
                    functions_total: field("functions_total")?,
                    functions_visited: field("functions_visited")?,
                    items_processed: field("items_processed")?,
                    items_aborted: field("items_aborted")?,
                    total_steps: field("total_steps")? as u64,
                };
                self.put_hints(name, digest, fp, hints, stats);
                loaded += 1;
            }
            for e in p.get("responses").and_then(Json::as_arr).unwrap_or(&[]) {
                let (digest, fp) = key(e)?;
                let op = e
                    .get("op")
                    .and_then(Json::as_str)
                    .ok_or("response entry has no op")?;
                let body = e
                    .get("body")
                    .and_then(Json::as_str)
                    .ok_or("response entry has no body")?;
                self.put_response(op, name, digest, fp, body.to_string());
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Writes the snapshot atomically (`<path>.tmp`, then rename).
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            let mut text = self.snapshot().to_string();
            text.push('\n');
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Creates a store seeded with `seed` and, if `path` exists, loads
    /// its snapshot. A missing file yields an empty store; an unreadable
    /// or mismatched snapshot is reported on stderr and ignored (the
    /// daemon starts cold rather than refusing to start).
    pub fn open(path: &Path, seed: u64) -> HintStore {
        let mut store = HintStore::new(seed);
        match std::fs::read_to_string(path) {
            Err(_) => store,
            Ok(text) => {
                let outcome = Json::parse(&text)
                    .map_err(|e| format!("unparseable snapshot: {e}"))
                    .and_then(|doc| store.load_snapshot(&doc));
                match outcome {
                    Ok(n) => {
                        eprintln!("aji-serve: loaded {n} entries from {}", path.display());
                        store
                    }
                    Err(e) => {
                        eprintln!(
                            "aji-serve: ignoring snapshot {}: {e}",
                            path.display()
                        );
                        HintStore::new(seed)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::ProjectFile;

    fn project(name: &str, files: &[(&str, &str)]) -> Project {
        Project {
            name: name.into(),
            files: files
                .iter()
                .map(|(p, s)| ProjectFile {
                    path: (*p).to_string(),
                    src: (*s).to_string(),
                })
                .collect(),
            main: files[0].0.to_string(),
            test_driver: None,
            vulns: Vec::new(),
        }
    }

    /// Render a parse in a comparable form: per-module debug output plus
    /// final id count. Rc identity differs; structure must not.
    fn fingerprint_parse(p: &ParsedProject) -> String {
        format!("{:?} ids={}", p.modules, p.ids.count())
    }

    #[test]
    fn incremental_parse_matches_cold_parse() {
        let proj = project(
            "p",
            &[
                ("main.js", "var a = require('./a'); a.f();"),
                ("a.js", "module.exports = { f: function() { return 1; } };"),
            ],
        );
        let cold = aji_parser::parse_project(&proj).unwrap();
        let mut store = HintStore::new(7);
        let first = store.parse(&proj).unwrap();
        assert_eq!(fingerprint_parse(&first), fingerprint_parse(&cold));
        assert_eq!(store.stats().parse_misses, 2);

        // Second parse: all hits, still identical to cold.
        let second = store.parse(&proj).unwrap();
        assert_eq!(fingerprint_parse(&second), fingerprint_parse(&cold));
        assert_eq!(store.stats().parse_hits, 2);
    }

    #[test]
    fn edits_reparse_only_the_suffix_with_changed_offsets() {
        let mut proj = project(
            "p",
            &[
                ("a.js", "var x = 1;"),
                ("b.js", "var y = 2;"),
                ("c.js", "var z = 3;"),
            ],
        );
        let mut store = HintStore::new(0);
        store.parse(&proj).unwrap();

        // Same-shape edit to b.js: a.js hits; b.js re-parses; c.js's
        // offset is unchanged (same node count in b.js) so it hits too.
        proj.files[1].src = "var y = 9;".into();
        let cold = aji_parser::parse_project(&proj).unwrap();
        let incr = store.parse(&proj).unwrap();
        assert_eq!(fingerprint_parse(&incr), fingerprint_parse(&cold));
        assert_eq!(store.stats().parse_hits, 2, "a.js and c.js reused");
        assert_eq!(store.stats().parse_misses, 4, "3 cold + b.js");

        // Node-count-changing edit to a.js shifts every later offset:
        // nothing after a.js may be reused.
        proj.files[0].src = "var x = 1; var w = x + 1;".into();
        let cold = aji_parser::parse_project(&proj).unwrap();
        let incr = store.parse(&proj).unwrap();
        assert_eq!(fingerprint_parse(&incr), fingerprint_parse(&cold));
        assert_eq!(store.stats().parse_hits, 2, "no further hits");
    }

    #[test]
    fn digest_covers_metadata_not_just_sources() {
        let store = HintStore::new(0);
        let a = project("p", &[("m.js", "var x = 1;")]);
        let mut b = a.clone();
        b.test_driver = Some("m.js".into());
        assert_ne!(store.project_digest(&a), store.project_digest(&b));
        let mut c = a.clone();
        c.vulns.push(aji_ast::VulnSpec {
            id: "CVE-1".into(),
            path: "m.js".into(),
            function: "f".into(),
        });
        assert_ne!(store.project_digest(&a), store.project_digest(&c));
    }

    #[test]
    fn seeds_separate_stores() {
        let p = project("p", &[("m.js", "var x = 1;")]);
        assert_ne!(
            HintStore::new(1).project_digest(&p),
            HintStore::new(2).project_digest(&p)
        );
    }

    #[test]
    fn response_layer_roundtrips_and_counts() {
        let mut store = HintStore::new(0);
        assert_eq!(store.response("analyze", "p", 1, 2), None);
        store.put_response("analyze", "p", 1, 2, "{\"x\":1}".into());
        assert_eq!(store.response("analyze", "p", 1, 2).as_deref(), Some("{\"x\":1}"));
        // Different op, digest or fingerprint: distinct entries.
        assert_eq!(store.response("oracle", "p", 1, 2), None);
        assert_eq!(store.response("analyze", "p", 9, 2), None);
        assert_eq!(store.response("analyze", "p", 1, 9), None);
        let s = store.stats();
        assert_eq!((s.response_hits, s.response_misses), (1, 4));
    }

    #[test]
    fn invalidate_whole_project_drops_everything() {
        let proj = project("p", &[("m.js", "var x = 1;")]);
        let mut store = HintStore::new(0);
        store.parse(&proj).unwrap();
        store.put_response("analyze", "p", 1, 2, "r".into());
        store.put_hints("p", 1, 2, Hints::new(), ApproxStats::default());
        let out = store.invalidate("p", None).unwrap();
        assert_eq!((out.modules, out.hints, out.responses), (1, 1, 1));
        assert_eq!(out.cone, vec!["m.js".to_string()]);
        assert_eq!(store.sizes(), (0, 0, 0, 0));
        // Unknown project: clean no-op.
        let out = store.invalidate("p", None).unwrap();
        assert_eq!(out, Invalidated::default());
    }

    #[test]
    fn invalidate_path_drops_exactly_the_cone() {
        let proj = project(
            "p",
            &[
                ("main.js", "var m = require('./mid');"),
                ("mid.js", "var l = require('./leaf'); module.exports = l;"),
                ("leaf.js", "module.exports = 1;"),
            ],
        );
        let mut store = HintStore::new(0);
        store.parse(&proj).unwrap();
        store.put_response("analyze", "p", 1, 2, "r".into());
        let out = store.invalidate("p", Some("leaf.js")).unwrap();
        assert_eq!(out.modules, 3, "whole chain depends on leaf");
        assert_eq!(out.responses, 1);
        let out = store.invalidate("p", Some("nope.js"));
        assert!(out.is_err(), "unknown module is a typo, not a no-op");

        // Re-parse restores the cache; invalidating main evicts only it.
        store.parse(&proj).unwrap();
        let out = store.invalidate("p", Some("main.js")).unwrap();
        assert_eq!(out.modules, 1);
        assert_eq!(out.cone, vec!["main.js".to_string()]);
        let (_, modules, _, _) = store.sizes();
        assert_eq!(modules, 2, "mid and leaf survive");
    }

    #[test]
    fn snapshot_roundtrips_and_is_deterministic() {
        let mut store = HintStore::new(3);
        let mut hints = Hints::new();
        hints.add_read(
            aji_ast::Loc::new(FileId(0), 1, 5),
            aji_ast::Loc::new(FileId(0), 2, 7),
        );
        store.put_hints(
            "p",
            10,
            20,
            hints.clone(),
            ApproxStats {
                functions_total: 4,
                functions_visited: 3,
                items_processed: 9,
                items_aborted: 1,
                total_steps: 1234,
            },
        );
        store.put_response("analyze", "p", 10, 30, "{\"name\":\"p\"}".into());
        store.put_response("oracle", "q", 11, 31, "{\"name\":\"q\"}".into());

        let snap = store.snapshot().to_string();
        assert_eq!(snap, store.snapshot().to_string(), "stable rendering");

        let mut back = HintStore::new(3);
        let n = back
            .load_snapshot(&Json::parse(&snap).unwrap())
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(back.snapshot().to_string(), snap, "lossless round trip");
        let (h, s) = back.hints("p", 10, 20).unwrap();
        assert_eq!(h, hints);
        assert_eq!(s.total_steps, 1234);
        assert_eq!(
            back.response("analyze", "p", 10, 30).as_deref(),
            Some("{\"name\":\"p\"}")
        );
    }

    #[test]
    fn snapshot_rejects_wrong_seed_and_version() {
        let mut store = HintStore::new(3);
        store.put_response("analyze", "p", 1, 2, "r".into());
        let snap = store.snapshot();
        let mut other = HintStore::new(4);
        assert!(other.load_snapshot(&snap).is_err(), "seed mismatch");
        let future = Json::obj(vec![
            ("version", Json::Num(99.0)),
            ("seed", Json::Str(hex(3))),
            ("projects", Json::Arr(Vec::new())),
        ]);
        assert!(HintStore::new(3).load_snapshot(&future).is_err());
    }

    #[test]
    fn save_and_open_roundtrip_via_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("aji-store-test-{}.json", std::process::id()));
        let mut store = HintStore::new(5);
        store.put_response("analyze", "p", 1, 2, "body".into());
        store.save_to(&path).unwrap();
        let mut back = HintStore::open(&path, 5);
        assert_eq!(back.response("analyze", "p", 1, 2).as_deref(), Some("body"));
        // Wrong seed: starts cold instead of mixing key spaces.
        let mut cold = HintStore::open(&path, 6);
        assert_eq!(cold.response("analyze", "p", 1, 2), None);
        // Missing file: empty store.
        let missing = HintStore::open(&dir.join("aji-store-missing.json"), 5);
        assert_eq!(missing.sizes(), (0, 0, 0, 0));
        let _ = std::fs::remove_file(&path);
    }
}
