//! The §3 worklist algorithm: force-execute modules and discovered
//! function values, collecting hints through the interpreter's tracer.

use crate::hints::Hints;
use aji_ast::{Loc, NodeId, Project};
use aji_interp::tracer::Tracer;
use aji_interp::{Interp, InterpOptions, JsError, Value};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// Which modules seed the worklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Every module of the main package (the paper's "each
    /// application-code module").
    #[default]
    MainPackage,
    /// Only the project's main module.
    MainOnly,
    /// Every module including dependencies.
    AllModules,
}

/// Options for approximate interpretation.
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Worklist seeding.
    pub seeds: SeedMode,
    /// Interpreter budgets. `approx` is forced on.
    pub interp: InterpOptions,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            seeds: SeedMode::default(),
            interp: InterpOptions::approx_defaults(),
        }
    }
}

impl ApproxOptions {
    /// Folds every field that can change the produced hint set into `h` —
    /// the cache-key contribution the `aji serve` hint store uses, so a
    /// persisted hint set is only ever reused under the exact options
    /// that computed it.
    pub fn fingerprint_into(&self, h: &mut aji_support::Fnv64) {
        h.write_u64(match self.seeds {
            SeedMode::MainPackage => 0,
            SeedMode::MainOnly => 1,
            SeedMode::AllModules => 2,
        });
        self.interp.fingerprint_into(h);
    }
}

/// Statistics about one pre-analysis run (§5 reports function coverage and
/// running times).
#[derive(Debug, Clone, Default)]
pub struct ApproxStats {
    /// Function definitions in the project (static count).
    pub functions_total: usize,
    /// Function definitions executed by the worklist.
    pub functions_visited: usize,
    /// Worklist items processed.
    pub items_processed: usize,
    /// Items that ended with a caught error (exception or budget).
    pub items_aborted: usize,
    /// Total interpreter steps across all items.
    pub total_steps: u64,
}

impl ApproxStats {
    /// Fraction of function definitions visited (the paper reports 60% on
    /// its benchmarks).
    pub fn coverage(&self) -> f64 {
        if self.functions_total == 0 {
            return 1.0;
        }
        self.functions_visited as f64 / self.functions_total as f64
    }
}

/// Result of approximate interpretation.
#[derive(Debug)]
pub struct ApproxResult {
    /// The collected hints (`H_R`, `H_W`, module hints).
    pub hints: Hints,
    /// Function definitions that were executed.
    pub visited: BTreeSet<NodeId>,
    /// Run statistics.
    pub stats: ApproxStats,
}

/// Shared state between the worklist driver and the interpreter's tracer.
#[derive(Default)]
struct ApproxState {
    hints: Hints,
    /// Function definitions already executed (the paper's `Visited`).
    visited: BTreeSet<NodeId>,
    /// Function definitions currently queued.
    queued: BTreeSet<NodeId>,
    /// Newly discovered function values, drained by the driver after each
    /// item.
    discovered: Vec<(NodeId, Value)>,
    /// The paper's `this` map: function object → receiver observed at a
    /// static property write.
    this_map: HashMap<aji_interp::ObjId, Value>,
}

impl Tracer for ApproxState {
    fn on_function_def(&mut self, def: NodeId, _loc: Option<Loc>, value: &Value) {
        if !self.visited.contains(&def) && self.queued.insert(def) {
            self.discovered.push((def, value.clone()));
        }
    }

    fn on_call(&mut self, _call_site: Option<Loc>, callee_def: NodeId, _callee_loc: Option<Loc>) {
        // "Before entering the function body, v is added to Visited and
        // removed from Worklist."
        self.visited.insert(callee_def);
        self.queued.remove(&callee_def);
    }

    fn on_dynamic_read(&mut self, op_loc: Loc, _result: &Value, result_loc: Option<Loc>) {
        if let Some(l) = result_loc {
            self.hints.add_read(op_loc, l);
        }
    }

    fn on_dynamic_write(
        &mut self,
        op_loc: Option<Loc>,
        obj_loc: Option<Loc>,
        prop: &str,
        value_loc: Option<Loc>,
        _value: &Value,
    ) {
        if let (Some(o), Some(v)) = (obj_loc, value_loc) {
            self.hints.add_write(o, prop, v);
        }
        if let Some(site) = op_loc {
            self.hints.add_write_prop(site, prop);
        }
    }

    fn on_proxy_base_read(&mut self, op_loc: Loc, key: &str) {
        self.hints.add_proxy_read(op_loc, key);
    }

    fn on_static_write(&mut self, obj: &Value, prop: &str, value: &Value) {
        let _ = prop;
        // this(o') := o, if not already defined (§3). Recording every
        // object-valued write is harmless: only function values are ever
        // looked up.
        if let (Some(fid), Some(_)) = (value.as_obj(), obj.as_obj()) {
            self.this_map.entry(fid).or_insert_with(|| obj.clone());
        }
    }

    fn on_require(&mut self, site: Loc, _name: &str, resolved: Option<&str>) {
        if let Some(path) = resolved {
            self.hints.add_module(site, path);
        }
    }
}

/// One worklist item: a module (by path) or a discovered function value.
enum Item {
    Module(String),
    Function(NodeId, Value),
}

/// Observability counters of the worklist driver (all no-ops when
/// `aji-obs` is inactive).
#[derive(Default)]
struct WorklistObs {
    iterations: aji_obs::Counter,
    modules: aji_obs::Counter,
    functions: aji_obs::Counter,
    aborted: aji_obs::Counter,
    read_hints: aji_obs::Counter,
    write_hints: aji_obs::Counter,
    module_hints: aji_obs::Counter,
}

impl WorklistObs {
    fn bind() -> WorklistObs {
        WorklistObs {
            iterations: aji_obs::counter("approx.iterations"),
            modules: aji_obs::counter("approx.modules_processed"),
            functions: aji_obs::counter("approx.functions_processed"),
            aborted: aji_obs::counter("approx.items_aborted"),
            read_hints: aji_obs::counter("approx.read_hints"),
            write_hints: aji_obs::counter("approx.write_hints"),
            module_hints: aji_obs::counter("approx.module_hints"),
        }
    }

    /// Records how many hints of each kind one worklist item discovered.
    fn record_hint_deltas(&self, before: (usize, usize, usize), after: (usize, usize, usize)) {
        let reads = (after.0 - before.0) as u64;
        let writes = (after.1 - before.1) as u64;
        let modules = (after.2 - before.2) as u64;
        self.read_hints.add(reads);
        self.write_hints.add(writes);
        self.module_hints.add(modules);
        aji_obs::histogram_record("approx.hints_per_item", reads + writes + modules);
    }
}

/// (read, write, module) hint counts currently collected.
fn hint_counts(state: &Rc<RefCell<ApproxState>>) -> (usize, usize, usize) {
    let st = state.borrow();
    (
        st.hints.reads.values().map(|s| s.len()).sum(),
        st.hints.writes.len(),
        st.hints.modules.values().map(|s| s.len()).sum(),
    )
}

/// Runs approximate interpretation on a project.
///
/// Parses the project first; callers that already hold a
/// [`aji_parser::ParsedProject`] should use
/// [`approximate_interpret_parsed`] to avoid the re-parse.
///
/// # Errors
///
/// Returns a parse error if any project file fails to parse. Runtime
/// errors inside individual worklist items are *not* errors of the
/// analysis: they abort the item and are counted in
/// [`ApproxStats::items_aborted`].
pub fn approximate_interpret(
    project: &Project,
    opts: &ApproxOptions,
) -> Result<ApproxResult, aji_parser::ParseError> {
    let parsed = aji_parser::parse_project(project)?;
    Ok(approximate_interpret_parsed(project, &parsed, opts))
}

/// [`approximate_interpret`] over an already-parsed project.
///
/// Infallible: parsing is the pre-analysis' only failure mode, and the
/// caller has already parsed. `parsed` must be the parse of `project`.
pub fn approximate_interpret_parsed(
    project: &Project,
    parsed: &aji_parser::ParsedProject,
    opts: &ApproxOptions,
) -> ApproxResult {
    let _span = aji_obs::span("worklist");
    let obs = WorklistObs::bind();
    let state = Rc::new(RefCell::new(ApproxState::default()));
    let mut interp_opts = opts.interp.clone();
    interp_opts.approx = true;
    let mut interp = Interp::with_parsed(project, parsed, interp_opts, Box::new(state.clone()));

    let functions_total = count_parsed_functions(parsed);

    // Seed the worklist with modules. The test driver is deliberately
    // excluded: unlike the dynamic call graphs used as ground truth, the
    // pre-analysis must not rely on existing test suites (§1 of the
    // paper — it is fully automatic).
    let driver = project.test_driver.clone().unwrap_or_default();
    let mut worklist: VecDeque<Item> = VecDeque::new();
    match opts.seeds {
        SeedMode::MainOnly => worklist.push_back(Item::Module(project.main.clone())),
        SeedMode::MainPackage => {
            // Main module first, then the remaining main-package modules.
            worklist.push_back(Item::Module(project.main.clone()));
            for p in project.main_package_paths() {
                if p != project.main && p != driver && p.ends_with(".js") {
                    worklist.push_back(Item::Module(p.to_string()));
                }
            }
        }
        SeedMode::AllModules => {
            worklist.push_back(Item::Module(project.main.clone()));
            for f in &project.files {
                if f.path != project.main && f.path != driver && f.path.ends_with(".js") {
                    worklist.push_back(Item::Module(f.path.clone()));
                }
            }
        }
    }

    let mut stats = ApproxStats {
        functions_total,
        ..ApproxStats::default()
    };

    loop {
        // Pull in functions discovered during the previous item.
        {
            let mut st = state.borrow_mut();
            let discovered = std::mem::take(&mut st.discovered);
            drop(st);
            for (def, value) in discovered {
                worklist.push_back(Item::Function(def, value));
            }
        }
        let Some(item) = worklist.pop_front() else {
            break;
        };
        stats.items_processed += 1;
        interp.reset_steps();
        // Hint counting walks the collected maps — only pay for it when
        // observability is actually recording.
        let hints_before = obs.iterations.is_live().then(|| hint_counts(&state));
        let outcome: Result<(), JsError> = match item {
            Item::Module(path) => {
                obs.modules.inc();
                interp.run_module(&path).map(|_| ())
            }
            Item::Function(def, value) => {
                let already_visited = {
                    let st = state.borrow();
                    st.visited.contains(&def)
                };
                if already_visited {
                    stats.items_processed -= 1;
                    continue;
                }
                obs.functions.inc();
                run_function_item(&mut interp, &state, def, value)
            }
        };
        obs.iterations.inc();
        if let Some(before) = hints_before {
            obs.record_hint_deltas(before, hint_counts(&state));
        }
        stats.total_steps += interp.steps();
        if outcome.is_err() {
            obs.aborted.inc();
            stats.items_aborted += 1;
        }
    }

    let st = Rc::try_unwrap(state)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| {
            let borrowed = rc.borrow();
            ApproxState {
                hints: borrowed.hints.clone(),
                visited: borrowed.visited.clone(),
                queued: BTreeSet::new(),
                discovered: Vec::new(),
                this_map: HashMap::new(),
            }
        });
    stats.functions_visited = st
        .visited
        .iter()
        .filter(|_| true)
        .count()
        .min(functions_total.max(st.visited.len()));
    ApproxResult {
        hints: st.hints,
        visited: st.visited,
        stats,
    }
}

/// Executes one discovered function value: `f.apply(w, p*)` where `w` is
/// the recorded receiver (wrapped to delegate absent properties to `p*`)
/// or `p*` itself.
fn run_function_item(
    interp: &mut Interp,
    state: &Rc<RefCell<ApproxState>>,
    _def: NodeId,
    value: Value,
) -> Result<(), JsError> {
    let this = {
        let st = state.borrow();
        value.as_obj().and_then(|id| st.this_map.get(&id).cloned())
    };
    let this = match this {
        Some(Value::Obj(base)) => interp.make_this_wrapper(base),
        _ => interp.proxy_value(),
    };
    // Bind every declared parameter (and `arguments`) to p*.
    let n_params = interp.param_count(&value).unwrap_or(0);
    let proxy = interp.proxy_value();
    let args = vec![proxy; n_params.max(1)];
    interp.call_function(value, this, &args).map(|_| ())
}

/// Counts function definitions across a parsed project's modules (for
/// the coverage statistic).
fn count_parsed_functions(parsed: &aji_parser::ParsedProject) -> usize {
    use aji_ast::visit::{FunctionCollector, Visit};
    let mut c = FunctionCollector::default();
    for m in &parsed.modules {
        c.visit_module(m);
    }
    c.functions.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project_with(src: &str) -> Project {
        let mut p = Project::new("t");
        p.add_file("index.js", src);
        p
    }

    #[test]
    fn collects_write_hints_from_method_table() {
        let p = project_with(
            "var api = {};\n\
             ['get', 'post', 'put'].forEach(function(m) {\n\
             api[m] = function() { return m; };\n\
             });\n\
             module.exports = api;",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert_eq!(r.hints.writes.len(), 3);
        let props: Vec<&str> = r.hints.writes.iter().map(|w| w.prop.as_str()).collect();
        assert_eq!(props, vec!["get", "post", "put"]);
    }

    #[test]
    fn collects_read_hints() {
        let p = project_with(
            "var table = { handler: function() { return 1; } };\n\
             var k = 'handler';\n\
             var f = table[k];\n\
             f();",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert_eq!(r.hints.reads.len(), 1);
    }

    #[test]
    fn executes_unreached_functions_with_proxy_args() {
        // `installer` is never called by the module; the worklist must
        // force-execute it and observe its dynamic write.
        let p = project_with(
            "var target = {};\n\
             function installer(name) {\n\
             target[name] = function() {};\n\
             }\n\
             module.exports = installer;",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        // The write key is the proxy, so no hint is recorded for it — but
        // the function must have been visited.
        assert!(r.stats.functions_visited >= 1);
    }

    #[test]
    fn function_definitions_run_at_most_once() {
        let p = project_with(
            "var count = 0;\n\
             function f() { count++; }\n\
             f(); f(); f();",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        // f was called during module init, so the worklist must not run it
        // again: visited contains it already.
        assert!(r.stats.items_processed <= 3);
        assert!(!r.visited.is_empty());
    }

    #[test]
    fn module_hints_for_dynamic_require() {
        let mut p = Project::new("t");
        p.add_file(
            "index.js",
            "var which = 'en';\n\
             var lang = require('./langs/' + which);\n\
             module.exports = lang;",
        );
        p.add_file("langs/en.js", "module.exports = { hello: 'hello' };");
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        let all: Vec<String> = r
            .hints
            .modules
            .values()
            .flat_map(|s| s.iter().cloned())
            .collect();
        assert!(all.contains(&"langs/en.js".to_string()));
    }

    #[test]
    fn aborted_items_do_not_kill_analysis() {
        let p = project_with(
            "function boom() { throw new Error('x'); }\n\
             var api = {};\n\
             api['late'] = function() {};\n\
             module.exports = { boom: boom, api: api };",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert!(!r.hints.writes.is_empty());
    }

    #[test]
    fn this_map_used_for_method_receivers() {
        // `helper` is assigned to `obj.run` (static write). When the
        // worklist later force-executes `helper`, `this` must be a wrapper
        // over `obj`, so `this.table[k]` observes obj's real table and the
        // read hint records the function's allocation site.
        let p = project_with(
            "var obj = { table: { x: function target() {} } };\n\
             obj.run = function helper(k) {\n\
             var f = this.table['x'];\n\
             return f;\n\
             };\n\
             module.exports = obj;",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert_eq!(r.hints.reads.len(), 1, "hints: {:?}", r.hints);
    }

    #[test]
    fn stats_coverage() {
        let p = project_with("function a() {} function b() {} a();");
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert_eq!(r.stats.functions_total, 2);
        assert!(r.stats.coverage() > 0.9);
    }

    #[test]
    fn eval_code_produces_hints_without_alloc_sites() {
        // Dynamic writes inside eval'd code where both objects come from
        // static code still produce hints (§3).
        let p = project_with(
            "var target = {};\n\
             var fn = function handler() {};\n\
             eval('target[\"k\"] = fn;');\n\
             module.exports = target;",
        );
        let r = approximate_interpret(&p, &ApproxOptions::default()).unwrap();
        assert_eq!(r.hints.writes.len(), 1);
        let w = r.hints.writes.iter().next().unwrap();
        assert_eq!(w.prop, "k");
    }
}
