//! Hint data structures (`H_R`, `H_W` and module hints).

use aji_ast::Loc;
use aji_support::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, BTreeSet};

/// A write hint `(ℓ, p, ℓ'')`: an object allocated at `value` was written
/// to property `prop` of an object allocated at `obj`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteHint {
    /// Allocation site of the object written *to*.
    pub obj: Loc,
    /// The property name.
    pub prop: String,
    /// Allocation site of the value written.
    pub value: Loc,
}

/// Write hints serialize as `[obj, prop, value]` triples.
impl ToJson for WriteHint {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.obj.to_json(),
            Json::Str(self.prop.clone()),
            self.value.to_json(),
        ])
    }
}

impl FromJson for WriteHint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([obj, prop, value]) => Ok(WriteHint {
                obj: Loc::from_json(obj)?,
                prop: String::from_json(prop)?,
                value: Loc::from_json(value)?,
            }),
            _ => Err(JsonError::shape("expected [obj, prop, value] write hint")),
        }
    }
}

/// The full output of approximate interpretation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Hints {
    /// Read hints `H_R`: dynamic-read operation location → allocation
    /// sites observed as results.
    pub reads: BTreeMap<Loc, BTreeSet<Loc>>,
    /// Write hints `H_W`.
    pub writes: BTreeSet<WriteHint>,
    /// Module hints: `require` call-site location → project file paths the
    /// call resolved to at runtime.
    pub modules: BTreeMap<Loc, BTreeSet<String>>,
    /// Property names observed per dynamic-*write* site (the §4
    /// non-relational alternative's raw material; unused by \[DPW\]).
    pub write_props: BTreeMap<Loc, BTreeSet<String>>,
    /// §6 extension: dynamic-read sites whose base was the unknown proxy
    /// but whose key was a concrete string.
    pub proxy_reads: BTreeMap<Loc, BTreeSet<String>>,
}

impl Hints {
    /// Creates an empty hint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read hint.
    pub fn add_read(&mut self, op: Loc, result: Loc) {
        self.reads.entry(op).or_default().insert(result);
    }

    /// Records a write hint.
    pub fn add_write(&mut self, obj: Loc, prop: impl Into<String>, value: Loc) {
        self.writes.insert(WriteHint {
            obj,
            prop: prop.into(),
            value,
        });
    }

    /// Records a module hint.
    pub fn add_module(&mut self, site: Loc, path: impl Into<String>) {
        self.modules.entry(site).or_default().insert(path.into());
    }

    /// Records the property name observed at a dynamic-write site.
    pub fn add_write_prop(&mut self, site: Loc, prop: impl Into<String>) {
        self.write_props.entry(site).or_default().insert(prop.into());
    }

    /// Records a proxy-base read (§6 extension).
    pub fn add_proxy_read(&mut self, site: Loc, prop: impl Into<String>) {
        self.proxy_reads.entry(site).or_default().insert(prop.into());
    }

    /// Total number of primary hints: read hints, write hints and module
    /// hints (the paper reports 0–15 036 per program). The auxiliary
    /// `write_props`/`proxy_reads` sets are not counted: they only feed
    /// the ablation/extension modes.
    pub fn len(&self) -> usize {
        self.reads.values().map(|s| s.len()).sum::<usize>()
            + self.writes.len()
            + self.modules.values().map(|s| s.len()).sum::<usize>()
    }

    /// Whether no hints were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another hint set into this one (used when reusing library
    /// pre-analysis results, §6).
    pub fn merge(&mut self, other: &Hints) {
        for (op, locs) in &other.reads {
            self.reads.entry(*op).or_default().extend(locs.iter().copied());
        }
        self.writes.extend(other.writes.iter().cloned());
        for (site, paths) in &other.modules {
            self.modules
                .entry(*site)
                .or_default()
                .extend(paths.iter().cloned());
        }
        for (site, props) in &other.write_props {
            self.write_props
                .entry(*site)
                .or_default()
                .extend(props.iter().cloned());
        }
        for (site, props) in &other.proxy_reads {
            self.proxy_reads
                .entry(*site)
                .or_default()
                .extend(props.iter().cloned());
        }
    }

    /// Serializes the hint set to a JSON string, so pre-analysis results
    /// can be persisted and reused across projects (§6).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Reloads a hint set serialized by [`Hints::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<Hints, JsonError> {
        Hints::from_json(&Json::parse(s)?)
    }
}

impl ToJson for Hints {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("modules", self.modules.to_json()),
            ("write_props", self.write_props.to_json()),
            ("proxy_reads", self.proxy_reads.to_json()),
        ])
    }
}

impl FromJson for Hints {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::shape(format!("hints missing field '{k}'")))
        };
        Ok(Hints {
            reads: FromJson::from_json(field("reads")?)?,
            writes: FromJson::from_json(field("writes")?)?,
            modules: FromJson::from_json(field("modules")?)?,
            write_props: FromJson::from_json(field("write_props")?)?,
            proxy_reads: FromJson::from_json(field("proxy_reads")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::FileId;

    fn loc(l: u32) -> Loc {
        Loc::new(FileId(0), l, 1)
    }

    #[test]
    fn counting_and_dedup() {
        let mut h = Hints::new();
        h.add_read(loc(1), loc(2));
        h.add_read(loc(1), loc(2));
        h.add_read(loc(1), loc(3));
        h.add_write(loc(4), "get", loc(5));
        h.add_write(loc(4), "get", loc(5));
        h.add_module(loc(6), "lib/a.js");
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_unions() {
        let mut a = Hints::new();
        a.add_read(loc(1), loc(2));
        let mut b = Hints::new();
        b.add_read(loc(1), loc(3));
        b.add_write(loc(4), "x", loc(5));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.reads[&loc(1)].len(), 2);
    }

    #[test]
    fn empty_hints() {
        assert!(Hints::new().is_empty());
    }

    fn roundtrip(h: &Hints) -> Hints {
        Hints::from_json_str(&h.to_json_string()).expect("round trip")
    }

    #[test]
    fn json_roundtrip_full_hint_set() {
        let mut h = Hints::new();
        h.add_read(loc(1), loc(2));
        h.add_read(loc(1), loc(3));
        h.add_read(loc(9), loc(2));
        h.add_write(loc(4), "get", loc(5));
        h.add_write(loc(4), "set", loc(6));
        h.add_module(loc(7), "node_modules/dep/index.js");
        h.add_write_prop(loc(8), "installed");
        h.add_proxy_read(loc(10), "config");
        let back = roundtrip(&h);
        assert_eq!(back, h);
        assert_eq!(back.len(), h.len());
    }

    #[test]
    fn json_roundtrip_empty() {
        assert_eq!(roundtrip(&Hints::new()), Hints::new());
    }

    #[test]
    fn json_roundtrip_escaped_property_names() {
        // Dynamic property writes can install keys containing JSON
        // metacharacters — exactly what the serializer must escape.
        let gnarly = [
            "quote\"name",
            "back\\slash",
            "new\nline",
            "tab\tname",
            "unicode-ключ-🔑",
            "\u{0}\u{1f}control",
            "",
            "\\\"both\\\"",
        ];
        let mut h = Hints::new();
        for (i, p) in gnarly.iter().enumerate() {
            h.add_write(loc(1), *p, loc(10 + i as u32));
            h.add_write_prop(loc(2), *p);
            h.add_proxy_read(loc(3), *p);
        }
        h.add_module(loc(4), "pkg\"weird\\path\n.js");
        let text = h.to_json_string();
        let back = Hints::from_json_str(&text).expect("escaped names round-trip");
        assert_eq!(back, h, "serialized form: {text}");
    }

    #[test]
    fn json_output_is_deterministic() {
        let mut h = Hints::new();
        h.add_write(loc(2), "b", loc(3));
        h.add_write(loc(1), "a", loc(2));
        h.add_read(loc(5), loc(6));
        assert_eq!(h.to_json_string(), h.to_json_string());
        // BTree storage means insertion order does not leak into output.
        let mut h2 = Hints::new();
        h2.add_read(loc(5), loc(6));
        h2.add_write(loc(1), "a", loc(2));
        h2.add_write(loc(2), "b", loc(3));
        assert_eq!(h.to_json_string(), h2.to_json_string());
    }

    #[test]
    fn json_rejects_malformed_hint_sets() {
        assert!(Hints::from_json_str("").is_err());
        assert!(Hints::from_json_str("[]").is_err());
        assert!(Hints::from_json_str("{\"reads\": []}").is_err(), "missing fields");
        assert!(
            Hints::from_json_str(
                "{\"reads\":[],\"writes\":[[1,2]],\"modules\":[],\
                 \"write_props\":[],\"proxy_reads\":[]}"
            )
            .is_err(),
            "malformed write hint"
        );
    }

    #[test]
    fn merged_hints_roundtrip() {
        let mut a = Hints::new();
        a.add_read(loc(1), loc(2));
        let mut b = Hints::new();
        b.add_write(loc(3), "p", loc(4));
        a.merge(&b);
        assert_eq!(roundtrip(&a), a);
    }
}
