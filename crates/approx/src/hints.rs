//! Hint data structures (`H_R`, `H_W` and module hints).

use aji_ast::Loc;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A write hint `(ℓ, p, ℓ'')`: an object allocated at `value` was written
/// to property `prop` of an object allocated at `obj`.
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WriteHint {
    /// Allocation site of the object written *to*.
    pub obj: Loc,
    /// The property name.
    pub prop: String,
    /// Allocation site of the value written.
    pub value: Loc,
}

/// The full output of approximate interpretation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Hints {
    /// Read hints `H_R`: dynamic-read operation location → allocation
    /// sites observed as results.
    pub reads: BTreeMap<Loc, BTreeSet<Loc>>,
    /// Write hints `H_W`.
    pub writes: BTreeSet<WriteHint>,
    /// Module hints: `require` call-site location → project file paths the
    /// call resolved to at runtime.
    pub modules: BTreeMap<Loc, BTreeSet<String>>,
    /// Property names observed per dynamic-*write* site (the §4
    /// non-relational alternative's raw material; unused by \[DPW\]).
    pub write_props: BTreeMap<Loc, BTreeSet<String>>,
    /// §6 extension: dynamic-read sites whose base was the unknown proxy
    /// but whose key was a concrete string.
    pub proxy_reads: BTreeMap<Loc, BTreeSet<String>>,
}

impl Hints {
    /// Creates an empty hint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read hint.
    pub fn add_read(&mut self, op: Loc, result: Loc) {
        self.reads.entry(op).or_default().insert(result);
    }

    /// Records a write hint.
    pub fn add_write(&mut self, obj: Loc, prop: impl Into<String>, value: Loc) {
        self.writes.insert(WriteHint {
            obj,
            prop: prop.into(),
            value,
        });
    }

    /// Records a module hint.
    pub fn add_module(&mut self, site: Loc, path: impl Into<String>) {
        self.modules.entry(site).or_default().insert(path.into());
    }

    /// Records the property name observed at a dynamic-write site.
    pub fn add_write_prop(&mut self, site: Loc, prop: impl Into<String>) {
        self.write_props.entry(site).or_default().insert(prop.into());
    }

    /// Records a proxy-base read (§6 extension).
    pub fn add_proxy_read(&mut self, site: Loc, prop: impl Into<String>) {
        self.proxy_reads.entry(site).or_default().insert(prop.into());
    }

    /// Total number of primary hints: read hints, write hints and module
    /// hints (the paper reports 0–15 036 per program). The auxiliary
    /// `write_props`/`proxy_reads` sets are not counted: they only feed
    /// the ablation/extension modes.
    pub fn len(&self) -> usize {
        self.reads.values().map(|s| s.len()).sum::<usize>()
            + self.writes.len()
            + self.modules.values().map(|s| s.len()).sum::<usize>()
    }

    /// Whether no hints were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another hint set into this one (used when reusing library
    /// pre-analysis results, §6).
    pub fn merge(&mut self, other: &Hints) {
        for (op, locs) in &other.reads {
            self.reads.entry(*op).or_default().extend(locs.iter().copied());
        }
        self.writes.extend(other.writes.iter().cloned());
        for (site, paths) in &other.modules {
            self.modules
                .entry(*site)
                .or_default()
                .extend(paths.iter().cloned());
        }
        for (site, props) in &other.write_props {
            self.write_props
                .entry(*site)
                .or_default()
                .extend(props.iter().cloned());
        }
        for (site, props) in &other.proxy_reads {
            self.proxy_reads
                .entry(*site)
                .or_default()
                .extend(props.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::FileId;

    fn loc(l: u32) -> Loc {
        Loc::new(FileId(0), l, 1)
    }

    #[test]
    fn counting_and_dedup() {
        let mut h = Hints::new();
        h.add_read(loc(1), loc(2));
        h.add_read(loc(1), loc(2));
        h.add_read(loc(1), loc(3));
        h.add_write(loc(4), "get", loc(5));
        h.add_write(loc(4), "get", loc(5));
        h.add_module(loc(6), "lib/a.js");
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_unions() {
        let mut a = Hints::new();
        a.add_read(loc(1), loc(2));
        let mut b = Hints::new();
        b.add_read(loc(1), loc(3));
        b.add_write(loc(4), "x", loc(5));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.reads[&loc(1)].len(), 2);
    }

    #[test]
    fn empty_hints() {
        assert!(Hints::new().is_empty());
    }
}
