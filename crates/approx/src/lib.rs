//! Approximate interpretation — the paper's §3 dynamic pre-analysis.
//!
//! A worklist algorithm force-executes every module of a project and every
//! function value discovered along the way (each function *definition* at
//! most once), with a proxy object `p*` standing in for unknown values.
//! The output is a set of **hints**:
//!
//! * read hints `H_R : Loc → P(Loc)` — which allocation sites have been
//!   observed as the *result* of each dynamic property read;
//! * write hints `H_W ⊆ Loc × String × Loc` — which (object, property,
//!   value) triples have been observed at dynamic property writes and at
//!   `Object.defineProperty` / `defineProperties` / `assign` / `create`;
//! * module hints — which modules dynamic `require` calls resolved to
//!   (the §3 extension for dynamic module loading).
//!
//! The hints feed the static analysis' \[DPR\]/\[DPW\] rules (crate
//! `aji-pta`).
//!
//! # Example
//!
//! ```
//! use aji_ast::Project;
//! use aji_approx::{approximate_interpret, ApproxOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut project = Project::new("demo");
//! project.add_file(
//!     "index.js",
//!     "var api = {};\n\
//!      ['get', 'put'].forEach(function(m) {\n\
//!        api[m] = function() { return m; };\n\
//!      });\n\
//!      module.exports = api;",
//! );
//! let result = approximate_interpret(&project, &ApproxOptions::default())?;
//! // Two write hints: api.get and api.put each receive the inner function.
//! assert_eq!(result.hints.writes.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod hints;
mod worklist;

pub use hints::{Hints, WriteHint};
pub use worklist::{
    approximate_interpret, approximate_interpret_parsed, ApproxOptions, ApproxResult, ApproxStats,
    SeedMode,
};
