//! Hand-written benchmark projects, one per real-world dynamic-object
//! idiom the paper identifies: mixin-based API initialization, method
//! tables built in loops, event-emitter registries, plugin systems,
//! `eval`-built APIs, dynamic `require`, descriptor-based accessors, and
//! class-based dependency injection.
//!
//! Every project ships a `test/driver.js` used to produce its dynamic
//! call graph (standing in for the paper's project test suites), and some
//! carry synthetic vulnerability annotations for the §5 reachability
//! study.

use aji_ast::Project;

/// All hand-written pattern projects, in a stable order.
pub fn pattern_projects() -> Vec<Project> {
    vec![
        webframe(),
        pubsub(),
        plugin_host(),
        validator(),
        model_builder(),
        eval_api(),
        middleware_stack(),
        i18n(),
        config_store(),
        di_container(),
        task_queue(),
        template_engine(),
        rest_client(),
        logger_lib(),
    ]
}

/// The paper's motivating example, fleshed out: an Express-like web
/// framework whose API is assembled with merge-descriptors-style mixins
/// and a dynamically built HTTP-verb method table.
pub fn webframe() -> Project {
    let mut p = Project::new("webframe-app");
    p.main = "index.js".to_string();
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"const web = require('webframe');
const app = web();
app.get('/', function rootHandler(req, res) {
  res.send('Hello world!');
});
app.post('/items', function createItem(req, res) {
  res.send('created');
});
app.use(function logger(req, res) {
  log('request: ' + req.url);
});
var server = app.listen(8080);
function log(msg) { console.log(msg); }
module.exports = app;
"#,
    );
    p.add_file(
        "node_modules/webframe/index.js",
        r#"var mixin = require('mixin-props');
var EventEmitter = require('events');
var proto = require('./application');
var router = require('./router');

exports = module.exports = createApplication;

function createApplication() {
  var app = function(req, res, next) {
    app.handle(req, res, next);
  };
  mixin(app, EventEmitter.prototype, false);
  mixin(app, proto, false);
  app.init();
  return app;
}

module.exports.Router = router;
"#,
    );
    p.add_file(
        "node_modules/mixin-props/index.js",
        r#"module.exports = merge;

function merge(dest, src, redefine) {
  Object.getOwnPropertyNames(src).forEach(function forOwnPropertyName(name) {
    if (!redefine && Object.prototype.hasOwnProperty.call(dest, name)) {
      return;
    }
    var descriptor = Object.getOwnPropertyDescriptor(src, name);
    Object.defineProperty(dest, name, descriptor);
  });
  return dest;
}
"#,
    );
    p.add_file(
        "node_modules/webframe/application.js",
        r#"var methods = require('verbs');
var Router = require('./router');
var http = require('http');

var app = exports = module.exports = {};

app.init = function init() {
  this.settings = {};
  this.middleware = [];
};

app.lazyrouter = function lazyrouter() {
  if (!this._router) {
    this._router = new Router();
  }
};

methods.forEach(function(method) {
  app[method] = function(path) {
    this.lazyrouter();
    var route = this._router.route(path);
    route[method].apply(route, Array.prototype.slice.call(arguments, 1));
    return this;
  };
});

app.use = function use(fn) {
  this.middleware.push(fn);
  return this;
};

app.handle = function handle(req, res, next) {
  this.lazyrouter();
  for (var i = 0; i < this.middleware.length; i++) {
    this.middleware[i](req, res);
  }
  this._router.handle(req, res, next);
};

app.set = function set(key, value) {
  this.settings[key] = value;
  return this;
};

app.listen = function listen() {
  var server = http.createServer(this);
  return server.listen.apply(server, arguments);
};
"#,
    );
    p.add_file(
        "node_modules/webframe/router.js",
        r#"var methods = require('verbs');

module.exports = Router;

function Router() {
  this.stack = [];
}

Router.prototype.route = function route(path) {
  var r = new Route(path);
  this.stack.push(r);
  return r;
};

Router.prototype.handle = function handle(req, res, next) {
  for (var i = 0; i < this.stack.length; i++) {
    this.stack[i].dispatch(req, res);
  }
};

function Route(path) {
  this.path = path;
  this.handlers = [];
}

methods.forEach(function(method) {
  Route.prototype[method] = function() {
    for (var i = 0; i < arguments.length; i++) {
      this.handlers.push({ method: method, fn: arguments[i] });
    }
    return this;
  };
});

Route.prototype.dispatch = function dispatch(req, res) {
  for (var i = 0; i < this.handlers.length; i++) {
    this.handlers[i].fn(req, res);
  }
};
"#,
    );
    p.add_file(
        "node_modules/verbs/index.js",
        r#"module.exports = [
  'GET', 'POST', 'PUT', 'DELETE', 'HEAD', 'OPTIONS', 'PATCH'
].map(function(m) {
  return m.toLowerCase();
});
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var app = require('../index');
app.handle({ url: '/' }, { send: function(body) { return body; } });
app.set('view engine', 'none');
"#,
    );
    p.add_vuln("CVE-SYN-0001", "node_modules/webframe/router.js", "dispatch");
    p.add_vuln("CVE-SYN-0002", "node_modules/mixin-props/index.js", "merge");
    p
}

/// A publish/subscribe library with a dynamically keyed handler registry.
pub fn pubsub() -> Project {
    let mut p = Project::new("pubsub-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var bus = require('tinybus');
var metrics = require('./lib/metrics');

bus.subscribe('order.created', function onOrderCreated(order) {
  metrics.count('orders');
  return order.id;
});
bus.subscribe('order.shipped', function onOrderShipped(order) {
  metrics.count('shipments');
});
bus.publish('order.created', { id: 1 });

module.exports = bus;
"#,
    );
    p.add_file(
        "lib/metrics.js",
        r#"var counters = {};

exports.count = function count(name) {
  var key = 'c_' + name;
  if (!counters[key]) {
    counters[key] = 0;
  }
  counters[key] = counters[key] + 1;
  return counters[key];
};

exports.get = function get(name) {
  return counters['c_' + name] || 0;
};
"#,
    );
    p.add_file(
        "node_modules/tinybus/index.js",
        r#"var topics = {};

exports.subscribe = function subscribe(topic, handler) {
  var list = topics[topic];
  if (!list) {
    list = [];
    topics[topic] = list;
  }
  list.push(handler);
  return function unsubscribe() {
    var idx = list.indexOf(handler);
    if (idx >= 0) {
      list.splice(idx, 1);
    }
  };
};

exports.publish = function publish(topic) {
  var list = topics[topic];
  if (!list) {
    return 0;
  }
  var args = Array.prototype.slice.call(arguments, 1);
  for (var i = 0; i < list.length; i++) {
    list[i].apply(null, args);
  }
  return list.length;
};

exports.clear = function clear() {
  topics = {};
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var bus = require('../index');
bus.publish('order.shipped', { id: 2 });
"#,
    );
    p.add_vuln("CVE-SYN-0003", "node_modules/tinybus/index.js", "publish");
    p
}

/// A plugin host that loads plugins through dynamically computed module
/// names and dispatches to them via a name-keyed table.
pub fn plugin_host() -> Project {
    let mut p = Project::new("plugin-host");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var host = require('./lib/host');
host.load('markdown');
host.load('yaml');
var out = host.run('markdown', '# hi');
module.exports = host;
"#,
    );
    p.add_file(
        "lib/host.js",
        r#"var registry = {};

exports.load = function load(name) {
  var plugin = require('./plugins/' + name);
  registry[name] = plugin;
  if (plugin.activate) {
    plugin.activate();
  }
  return plugin;
};

exports.run = function run(name, input) {
  var plugin = registry[name];
  return plugin.transform(input);
};

exports.names = function names() {
  return Object.keys(registry);
};
"#,
    );
    p.add_file(
        "lib/plugins/markdown.js",
        r#"exports.activate = function activateMarkdown() {
  return 'md-active';
};
exports.transform = function transformMarkdown(input) {
  return '<h1>' + input.slice(2) + '</h1>';
};
"#,
    );
    p.add_file(
        "lib/plugins/yaml.js",
        r#"exports.activate = function activateYaml() {
  return 'yaml-active';
};
exports.transform = function transformYaml(input) {
  return input.split(':');
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var host = require('../index');
host.run('yaml', 'a: 1');
"#,
    );
    p.add_vuln("CVE-SYN-0004", "lib/plugins/yaml.js", "transformYaml");
    p
}

/// A validator-chain library whose rule set is assembled dynamically.
pub fn validator() -> Project {
    let mut p = Project::new("validator-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var v = require('checkit');
var result = v.check('hello@example.com')
  .isString()
  .notEmpty()
  .matches('@')
  .valid();
module.exports = { ok: result };
"#,
    );
    p.add_file(
        "node_modules/checkit/index.js",
        r#"var rules = require('./rules');

module.exports = { check: check };

function check(value) {
  return new Chain(value);
}

function Chain(value) {
  this.value = value;
  this.errors = [];
}

Chain.prototype.valid = function valid() {
  return this.errors.length === 0;
};

Object.keys(rules).forEach(function(name) {
  Chain.prototype[name] = function() {
    var rule = rules[name];
    var args = [this.value].concat(Array.prototype.slice.call(arguments));
    if (!rule.apply(null, args)) {
      this.errors.push(name);
    }
    return this;
  };
});
"#,
    );
    p.add_file(
        "node_modules/checkit/rules.js",
        r#"exports.isString = function isString(v) {
  return typeof v === 'string';
};
exports.notEmpty = function notEmpty(v) {
  return v.length > 0;
};
exports.matches = function matches(v, needle) {
  return v.indexOf(needle) >= 0;
};
exports.isNumber = function isNumber(v) {
  return typeof v === 'number';
};
exports.min = function min(v, n) {
  return v >= n;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var out = require('../index');
var v = require('checkit');
v.check(42).isNumber().min(10).valid();
"#,
    );
    p
}

/// An ORM-ish model builder that defines accessors with
/// `Object.defineProperty` for each declared attribute.
pub fn model_builder() -> Project {
    let mut p = Project::new("model-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var define = require('modeldef');
var User = define('User', {
  name: { default: '' },
  age: { default: 0 },
  email: { default: null }
});
var u = new User();
u.name = 'ada';
var snapshot = u.toJSON();
module.exports = { User: User, user: u, snapshot: snapshot };
"#,
    );
    p.add_file(
        "node_modules/modeldef/index.js",
        r#"module.exports = defineModel;

function defineModel(modelName, attributes) {
  function Model() {
    this._data = {};
    var names = Object.keys(attributes);
    for (var i = 0; i < names.length; i++) {
      this._data[names[i]] = attributes[names[i]].default;
    }
  }
  Model.modelName = modelName;
  Object.keys(attributes).forEach(function(attr) {
    Object.defineProperty(Model.prototype, attr, {
      get: function getAttr() {
        return this._data[attr];
      },
      set: function setAttr(v) {
        this._data[attr] = v;
      },
      enumerable: true
    });
  });
  Model.prototype.toJSON = function toJSON() {
    var out = {};
    var names = Object.keys(attributes);
    for (var i = 0; i < names.length; i++) {
      out[names[i]] = this._data[names[i]];
    }
    return out;
  };
  return Model;
}
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var m = require('../index');
var u2 = new m.User();
u2.age = 30;
u2.toJSON();
"#,
    );
    p.add_vuln("CVE-SYN-0005", "node_modules/modeldef/index.js", "defineModel");
    p
}

/// An API assembled by `eval`-generated code (the paper's §3 eval
/// discussion: hints still arise when both endpoints come from static
/// code).
pub fn eval_api() -> Project {
    let mut p = Project::new("evalapi-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var api = require('./lib/api');
var sum = api.add(2, 3);
var diff = api.sub(10, 4);
module.exports = { sum: sum, diff: diff };
"#,
    );
    p.add_file(
        "lib/api.js",
        r#"var ops = require('./ops');
var api = {};

// Install each op through dynamically generated glue code.
Object.keys(ops).forEach(function(name) {
  var fn = ops[name];
  eval("api[name] = fn;");
});

module.exports = api;
"#,
    );
    p.add_file(
        "lib/ops.js",
        r#"exports.add = function add(a, b) {
  return a + b;
};
exports.sub = function sub(a, b) {
  return a - b;
};
exports.mul = function mul(a, b) {
  return a * b;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var api = require('../lib/api');
api.mul(6, 7);
"#,
    );
    p
}

/// A middleware/hook pipeline: arrays of functions invoked in order, with
/// phases selected by computed keys.
pub fn middleware_stack() -> Project {
    let mut p = Project::new("middleware-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var pipeline = require('hookline')();

pipeline.on('before', function auth(ctx) {
  ctx.user = 'u1';
});
pipeline.on('action', function handle(ctx) {
  ctx.result = 'handled:' + ctx.user;
});
pipeline.on('after', function audit(ctx) {
  ctx.audited = true;
});

var ctx = {};
pipeline.run(ctx);
module.exports = ctx;
"#,
    );
    p.add_file(
        "node_modules/hookline/index.js",
        r#"var PHASES = ['before', 'action', 'after'];

module.exports = function createPipeline() {
  var hooks = {};
  PHASES.forEach(function(phase) {
    hooks[phase] = [];
  });
  var pipeline = {};
  pipeline.on = function on(phase, fn) {
    hooks[phase].push(fn);
    return pipeline;
  };
  pipeline.run = function run(ctx) {
    for (var i = 0; i < PHASES.length; i++) {
      var fns = hooks[PHASES[i]];
      for (var j = 0; j < fns.length; j++) {
        fns[j](ctx);
      }
    }
    return ctx;
  };
  return pipeline;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var ctx = require('../index');
var make = require('hookline');
var p2 = make();
p2.on('action', function extra(c) { c.extra = 1; });
p2.run({});
"#,
    );
    p
}

/// Internationalization via dynamically computed `require` paths.
pub fn i18n() -> Project {
    let mut p = Project::new("i18n-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var i18n = require('./lib/i18n');
i18n.setLocale('en');
var hello = i18n.t('hello');
i18n.setLocale('de');
var hallo = i18n.t('hello');
module.exports = { hello: hello, hallo: hallo };
"#,
    );
    p.add_file(
        "lib/i18n.js",
        r#"var current = 'en';
var cache = {};

exports.setLocale = function setLocale(locale) {
  current = locale;
};

exports.t = function translate(key) {
  var table = load(current);
  var entry = table[key];
  if (typeof entry === 'function') {
    return entry();
  }
  return entry;
};

function load(locale) {
  if (!cache[locale]) {
    cache[locale] = require('./locales/' + locale);
  }
  return cache[locale];
}
"#,
    );
    p.add_file(
        "lib/locales/en.js",
        r#"exports.hello = 'hello';
exports.bye = function formatBye() {
  return 'goodbye';
};
"#,
    );
    p.add_file(
        "lib/locales/de.js",
        r#"exports.hello = 'hallo';
exports.bye = function formatTschuess() {
  return 'tschuess';
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var x = require('../index');
var i18n = require('../lib/i18n');
i18n.setLocale('en');
i18n.t('bye');
"#,
    );
    p
}

/// A configuration store built around computed keys and accessors.
pub fn config_store() -> Project {
    let mut p = Project::new("config-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var store = require('kvstore').create();
store.set('db.host', 'localhost');
store.set('db.port', 5432);
store.watch('db.host', function onHostChange(value) {
  return 'host is now ' + value;
});
store.set('db.host', 'example.com');
module.exports = store;
"#,
    );
    p.add_file(
        "node_modules/kvstore/index.js",
        r#"exports.create = function create() {
  var data = {};
  var watchers = {};
  var store = {};

  store.set = function set(key, value) {
    data[key] = value;
    var list = watchers[key];
    if (list) {
      for (var i = 0; i < list.length; i++) {
        list[i](value);
      }
    }
    return store;
  };

  store.get = function get(key) {
    return data[key];
  };

  store.watch = function watch(key, fn) {
    if (!watchers[key]) {
      watchers[key] = [];
    }
    watchers[key].push(fn);
    return store;
  };

  store.keys = function keys() {
    return Object.keys(data);
  };

  return store;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var store = require('../index');
store.get('db.port');
store.keys();
"#,
    );
    p
}

/// A class-based dependency-injection container instantiating services by
/// name.
pub fn di_container() -> Project {
    let mut p = Project::new("di-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var Container = require('boxful');
var c = new Container();

class Database {
  connect() {
    return 'connected';
  }
}

class UserService {
  constructor() {
    this.tag = 'users';
  }
  list() {
    return ['ada', 'grace'];
  }
}

c.register('db', Database);
c.register('users', UserService);

var users = c.resolve('users');
var names = users.list();
module.exports = { container: c, names: names };
"#,
    );
    p.add_file(
        "node_modules/boxful/index.js",
        r#"module.exports = Container;

function Container() {
  this.factories = {};
  this.instances = {};
}

Container.prototype.register = function register(name, ctor) {
  this.factories[name] = ctor;
  return this;
};

Container.prototype.resolve = function resolve(name) {
  if (this.instances[name]) {
    return this.instances[name];
  }
  var Ctor = this.factories[name];
  var instance = new Ctor();
  this.instances[name] = instance;
  return instance;
};

Container.prototype.has = function has(name) {
  return !!this.factories[name];
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var app = require('../index');
var db = app.container.resolve('db');
db.connect();
"#,
    );
    p.add_vuln("CVE-SYN-0006", "node_modules/boxful/index.js", "resolve");
    p
}

/// A task queue where workers are registered per task type and invoked
/// through a computed lookup.
pub fn task_queue() -> Project {
    let mut p = Project::new("queue-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var Queue = require('workq');
var q = new Queue();

q.process('email', function sendEmail(job) {
  return 'sent:' + job.to;
});
q.process('resize', function resizeImage(job) {
  return 'resized:' + job.file;
});

q.push('email', { to: 'x@example.com' });
q.push('resize', { file: 'a.png' });
q.drain();
module.exports = q;
"#,
    );
    p.add_file(
        "node_modules/workq/index.js",
        r#"var EventEmitter = require('events');
var util = require('util');

module.exports = Queue;

function Queue() {
  EventEmitter.call(this);
  this.workers = {};
  this.jobs = [];
}

util.inherits(Queue, EventEmitter);

Queue.prototype.process = function process(type, worker) {
  this.workers[type] = worker;
  return this;
};

Queue.prototype.push = function push(type, payload) {
  this.jobs.push({ type: type, payload: payload });
  return this.jobs.length;
};

Queue.prototype.drain = function drain() {
  var results = [];
  while (this.jobs.length > 0) {
    var job = this.jobs.shift();
    var worker = this.workers[job.type];
    if (worker) {
      results.push(worker(job.payload));
    }
    this.emit('done', job.type);
  }
  return results;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var q = require('../index');
q.on('done', function onDone(type) { return type; });
q.push('email', { to: 'y@example.com' });
q.drain();
"#,
    );
    p
}

/// A template engine with helper functions looked up by name.
pub fn template_engine() -> Project {
    let mut p = Project::new("template-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var tpl = require('stencil');
tpl.helper('upper', function upperHelper(s) {
  return s.toUpperCase();
});
tpl.helper('trim', function trimHelper(s) {
  return s.trim();
});
var out = tpl.render('upper', ' hi ');
module.exports = { out: out };
"#,
    );
    p.add_file(
        "node_modules/stencil/index.js",
        r#"var helpers = {};
var builtin = require('./builtin');

Object.keys(builtin).forEach(function(name) {
  helpers[name] = builtin[name];
});

exports.helper = function registerHelper(name, fn) {
  helpers[name] = fn;
  return exports;
};

exports.render = function render(helperName, input) {
  var fn = helpers[helperName];
  return fn(input);
};

exports.list = function list() {
  return Object.keys(helpers);
};
"#,
    );
    p.add_file(
        "node_modules/stencil/builtin.js",
        r#"exports.lower = function lowerHelper(s) {
  return s.toLowerCase();
};
exports.length = function lengthHelper(s) {
  return s.length;
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var x = require('../index');
var tpl = require('stencil');
tpl.render('lower', 'ABC');
tpl.render('trim', '  y  ');
"#,
    );
    p
}

/// A REST client whose verb methods are generated from a list, returning
/// chainable request objects.
pub fn rest_client() -> Project {
    let mut p = Project::new("rest-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var rest = require('fetchling');
var client = rest.create('https://api.example.com');
var req = client.get('/users').header('accept', 'application/json');
var posted = client.post('/users').body({ name: 'ada' }).send();
module.exports = { client: client, posted: posted };
"#,
    );
    p.add_file(
        "node_modules/fetchling/index.js",
        r#"var http = require('http');
var VERBS = ['get', 'post', 'put', 'delete'];

exports.create = function create(base) {
  var client = { base: base };
  VERBS.forEach(function(verb) {
    client[verb] = function(path) {
      return new Request(verb, base + path);
    };
  });
  return client;
};

function Request(method, url) {
  this.method = method;
  this.url = url;
  this.headers = {};
}

Request.prototype.header = function header(name, value) {
  this.headers[name] = value;
  return this;
};

Request.prototype.body = function body(data) {
  this._body = data;
  return this;
};

Request.prototype.send = function send() {
  var req = http.request(this.url, function onResponse(res) {
    return res;
  });
  return { status: 200, request: this };
};
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var app = require('../index');
app.client.put('/users/1').send();
"#,
    );
    p.add_vuln("CVE-SYN-0007", "node_modules/fetchling/index.js", "send");
    p
}

/// A leveled logger where level methods are installed in a loop and the
/// level table is consulted dynamically.
pub fn logger_lib() -> Project {
    let mut p = Project::new("logger-app");
    p.test_driver = Some("test/driver.js".to_string());
    p.add_file(
        "index.js",
        r#"var logger = require('woodcut')({ level: 'info' });
logger.info('starting');
logger.warn('low disk');
logger.child('db').error('connection lost');
module.exports = logger;
"#,
    );
    p.add_file(
        "node_modules/woodcut/index.js",
        r#"var LEVELS = { trace: 10, debug: 20, info: 30, warn: 40, error: 50 };

module.exports = function createLogger(opts) {
  var threshold = LEVELS[(opts && opts.level) || 'info'];
  var logger = { records: [] };

  Object.keys(LEVELS).forEach(function(name) {
    logger[name] = function(msg) {
      if (LEVELS[name] >= threshold) {
        logger.records.push(name + ': ' + msg);
        write(name, msg);
      }
      return logger;
    };
  });

  logger.child = function child(tag) {
    var sub = module.exports({ level: 'trace' });
    sub.tag = tag;
    return sub;
  };

  return logger;
};

function write(level, msg) {
  console.log('[' + level + '] ' + msg);
}
"#,
    );
    p.add_file(
        "test/driver.js",
        r#"var logger = require('../index');
logger.debug('hidden');
logger.error('boom');
"#,
    );
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_patterns_parse() {
        for p in pattern_projects() {
            aji_parser::parse_project(&p)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", p.name));
        }
    }

    #[test]
    fn all_patterns_have_drivers_and_mains() {
        for p in pattern_projects() {
            assert!(p.file(&p.main).is_some(), "{} missing main", p.name);
            let d = p.test_driver.clone().unwrap();
            assert!(p.file(&d).is_some(), "{} missing driver", p.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = pattern_projects().iter().map(|p| p.name.clone()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn vulns_reference_existing_files() {
        for p in pattern_projects() {
            for v in &p.vulns {
                assert!(
                    p.file(&v.path).is_some(),
                    "{}: vuln path {} missing",
                    p.name,
                    v.path
                );
            }
        }
    }
}
