//! Benchmark corpus for the *aji* reproduction: hand-written pattern
//! projects embodying the dynamic-object idioms the paper identifies, plus
//! a deterministic generator that scales those idioms to the paper's
//! 141-project population.
//!
//! * [`pattern_projects`] — 14 hand-written multi-package projects, each
//!   with a test driver (for dynamic call graphs) and some with synthetic
//!   vulnerability annotations.
//! * [`generator::generate`] — seeded synthetic projects.
//! * [`table1_benchmarks`] — the 36-project subset with dynamic call
//!   graphs (Tables 1–3).
//! * [`full_population`] — all 141 benchmarks (Figures 4–7).
//!
//! # Example
//!
//! ```
//! let benchmarks = aji_corpus::table1_benchmarks();
//! assert_eq!(benchmarks.len(), 36);
//! let all = aji_corpus::full_population();
//! assert_eq!(all.len(), 141);
//! ```

#![warn(missing_docs)]

pub mod generator;
mod patterns;

pub use generator::{generate, generate_with_manifest, population_configs, GenConfig, InjectedTypo};
pub use patterns::pattern_projects;

use aji_ast::Project;

/// Base seed for the deterministic corpus population.
pub const CORPUS_SEED: u64 = 0x20240615;

/// The 36 benchmarks with dynamic call graphs (the corpus analogue of the
/// paper's Table 1): the 14 hand-written pattern projects plus 22
/// generated ones of increasing size.
pub fn table1_benchmarks() -> Vec<Project> {
    let mut out = pattern_projects();
    for cfg in population_configs(22, CORPUS_SEED) {
        out.push(generate(&cfg));
    }
    debug_assert_eq!(out.len(), 36);
    out
}

/// All 141 benchmarks (the corpus analogue of the paper's full benchmark
/// set used in Figures 4–7): the 36 of [`table1_benchmarks`] plus 105 more
/// generated projects.
pub fn full_population() -> Vec<Project> {
    let mut out = table1_benchmarks();
    for mut cfg in population_configs(105, CORPUS_SEED ^ 0x5EED) {
        cfg.name = format!("pop-{}", cfg.name);
        out.push(generate(&cfg));
    }
    debug_assert_eq!(out.len(), 141);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_counts() {
        assert_eq!(table1_benchmarks().len(), 36);
        assert_eq!(full_population().len(), 141);
    }

    #[test]
    fn population_names_unique() {
        let names: Vec<String> = full_population().iter().map(|p| p.name.clone()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn every_benchmark_parses() {
        for p in full_population() {
            aji_parser::parse_project(&p)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", p.name));
        }
    }

    #[test]
    fn table1_benchmarks_have_drivers() {
        for p in table1_benchmarks() {
            assert!(p.test_driver.is_some(), "{} has no driver", p.name);
        }
    }
}
