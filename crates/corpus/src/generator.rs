//! Seeded synthetic-project generator.
//!
//! Composes the dynamic-object idioms of the hand-written patterns
//! (method tables built in loops, mixin copying, event registries,
//! dynamic dispatch) into Node.js-style projects of parameterized size,
//! so the experiment harness can reproduce the paper's 141-project
//! population deterministically.

use aji_ast::Project;
use aji_support::Rng;
use std::fmt::Write;

/// Parameters of one generated project.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Project name.
    pub name: String,
    /// RNG seed (projects are fully determined by their config).
    pub seed: u64,
    /// Number of `node_modules` libraries.
    pub libs: usize,
    /// API methods per library.
    pub methods_per_lib: usize,
    /// Fraction of methods installed via dynamic property writes.
    pub dynamic_fraction: f64,
    /// Number of application modules.
    pub app_modules: usize,
    /// API calls per application module.
    pub calls_per_module: usize,
    /// Whether libraries assemble their API through a mixin helper.
    pub use_mixin: bool,
    /// Whether libraries inherit from `EventEmitter`.
    pub use_emitter: bool,
    /// Fraction of application entry points exercised by the test driver.
    pub driver_coverage: f64,
    /// Number of synthetic vulnerability annotations placed in libraries.
    pub vulns: usize,
    /// Fraction of app modules that expose a *parameter-dependent*
    /// dispatch (`lib[name](...)` with the name coming from the caller).
    /// These defeat approximate interpretation — the key is the proxy
    /// during forced execution — and keep recall below 100%, like the
    /// hard cases in the paper's Table 2.
    pub hard_dispatch_fraction: f64,
    /// Extra methods per library installed through *computed-key* dynamic
    /// writes inside a counting loop (`api['cw' + i] = fn`). The key is a
    /// string-concatenation expression — opaque to the static subset
    /// analysis, concrete under forced execution — so these calls are
    /// recoverable only through the `H_W` write hints (\[DPW\]).
    pub computed_writes: usize,
    /// Extra methods per library installed through `Object.defineProperty`
    /// descriptors: one callable *data* descriptor per slot, plus a getter
    /// *accessor* descriptor over the library's state object. Descriptor
    /// installs record dynamic writes during forced execution, exercising
    /// the `H_W` hint path through the property-definition builtin.
    pub accessor_methods: usize,
    /// Number of property-access **typos** injected into the test driver:
    /// each one is a static read of a misspelled library method name
    /// (edit distance 1 from a real method, guaranteed absent from every
    /// library's API). The injected defects are recorded in the manifest
    /// [`generate_with_manifest`] returns, which grades the `aji-quant`
    /// statistical finder. Reads of absent properties yield `undefined`
    /// without crashing, so the driver's coverage is unchanged.
    pub typo_injections: usize,
}

impl GenConfig {
    /// A small default configuration.
    pub fn small(name: impl Into<String>, seed: u64) -> Self {
        GenConfig {
            name: name.into(),
            seed,
            libs: 2,
            methods_per_lib: 4,
            dynamic_fraction: 0.5,
            app_modules: 2,
            calls_per_module: 4,
            use_mixin: false,
            use_emitter: false,
            driver_coverage: 0.6,
            vulns: 1,
            hard_dispatch_fraction: 0.0,
            computed_writes: 0,
            accessor_methods: 0,
            typo_injections: 0,
        }
    }
}

/// One injected property-access defect: the ground truth the `aji-quant`
/// anomaly finder is graded against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedTypo {
    /// File containing the misspelled access (always the test driver).
    pub path: String,
    /// Library index whose API object receives the access.
    pub lib: usize,
    /// The misspelled property name actually read.
    pub prop: String,
    /// The real method name the typo was derived from (edit distance 1).
    pub original: String,
}

/// Emits the computed-key and descriptor-based install blocks onto the
/// receiver named `recv` (the shapes behind [`GenConfig::computed_writes`]
/// and [`GenConfig::accessor_methods`]).
fn emit_dynamic_installs(src: &mut String, cfg: &GenConfig, li: usize, recv: &str, indent: &str) {
    if cfg.computed_writes > 0 {
        let n = cfg.computed_writes;
        let _ = writeln!(
            src,
            "{indent}for (var ci{li} = 0; ci{li} < {n}; ci{li} = ci{li} + 1) {{"
        );
        let _ = writeln!(
            src,
            "{indent}  {recv}['cw' + ci{li}] = function lib{li}_cw(x) {{ return track{li}('cw') + x; }};"
        );
        let _ = writeln!(src, "{indent}}}");
    }
    for k in 0..cfg.accessor_methods {
        let _ = writeln!(src, "{indent}Object.defineProperty({recv}, 'ds{k}', {{");
        let _ = writeln!(
            src,
            "{indent}  value: function lib{li}_ds{k}(x) {{ return track{li}('ds{k}') + x; }},"
        );
        let _ = writeln!(src, "{indent}  enumerable: true");
        let _ = writeln!(src, "{indent}}});");
    }
    if cfg.accessor_methods > 0 {
        let _ = writeln!(src, "{indent}Object.defineProperty({recv}, 'snapshot', {{");
        let _ = writeln!(
            src,
            "{indent}  get: function() {{ return state{li}.calls; }}"
        );
        let _ = writeln!(src, "{indent}}});");
    }
}

/// Mutates `name` into an edit-distance-1 misspelling: drop, double, or
/// replace the last character.
fn mutate_name(rng: &mut Rng, name: &str) -> String {
    let chars: Vec<char> = name.chars().collect();
    let last = *chars.last().unwrap_or(&'x');
    match rng.random_range(0..3usize) {
        0 if chars.len() > 1 => chars[..chars.len() - 1].iter().collect(),
        1 => {
            let mut s = name.to_string();
            s.push(last);
            s
        }
        _ => {
            let repl = ['x', 'z', 'q', 'k'][rng.random_range(0..4usize)];
            let mut s: String = chars[..chars.len() - 1].iter().collect();
            s.push(if repl == last { 'w' } else { repl });
            s
        }
    }
}

/// Generates a project from a configuration. Identical configs produce
/// identical projects.
pub fn generate(cfg: &GenConfig) -> Project {
    generate_with_manifest(cfg).0
}

/// [`generate`] plus the typo manifest: the list of injected
/// property-access defects ([`GenConfig::typo_injections`]), empty when
/// the knob is 0. Injection draws from its own seed-derived RNG stream,
/// so enabling it never perturbs the rest of the project.
pub fn generate_with_manifest(cfg: &GenConfig) -> (Project, Vec<InjectedTypo>) {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA11CE);
    let mut p = Project::new(cfg.name.clone());
    p.test_driver = Some("test/driver.js".to_string());

    if cfg.use_mixin {
        p.add_file(
            "node_modules/mixlib/index.js",
            "module.exports = function mix(dest, src) {\n\
             \x20 Object.getOwnPropertyNames(src).forEach(function(name) {\n\
             \x20   var d = Object.getOwnPropertyDescriptor(src, name);\n\
             \x20   Object.defineProperty(dest, name, d);\n\
             \x20 });\n\
             \x20 return dest;\n\
             };\n",
        );
    }

    // Libraries.
    let mut lib_methods: Vec<Vec<(String, bool)>> = Vec::new(); // (method, dynamic?)
    for li in 0..cfg.libs {
        let mut src = String::new();
        let mut methods = Vec::new();
        let n_dynamic = ((cfg.methods_per_lib as f64) * cfg.dynamic_fraction).round() as usize;
        let emitter = cfg.use_emitter && li % 2 == 0;

        let mut dyn_names = Vec::new();
        for mi in 0..cfg.methods_per_lib {
            let name = format!("op{mi}");
            let dynamic = mi < n_dynamic;
            if dynamic {
                dyn_names.push(name.clone());
            }
            methods.push((name, dynamic));
        }

        if emitter {
            let _ = writeln!(src, "var EventEmitter = require('events');");
        }
        if cfg.use_mixin {
            let _ = writeln!(src, "var mix = require('mixlib');");
        }
        let _ = writeln!(
            src,
            "var DYN_{li} = [{}];",
            dyn_names
                .iter()
                .map(|n| format!("'{n}'"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(src, "var state{li} = {{ calls: 0 }};");
        let _ = writeln!(src, "function track{li}(tag) {{");
        let _ = writeln!(src, "  state{li}.calls = state{li}.calls + 1;");
        let _ = writeln!(src, "  return tag + ':' + state{li}.calls;");
        let _ = writeln!(src, "}}");
        // A factory whose inner function only exists on a branch that
        // forced execution cannot take (the guard fails on the proxy),
        // keeping pre-analysis coverage below 100%.
        let _ = writeln!(src, "function makeFormatter{li}(sep) {{");
        let _ = writeln!(src, "  if (typeof sep === 'string') {{");
        let _ = writeln!(src, "    return function hiddenFormatter{li}(parts) {{");
        let _ = writeln!(src, "      return parts.join(sep);");
        let _ = writeln!(src, "    }};");
        let _ = writeln!(src, "  }}");
        let _ = writeln!(src, "  return null;");
        let _ = writeln!(src, "}}");

        if cfg.use_mixin {
            // API assembled on a proto object, mixed into an exported
            // factory product (the webframe pattern).
            let _ = writeln!(src, "var proto{li} = {{}};");
            for (name, dynamic) in &methods {
                if !dynamic {
                    let _ = writeln!(
                        src,
                        "proto{li}.{name} = function lib{li}_{name}(x) {{ return track{li}('{name}') + x; }};"
                    );
                }
            }
            let _ = writeln!(src, "DYN_{li}.forEach(function(name) {{");
            let _ = writeln!(
                src,
                "  proto{li}[name] = function lib{li}_dyn(x) {{ return track{li}(name) + x; }};"
            );
            let _ = writeln!(src, "}});");
            let _ = writeln!(src, "module.exports = function create{li}() {{");
            let _ = writeln!(src, "  var api = function() {{ return state{li}; }};");
            if emitter {
                let _ = writeln!(src, "  mix(api, EventEmitter.prototype);");
            }
            let _ = writeln!(src, "  mix(api, proto{li});");
            emit_dynamic_installs(&mut src, cfg, li, "api", "  ");
            let _ = writeln!(src, "  return api;");
            let _ = writeln!(src, "}};");
        } else {
            let _ = writeln!(src, "var api{li} = {{}};");
            for (name, dynamic) in &methods {
                if !dynamic {
                    let _ = writeln!(
                        src,
                        "api{li}.{name} = function lib{li}_{name}(x) {{ return track{li}('{name}') + x; }};"
                    );
                }
            }
            let _ = writeln!(src, "DYN_{li}.forEach(function(name) {{");
            let _ = writeln!(
                src,
                "  api{li}[name] = function lib{li}_dyn(x) {{ return track{li}(name) + x; }};"
            );
            let _ = writeln!(src, "}});");
            emit_dynamic_installs(&mut src, cfg, li, &format!("api{li}"), "");
            if emitter {
                let _ = writeln!(src, "api{li}.events = new EventEmitter();");
            }
            let _ = writeln!(src, "module.exports = api{li};");
        }
        p.add_file(format!("node_modules/lib{li}/index.js"), src);
        // The dynamically-installed extras are callable API like any other
        // method, so app modules (and the hard dispatchers' drivers) pick
        // from them too. The `snapshot` accessor is read-only and stays
        // out of the callable table.
        for ci in 0..cfg.computed_writes {
            methods.push((format!("cw{ci}"), true));
        }
        for k in 0..cfg.accessor_methods {
            methods.push((format!("ds{k}"), true));
        }
        lib_methods.push(methods);
    }

    // Application modules.
    let mut entry_points: Vec<(usize, String)> = Vec::new();
    let mut dispatchers: Vec<(usize, usize)> = Vec::new();
    for ai in 0..cfg.app_modules {
        let mut src = String::new();
        // Each app module uses 1-3 libraries.
        let nlibs = 1 + rng.random_range(0..cfg.libs.min(3));
        let mut used = Vec::new();
        for _ in 0..nlibs {
            let li = rng.random_range(0..cfg.libs);
            if !used.contains(&li) {
                used.push(li);
            }
        }
        for li in &used {
            let _ = writeln!(src, "var lib{li} = require('lib{li}');");
            if cfg.use_mixin {
                let _ = writeln!(src, "var api{li} = lib{li}();");
            }
        }
        let _ = writeln!(src, "exports.run{ai} = function appRun{ai}() {{");
        let _ = writeln!(src, "  var out = [];");
        for _ in 0..cfg.calls_per_module {
            let li = used[rng.random_range(0..used.len())];
            let (m, _) = &lib_methods[li][rng.random_range(0..lib_methods[li].len())];
            let recv = if cfg.use_mixin {
                format!("api{li}")
            } else {
                format!("lib{li}")
            };
            let _ = writeln!(src, "  out.push({recv}.{m}('a{ai}'));");
        }
        if cfg.accessor_methods > 0 {
            // Read through the getter accessor (no call edge: accessor
            // dispatch is not a source-level call site).
            let li = used[0];
            let recv = if cfg.use_mixin {
                format!("api{li}")
            } else {
                format!("lib{li}")
            };
            let _ = writeln!(src, "  out.push({recv}.snapshot);");
        }
        let _ = writeln!(src, "  return out;");
        let _ = writeln!(src, "}};");
        // A helper that is only reachable through the module's entry.
        let _ = writeln!(src, "exports.describe{ai} = function describe{ai}() {{");
        let _ = writeln!(src, "  return 'module {ai}';");
        let _ = writeln!(src, "}};");
        // Hard case: a dispatch whose property key comes from the caller.
        let hard = (rng.random_range(0..1000) as f64) < cfg.hard_dispatch_fraction * 1000.0;
        if hard {
            let li = used[0];
            let recv = if cfg.use_mixin {
                format!("api{li}")
            } else {
                format!("lib{li}")
            };
            let _ = writeln!(src, "exports.dispatch{ai} = function dispatch{ai}(name, arg) {{");
            let _ = writeln!(src, "  return {recv}[name](arg);");
            let _ = writeln!(src, "}};");
            dispatchers.push((ai, li));
        }
        p.add_file(format!("lib/mod{ai}.js"), src);
        entry_points.push((ai, format!("run{ai}")));
    }

    // Main module.
    let mut main = String::new();
    for (ai, _) in &entry_points {
        let _ = writeln!(main, "var mod{ai} = require('./lib/mod{ai}');");
    }
    let _ = writeln!(main, "exports.start = function start() {{");
    for (ai, entry) in &entry_points {
        let _ = writeln!(main, "  mod{ai}.{entry}();");
    }
    let _ = writeln!(main, "  return 'ok';");
    let _ = writeln!(main, "}};");
    // Run a couple of modules at load time, too.
    if let Some((ai, entry)) = entry_points.first() {
        let _ = writeln!(main, "mod{ai}.{entry}();");
    }
    p.add_file("index.js", main);

    // Test driver: exercises a fraction of the entry points.
    let mut driver = String::new();
    let _ = writeln!(driver, "var app = require('../index');");
    let covered = ((entry_points.len() as f64) * cfg.driver_coverage).ceil() as usize;
    for (ai, entry) in entry_points.iter().take(covered.max(1)) {
        let _ = writeln!(driver, "var m{ai} = require('../lib/mod{ai}');");
        let _ = writeln!(driver, "m{ai}.{entry}();");
    }
    // Exercise the hard dispatchers with concrete method names: the
    // dynamic call graph gets these edges, the hint-based analysis cannot.
    for (ai, li) in &dispatchers {
        let (m, _) = &lib_methods[*li][rng.random_range(0..lib_methods[*li].len())];
        let _ = writeln!(driver, "var d{ai} = require('../lib/mod{ai}');");
        let _ = writeln!(driver, "d{ai}.dispatch{ai}('{m}', 'probe');");
    }
    // Injected property-access typos (the finder's seeded ground truth).
    // Their own RNG stream keeps everything above byte-identical whether
    // the knob is 0 or not.
    let mut typos: Vec<InjectedTypo> = Vec::new();
    if cfg.typo_injections > 0 && cfg.libs > 0 {
        let mut trng = Rng::seed_from_u64(cfg.seed ^ 0x7AB0_5EED);
        for i in 0..cfg.typo_injections {
            let li = trng.random_range(0..cfg.libs);
            let (original, _) = lib_methods[li][trng.random_range(0..lib_methods[li].len())].clone();
            // Every library shares the same method-name space, so one
            // collision check covers them all.
            let taken = |name: &str| {
                lib_methods.iter().any(|ms| ms.iter().any(|(m, _)| m == name))
                    || name == "snapshot"
                    || typos.iter().any(|t| t.prop == name)
            };
            let mut prop = mutate_name(&mut trng, &original);
            if taken(&prop) {
                // Stay at edit distance 1: exhaust the other single-edit
                // mutations before the unbounded (distance-growing)
                // fallback, which only a pathological method namespace
                // can reach.
                let chars: Vec<char> = original.chars().collect();
                let stem: String = chars[..chars.len() - 1].iter().collect();
                let mut alts = vec![stem.clone(), format!("{original}{}", chars[chars.len() - 1])];
                for ch in ['x', 'z', 'q', 'k', 'w'] {
                    alts.push(format!("{original}{ch}"));
                    alts.push(format!("{stem}{ch}"));
                }
                if let Some(alt) = alts
                    .into_iter()
                    .find(|a| !a.is_empty() && a != &original && !taken(a))
                {
                    prop = alt;
                }
                while taken(&prop) {
                    prop.push('x');
                }
            }
            let _ = writeln!(driver, "var tq{i} = require('lib{li}');");
            let recv = if cfg.use_mixin {
                let _ = writeln!(driver, "var tr{i} = tq{i}();");
                format!("tr{i}")
            } else {
                format!("tq{i}")
            };
            let _ = writeln!(driver, "var typo{i} = {recv}.{prop};");
            typos.push(InjectedTypo {
                path: "test/driver.js".to_string(),
                lib: li,
                prop,
                original,
            });
        }
    }
    p.add_file("test/driver.js", driver);

    // Vulnerability annotations on library track helpers.
    for vi in 0..cfg.vulns.min(cfg.libs) {
        p.add_vuln(
            format!("CVE-GEN-{:04}", cfg.seed % 10_000 + vi as u64),
            format!("node_modules/lib{vi}/index.js"),
            format!("track{vi}"),
        );
    }
    (p, typos)
}

/// The deterministic configurations of the generated share of the
/// 141-project population (the hand-written patterns provide the rest).
pub fn population_configs(count: usize, base_seed: u64) -> Vec<GenConfig> {
    let mut rng = Rng::seed_from_u64(base_seed);
    // The computed-write / accessor-descriptor weights draw from their own
    // seed-derived stream so adding them did not perturb the draw order —
    // and hence the values — of the pre-existing fields.
    let mut wrng = Rng::seed_from_u64(base_seed ^ 0x5EED_CAFE);
    (0..count)
        .map(|i| {
            let size_class = i % 4;
            let (libs, methods, mods) = match size_class {
                0 => (2, 4, 2),
                1 => (4, 8, 4),
                2 => (7, 12, 8),
                _ => (12, 16, 14),
            };
            GenConfig {
                name: format!("gen-{i:03}"),
                seed: base_seed.wrapping_add(i as u64 * 7919),
                libs: libs + rng.random_range(0..3),
                methods_per_lib: methods + rng.random_range(0..5),
                dynamic_fraction: 0.3 + rng.random_range(0..5) as f64 * 0.1,
                app_modules: mods + rng.random_range(0..3),
                calls_per_module: 3 + rng.random_range(0..5),
                use_mixin: i % 3 == 0,
                use_emitter: i % 4 == 1,
                driver_coverage: 0.4 + rng.random_range(0..5) as f64 * 0.1,
                vulns: rng.random_range(0..4),
                hard_dispatch_fraction: match i % 5 {
                    0 => 0.0,
                    1 => 0.15,
                    2 => 0.3,
                    3 => 0.5,
                    _ => 0.05,
                },
                computed_writes: wrng.random_range(0..3),
                accessor_methods: wrng.random_range(0..3),
                // Population projects carry no seeded defects; aji-quant
                // sets the knob explicitly on its evaluation corpus.
                typo_injections: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::small("det", 42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.path, fb.path);
            assert_eq!(fa.src, fb.src);
        }
    }

    /// Pins the exact byte stream the generator produces for one fixed
    /// seed. Within-process determinism alone would not catch a silent
    /// change to the PRNG algorithm or to draw order, which would
    /// re-shuffle the whole 141-project population between versions.
    #[test]
    fn generation_fingerprint_is_stable() {
        let cfg = GenConfig::small("fingerprint", 42);
        let p = generate(&cfg);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in &p.files {
            for b in f.path.bytes().chain([0u8]).chain(f.src.bytes()).chain([0u8]) {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        assert_eq!(h, 0xeca6_03e2_f631_9f35, "generator output changed for a fixed seed");
    }

    #[test]
    fn generated_projects_parse() {
        for (i, cfg) in population_configs(8, 1234).iter().enumerate() {
            let p = generate(cfg);
            aji_parser::parse_project(&p)
                .unwrap_or_else(|e| panic!("config {i} failed to parse: {e}"));
        }
    }

    #[test]
    fn mixin_variant_parses() {
        let mut cfg = GenConfig::small("mix", 7);
        cfg.use_mixin = true;
        cfg.use_emitter = true;
        let p = generate(&cfg);
        aji_parser::parse_project(&p).unwrap();
        assert!(p.file("node_modules/mixlib/index.js").is_some());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::small("a", 1));
        let b = generate(&GenConfig::small("b", 2));
        let sa: String = a.files.iter().map(|f| f.src.clone()).collect();
        let sb: String = b.files.iter().map(|f| f.src.clone()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn population_sizes_vary() {
        let cfgs = population_configs(12, 99);
        let min = cfgs.iter().map(|c| c.libs).min().unwrap();
        let max = cfgs.iter().map(|c| c.libs).max().unwrap();
        assert!(max > min);
    }

    #[test]
    fn computed_and_accessor_shapes_parse_in_both_layouts() {
        let mut cfg = GenConfig::small("shapes", 11);
        cfg.computed_writes = 2;
        cfg.accessor_methods = 2;
        let p = generate(&cfg);
        aji_parser::parse_project(&p).unwrap();
        let lib0 = p.file("node_modules/lib0/index.js").unwrap();
        assert!(lib0.src.contains("['cw' + ci0]"), "computed-key loop:\n{}", lib0.src);
        assert!(lib0.src.contains("Object.defineProperty(api0, 'ds0'"), "{}", lib0.src);
        assert!(lib0.src.contains("get: function()"), "accessor descriptor:\n{}", lib0.src);
        // App modules call the extras and read the accessor.
        let mods: String = p
            .files
            .iter()
            .filter(|f| f.path.starts_with("lib/"))
            .map(|f| f.src.clone())
            .collect();
        assert!(mods.contains(".snapshot"), "accessor read:\n{mods}");

        cfg.use_mixin = true;
        let p = generate(&cfg);
        aji_parser::parse_project(&p).unwrap();
        let lib0 = p.file("node_modules/lib0/index.js").unwrap();
        assert!(
            lib0.src.contains("Object.defineProperty(api, 'ds0'"),
            "factory-local installs:\n{}",
            lib0.src
        );
    }

    #[test]
    fn new_shape_weights_do_not_disturb_existing_population_fields() {
        // The weights draw from a separate stream: the pre-existing fields
        // must be exactly what they were before the fields existed.
        let cfgs = population_configs(6, 777);
        let again = population_configs(6, 777);
        for (a, b) in cfgs.iter().zip(&again) {
            assert_eq!(a.libs, b.libs);
            assert_eq!(a.computed_writes, b.computed_writes);
            assert_eq!(a.accessor_methods, b.accessor_methods);
        }
        assert!(
            cfgs.iter().any(|c| c.computed_writes > 0),
            "some configs must exercise computed writes"
        );
        assert!(
            cfgs.iter().any(|c| c.accessor_methods > 0),
            "some configs must exercise descriptors"
        );
    }

    #[test]
    fn typo_injection_records_manifest_and_parses() {
        for mixin in [false, true] {
            let mut cfg = GenConfig::small("typo", 21);
            cfg.typo_injections = 3;
            cfg.use_mixin = mixin;
            let (p, typos) = generate_with_manifest(&cfg);
            aji_parser::parse_project(&p).unwrap();
            assert_eq!(typos.len(), 3, "mixin={mixin}");
            let driver = p.file("test/driver.js").unwrap();
            for t in &typos {
                assert_eq!(t.path, "test/driver.js");
                // The misspelling is read in the driver…
                assert!(
                    driver.src.contains(&format!(".{};", t.prop)),
                    "driver must read {}:\n{}",
                    t.prop,
                    driver.src
                );
                // …and absent from every library source (the real method
                // is present in the typo'd library).
                for li in 0..cfg.libs {
                    let lib = p.file(&format!("node_modules/lib{li}/index.js")).unwrap();
                    assert!(
                        !lib.src.contains(&format!("'{}'", t.prop))
                            && !lib.src.contains(&format!(".{} ", t.prop)),
                        "typo {} leaked into lib{li}",
                        t.prop
                    );
                }
                assert_ne!(t.prop, t.original);
                assert!(p
                    .file(&format!("node_modules/lib{}/index.js", t.lib))
                    .unwrap()
                    .src
                    .contains(&t.original));
            }
            // Deterministic: same config, same manifest and bytes.
            let (p2, typos2) = generate_with_manifest(&cfg);
            assert_eq!(typos, typos2);
            assert_eq!(driver.src, p2.file("test/driver.js").unwrap().src);
        }
    }

    #[test]
    fn typo_knob_off_leaves_project_untouched() {
        let cfg = GenConfig::small("typo-off", 21);
        let mut on = cfg.clone();
        on.typo_injections = 2;
        let base = generate(&cfg);
        let (seeded, typos) = generate_with_manifest(&on);
        assert_eq!(typos.len(), 2);
        // Every file except the driver is byte-identical; the driver only
        // gains the appended typo reads.
        for f in &base.files {
            let other = seeded.file(&f.path).unwrap();
            if f.path == "test/driver.js" {
                assert!(other.src.starts_with(&f.src), "typo reads must append");
            } else {
                assert_eq!(f.src, other.src, "{} must be unchanged", f.path);
            }
        }
    }

    #[test]
    fn driver_exists_and_vulns_valid() {
        let cfg = GenConfig {
            vulns: 2,
            ..GenConfig::small("v", 5)
        };
        let p = generate(&cfg);
        assert!(p.file("test/driver.js").is_some());
        for v in &p.vulns {
            assert!(p.file(&v.path).is_some());
            assert!(p.file(&v.path).unwrap().src.contains(&v.function));
        }
    }
}
