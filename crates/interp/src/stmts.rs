//! Statement execution and declaration hoisting.

use crate::env::{self, Scope, ScopeKind, ScopeRef};
use crate::error::{BudgetKind, Flow, JsError};
use crate::heap::ObjKind;
use crate::machine::Interp;
use crate::value::Value;
use aji_ast::ast::*;

impl Interp {
    /// Hoists declarations for a statement list about to execute in
    /// `scope`: `var` names to the nearest function scope, function
    /// declarations (fully initialized) and `let`/`const`/`class` names
    /// into `scope` itself.
    pub(crate) fn hoist(&mut self, stmts: &[Stmt], scope: &ScopeRef) -> Result<(), JsError> {
        // 1. var hoisting (recursive, not entering nested functions).
        let mut var_names = Vec::new();
        collect_var_names(stmts, &mut var_names);
        let target = env::hoist_target(scope);
        {
            let mut t = target.borrow_mut();
            for name in var_names {
                if !t.has_own(&name) {
                    t.declare(name.as_str(), Value::Undefined);
                }
            }
        }
        // 2. Function declarations at this statement-list level.
        for s in stmts {
            if let StmtKind::FuncDecl(f) = &s.kind {
                let v = self.make_closure(f, scope);
                if let Some(name) = &f.name {
                    scope.borrow_mut().declare(name.as_str(), v);
                }
            }
        }
        // 3. Lexical declarations (initialized to undefined; TDZ is not
        // modeled).
        for s in stmts {
            match &s.kind {
                StmtKind::VarDecl(d) if d.kind != VarKind::Var => {
                    let mut names = Vec::new();
                    for decl in &d.decls {
                        collect_pattern_names(&decl.name, &mut names);
                    }
                    let mut b = scope.borrow_mut();
                    for n in names {
                        b.declare(n.as_str(), Value::Undefined);
                    }
                }
                StmtKind::ClassDecl(c) => {
                    if let Some(n) = &c.name {
                        scope.borrow_mut().declare(n.as_str(), Value::Undefined);
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Executes one statement.
    pub(crate) fn exec_stmt(&mut self, s: &Stmt, scope: &ScopeRef) -> Result<Flow, JsError> {
        self.step()?;
        match &s.kind {
            StmtKind::Expr(e) => {
                self.eval_expr(e, scope)?;
                Ok(Flow::Normal)
            }
            StmtKind::VarDecl(d) => {
                self.exec_var_decl(d, scope)?;
                Ok(Flow::Normal)
            }
            StmtKind::FuncDecl(_) => Ok(Flow::Normal), // handled by hoisting
            StmtKind::ClassDecl(c) => {
                let v = self.eval_class(c, scope)?;
                if let Some(name) = &c.name {
                    env::assign(scope, name, v);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval_expr(e, scope)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::If { test, cons, alt } => {
                let t = self.eval_expr(test, scope)?;
                if self.truthy(&t) {
                    self.exec_stmt(cons, scope)
                } else if let Some(alt) = alt {
                    self.exec_stmt(alt, scope)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { test, body } => self.exec_loop(scope, None, |i, sc| {
                let t = i.eval_expr(test, sc)?;
                if !i.truthy(&t) {
                    return Ok(LoopStep::Done);
                }
                Ok(LoopStep::Body(body))
            }),
            StmtKind::DoWhile { body, test } => {
                let mut first = true;
                self.exec_loop(scope, None, |i, sc| {
                    if !first {
                        let t = i.eval_expr(test, sc)?;
                        if !i.truthy(&t) {
                            return Ok(LoopStep::Done);
                        }
                    }
                    first = false;
                    Ok(LoopStep::Body(body))
                })
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => {
                let loop_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
                match init {
                    Some(ForInit::VarDecl(d)) => {
                        if d.kind != VarKind::Var {
                            let mut names = Vec::new();
                            for decl in &d.decls {
                                collect_pattern_names(&decl.name, &mut names);
                            }
                            let mut b = loop_scope.borrow_mut();
                            for n in names {
                                b.declare(n.as_str(), Value::Undefined);
                            }
                        }
                        self.exec_var_decl(d, &loop_scope)?;
                    }
                    Some(ForInit::Expr(e)) => {
                        self.eval_expr(e, &loop_scope)?;
                    }
                    None => {}
                }
                let mut started = false;
                self.exec_loop(&loop_scope, None, |i, sc| {
                    if started {
                        if let Some(u) = update {
                            i.eval_expr(u, sc)?;
                        }
                    }
                    started = true;
                    if let Some(t) = test {
                        let tv = i.eval_expr(t, sc)?;
                        if !i.truthy(&tv) {
                            return Ok(LoopStep::Done);
                        }
                    }
                    Ok(LoopStep::Body(body))
                })
            }
            StmtKind::ForIn { head, obj, body } => {
                let o = self.eval_expr(obj, scope)?;
                let keys = self.enumerate_keys(&o);
                let mut iter = keys.into_iter();
                self.exec_loop(scope, None, |i, sc| {
                    let Some(k) = iter.next() else {
                        return Ok(LoopStep::Done);
                    };
                    let iter_scope = Scope::new(ScopeKind::Block, Some(sc.clone()));
                    i.bind_for_head(head, Value::str(&k), &iter_scope)?;
                    Ok(LoopStep::BodyIn(body, iter_scope))
                })
            }
            StmtKind::ForOf { head, iter, body } => {
                let o = self.eval_expr(iter, scope)?;
                let values = self.iterate_values(&o)?;
                let mut iter_vals = values.into_iter();
                self.exec_loop(scope, None, |i, sc| {
                    let Some(v) = iter_vals.next() else {
                        return Ok(LoopStep::Done);
                    };
                    let iter_scope = Scope::new(ScopeKind::Block, Some(sc.clone()));
                    i.bind_for_head(head, v, &iter_scope)?;
                    Ok(LoopStep::BodyIn(body, iter_scope))
                })
            }
            StmtKind::Block(body) => {
                let block_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
                self.hoist(body, &block_scope)?;
                for s in body {
                    match self.exec_stmt(s, &block_scope)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Empty | StmtKind::Debugger => Ok(Flow::Normal),
            StmtKind::Break(l) => Ok(Flow::Break(l.clone())),
            StmtKind::Continue(l) => Ok(Flow::Continue(l.clone())),
            StmtKind::Labeled { label, body } => {
                let flow = self.exec_labeled(label, body, scope)?;
                Ok(flow)
            }
            StmtKind::Switch { disc, cases } => self.exec_switch(disc, cases, scope),
            StmtKind::Throw(e) => {
                let v = self.eval_expr(e, scope)?;
                Err(JsError::Thrown(v))
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                let mut outcome = (|| -> Result<Flow, JsError> {
                    let try_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
                    self.hoist(block, &try_scope)?;
                    for s in block {
                        match self.exec_stmt(s, &try_scope)? {
                            Flow::Normal => {}
                            other => return Ok(other),
                        }
                    }
                    Ok(Flow::Normal)
                })();
                if let Err(err) = &outcome {
                    if err.is_catchable() {
                        if let Some(c) = catch {
                            let caught = match err {
                                JsError::Thrown(v) => v.clone(),
                                _ => unreachable!(),
                            };
                            let catch_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
                            if let Some(p) = &c.param {
                                self.bind_pattern(p, caught, &catch_scope, true)?;
                            }
                            outcome = (|| -> Result<Flow, JsError> {
                                self.hoist(&c.body, &catch_scope)?;
                                for s in &c.body {
                                    match self.exec_stmt(s, &catch_scope)? {
                                        Flow::Normal => {}
                                        other => return Ok(other),
                                    }
                                }
                                Ok(Flow::Normal)
                            })();
                        }
                    }
                }
                if let Some(fin) = finally {
                    let fin_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
                    self.hoist(fin, &fin_scope)?;
                    for s in fin {
                        match self.exec_stmt(s, &fin_scope)? {
                            Flow::Normal => {}
                            // An abnormal completion in `finally` overrides
                            // the try/catch outcome.
                            other => return Ok(other),
                        }
                    }
                }
                outcome
            }
        }
    }

    fn exec_var_decl(&mut self, d: &VarDecl, scope: &ScopeRef) -> Result<(), JsError> {
        for decl in &d.decls {
            let v = match &decl.init {
                Some(e) => self.eval_expr(e, scope)?,
                None => Value::Undefined,
            };
            match d.kind {
                VarKind::Var => {
                    // The name was hoisted; write through the scope chain.
                    if decl.init.is_some() || !pattern_names_bound(&decl.name, scope) {
                        self.bind_pattern(&decl.name, v, scope, false)?;
                    }
                }
                VarKind::Let | VarKind::Const => {
                    self.bind_pattern(&decl.name, v, scope, true)?;
                }
            }
        }
        Ok(())
    }

    fn exec_labeled(
        &mut self,
        label: &str,
        body: &Stmt,
        scope: &ScopeRef,
    ) -> Result<Flow, JsError> {
        // Loops need to see the label so `continue label` works; we pass it
        // via a field consumed by exec_loop.
        self.pending_label = Some(label.to_string());
        let flow = self.exec_stmt(body, scope);
        self.pending_label = None;
        match flow? {
            Flow::Break(Some(l)) if l == label => Ok(Flow::Normal),
            Flow::Continue(Some(l)) if l == label => Ok(Flow::Normal),
            other => Ok(other),
        }
    }

    fn exec_switch(
        &mut self,
        disc: &Expr,
        cases: &[SwitchCase],
        scope: &ScopeRef,
    ) -> Result<Flow, JsError> {
        let d = self.eval_expr(disc, scope)?;
        let switch_scope = Scope::new(ScopeKind::Block, Some(scope.clone()));
        // Find the first matching case (or default).
        let mut start = None;
        for (i, c) in cases.iter().enumerate() {
            if let Some(t) = &c.test {
                let tv = self.eval_expr(t, &switch_scope)?;
                if d.strict_eq(&tv) {
                    start = Some(i);
                    break;
                }
            }
        }
        if start.is_none() {
            start = cases.iter().position(|c| c.test.is_none());
        }
        let Some(start) = start else {
            return Ok(Flow::Normal);
        };
        for c in &cases[start..] {
            self.hoist(&c.body, &switch_scope)?;
            for s in &c.body {
                match self.exec_stmt(s, &switch_scope)? {
                    Flow::Normal => {}
                    Flow::Break(None) => return Ok(Flow::Normal),
                    other => return Ok(other),
                }
            }
        }
        Ok(Flow::Normal)
    }

    /// Shared loop driver with iteration budgets and label handling.
    fn exec_loop<'b, F>(
        &mut self,
        scope: &ScopeRef,
        _label: Option<&str>,
        mut step: F,
    ) -> Result<Flow, JsError>
    where
        F: FnMut(&mut Interp, &ScopeRef) -> Result<LoopStep<'b>, JsError>,
    {
        let label = self.pending_label.take();
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            if iters > self.opts.max_loop_iters {
                return Err(self.trip_budget(BudgetKind::Loop));
            }
            let (body, body_scope) = match step(self, scope)? {
                LoopStep::Done => return Ok(Flow::Normal),
                LoopStep::Body(b) => (b, scope.clone()),
                LoopStep::BodyIn(b, s) => (b, s),
            };
            match self.exec_stmt(body, &body_scope)? {
                Flow::Normal => {}
                Flow::Break(None) => return Ok(Flow::Normal),
                Flow::Break(Some(l)) => {
                    if label.as_deref() == Some(l.as_str()) {
                        return Ok(Flow::Normal);
                    }
                    return Ok(Flow::Break(Some(l)));
                }
                Flow::Continue(None) => {}
                Flow::Continue(Some(l)) => {
                    if label.as_deref() == Some(l.as_str()) {
                        continue;
                    }
                    return Ok(Flow::Continue(Some(l)));
                }
                Flow::Return(v) => return Ok(Flow::Return(v)),
            }
        }
    }

    fn bind_for_head(
        &mut self,
        head: &ForHead,
        v: Value,
        scope: &ScopeRef,
    ) -> Result<(), JsError> {
        match head {
            ForHead::VarDecl { kind, pat } => {
                let declare = *kind != VarKind::Var;
                if !declare {
                    // var heads write through to the hoisted binding.
                    self.bind_pattern(pat, v, scope, false)?;
                } else {
                    self.bind_pattern(pat, v, scope, true)?;
                }
                Ok(())
            }
            ForHead::Target(e) => {
                self.assign_to_expr(e, v, scope)?;
                Ok(())
            }
        }
    }

    /// Keys enumerated by `for-in` (own + inherited enumerable, deduped).
    pub(crate) fn enumerate_keys(&self, v: &Value) -> Vec<std::rc::Rc<str>> {
        let Some(id) = v.as_obj() else {
            return Vec::new();
        };
        if matches!(self.heap.get(id).kind, ObjKind::Proxy) {
            return Vec::new();
        }
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(o) = cur {
            for k in self.heap.own_enumerable_keys(o) {
                if seen.insert(k.to_string()) {
                    out.push(k);
                }
            }
            cur = self.heap.get(o).proto;
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        out
    }

    /// Values iterated by `for-of` / spread (arrays, strings, array-likes).
    pub(crate) fn iterate_values(&mut self, v: &Value) -> Result<Vec<Value>, JsError> {
        match v {
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
            Value::Obj(id) => {
                let obj = self.heap.get(*id);
                match &obj.kind {
                    ObjKind::Array(elems) => Ok(elems.clone()),
                    ObjKind::Proxy => Ok(Vec::new()),
                    _ => {
                        // Array-like: use `length` + indices.
                        let len = match self.get_property(v.clone(), "length", None)? {
                            Value::Num(n) if n.is_finite() && n >= 0.0 => n as usize,
                            _ => {
                                if self.opts.approx {
                                    return Ok(Vec::new());
                                }
                                return Err(self
                                    .throw_error("TypeError", "value is not iterable"));
                            }
                        };
                        let mut out = Vec::with_capacity(len.min(4096));
                        for i in 0..len.min(100_000) {
                            out.push(self.get_property(
                                v.clone(),
                                &i.to_string(),
                                None,
                            )?);
                        }
                        Ok(out)
                    }
                }
            }
            _ => {
                if self.opts.approx {
                    Ok(Vec::new())
                } else {
                    Err(self.throw_error("TypeError", "value is not iterable"))
                }
            }
        }
    }
}

enum LoopStep<'a> {
    Done,
    Body(&'a Stmt),
    BodyIn(&'a Stmt, ScopeRef),
}

/// Collects `var`-declared names without entering nested functions.
fn collect_var_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        collect_var_names_stmt(s, out);
    }
}

fn collect_var_names_stmt(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::VarDecl(d) if d.kind == VarKind::Var => {
            for decl in &d.decls {
                collect_pattern_names(&decl.name, out);
            }
        }
        StmtKind::VarDecl(_) => {}
        StmtKind::If { cons, alt, .. } => {
            collect_var_names_stmt(cons, out);
            if let Some(a) = alt {
                collect_var_names_stmt(a, out);
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            collect_var_names_stmt(body, out)
        }
        StmtKind::For { init, body, .. } => {
            if let Some(ForInit::VarDecl(d)) = init {
                if d.kind == VarKind::Var {
                    for decl in &d.decls {
                        collect_pattern_names(&decl.name, out);
                    }
                }
            }
            collect_var_names_stmt(body, out);
        }
        StmtKind::ForIn { head, body, .. } | StmtKind::ForOf { head, body, .. } => {
            if let ForHead::VarDecl {
                kind: VarKind::Var,
                pat,
            } = head
            {
                collect_pattern_names(pat, out);
            }
            collect_var_names_stmt(body, out);
        }
        StmtKind::Block(body) => collect_var_names(body, out),
        StmtKind::Labeled { body, .. } => collect_var_names_stmt(body, out),
        StmtKind::Switch { cases, .. } => {
            for c in cases {
                collect_var_names(&c.body, out);
            }
        }
        StmtKind::Try {
            block,
            catch,
            finally,
        } => {
            collect_var_names(block, out);
            if let Some(c) = catch {
                collect_var_names(&c.body, out);
            }
            if let Some(f) = finally {
                collect_var_names(f, out);
            }
        }
        _ => {}
    }
}

/// Collects the identifiers bound by a pattern.
pub(crate) fn collect_pattern_names(p: &Pattern, out: &mut Vec<String>) {
    match &p.kind {
        PatternKind::Ident(n) => out.push(n.clone()),
        PatternKind::Array { elems, rest } => {
            for e in elems.iter().flatten() {
                collect_pattern_names(e, out);
            }
            if let Some(r) = rest {
                collect_pattern_names(r, out);
            }
        }
        PatternKind::Object { props, rest } => {
            for pr in props {
                collect_pattern_names(&pr.value, out);
            }
            if let Some(r) = rest {
                collect_pattern_names(r, out);
            }
        }
        PatternKind::Assign { pat, .. } => collect_pattern_names(pat, out),
    }
}

fn pattern_names_bound(p: &Pattern, scope: &ScopeRef) -> bool {
    let mut names = Vec::new();
    collect_pattern_names(p, &mut names);
    names
        .iter()
        .all(|n| crate::env::lookup(scope, n).is_some())
}
