//! JavaScript value conversions and operator semantics that do not need
//! heap access (numeric coercions, bit operations, string arithmetic).

use crate::value::{num_to_string, str_to_num, Value};

/// `ToNumber` for primitive values; objects must be converted to a
/// primitive by the caller first (the interpreter does that with
/// `toString`/`valueOf` lookups).
pub fn prim_to_number(v: &Value) -> f64 {
    match v {
        Value::Undefined => f64::NAN,
        Value::Null => 0.0,
        Value::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Value::Num(n) => *n,
        Value::Str(s) => str_to_num(s),
        Value::Obj(_) => f64::NAN,
    }
}

/// `ToString` for primitive values.
pub fn prim_to_string(v: &Value) -> String {
    match v {
        Value::Undefined => "undefined".to_string(),
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => num_to_string(*n),
        Value::Str(s) => s.to_string(),
        Value::Obj(_) => "[object Object]".to_string(),
    }
}

/// `ToInt32` (for bitwise operators).
pub fn to_int32(n: f64) -> i32 {
    if !n.is_finite() || n == 0.0 {
        return 0;
    }
    let m = n.trunc() as i64;
    (m & 0xffff_ffff) as u32 as i32
}

/// `ToUint32` (for `>>>`).
pub fn to_uint32(n: f64) -> u32 {
    to_int32(n) as u32
}

/// Loose equality (`==`) over primitives. Object-vs-primitive cases must
/// be reduced by the caller (via `ToPrimitive`) before calling this.
pub fn prim_loose_eq(a: &Value, b: &Value) -> bool {
    use Value::*;
    match (a, b) {
        (Undefined | Null, Undefined | Null) => true,
        (Num(x), Num(y)) => x == y,
        (Str(x), Str(y)) => x == y,
        (Bool(x), Bool(y)) => x == y,
        (Num(x), Str(y)) => *x == str_to_num(y),
        (Str(x), Num(y)) => str_to_num(x) == *y,
        (Bool(_), _) => prim_loose_eq(&Num(prim_to_number(a)), b),
        (_, Bool(_)) => prim_loose_eq(a, &Num(prim_to_number(b))),
        (Obj(x), Obj(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_number_conversions() {
        assert!(prim_to_number(&Value::Undefined).is_nan());
        assert_eq!(prim_to_number(&Value::Null), 0.0);
        assert_eq!(prim_to_number(&Value::Bool(true)), 1.0);
        assert_eq!(prim_to_number(&Value::str("8")), 8.0);
    }

    #[test]
    fn int32_wrapping() {
        assert_eq!(to_int32(0.0), 0);
        assert_eq!(to_int32(1.9), 1);
        assert_eq!(to_int32(-1.0), -1);
        assert_eq!(to_int32(4294967296.0), 0);
        assert_eq!(to_int32(4294967297.0), 1);
        assert_eq!(to_int32(2147483648.0), -2147483648);
        assert_eq!(to_int32(f64::NAN), 0);
        assert_eq!(to_uint32(-1.0), 4294967295);
    }

    #[test]
    fn loose_equality() {
        assert!(prim_loose_eq(&Value::Null, &Value::Undefined));
        assert!(prim_loose_eq(&Value::Num(1.0), &Value::str("1")));
        assert!(prim_loose_eq(&Value::Bool(true), &Value::Num(1.0)));
        assert!(prim_loose_eq(&Value::Bool(false), &Value::str("0")));
        assert!(!prim_loose_eq(&Value::Num(1.0), &Value::Num(2.0)));
        assert!(!prim_loose_eq(&Value::Null, &Value::Num(0.0)));
    }
}
