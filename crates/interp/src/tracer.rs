//! Instrumentation hooks.
//!
//! The interpreter reports the events both analyses need through a
//! [`Tracer`]: the dynamic call-graph recorder (the NodeProf stand-in used
//! for ground truth) and the approximate-interpretation pre-analysis (which
//! records the paper's read/write hints) are both tracers.

use crate::value::Value;
use aji_ast::{Loc, NodeId};
use std::collections::BTreeSet;

/// Receiver of runtime events. All methods default to no-ops.
pub trait Tracer {
    /// An object (or array) literal was evaluated; `loc` is its allocation
    /// site. `None` while executing dynamically generated (`eval`) code.
    fn on_alloc(&mut self, _loc: Option<Loc>) {}

    /// A function definition was evaluated into a function value
    /// (`value` is the closure object, usable for later forced calls).
    fn on_function_def(&mut self, _def: NodeId, _loc: Option<Loc>, _value: &Value) {}

    /// A call from `call_site` is about to enter the function defined at
    /// `callee_loc` (with definition node `callee_def`).
    fn on_call(&mut self, _call_site: Option<Loc>, _callee_def: NodeId, _callee_loc: Option<Loc>) {}

    /// A dynamic property read `E[E']` at `op_loc` produced `result`,
    /// which (if it is an object) was born at `result_loc`.
    fn on_dynamic_read(&mut self, _op_loc: Loc, _result: &Value, _result_loc: Option<Loc>) {}

    /// A dynamic property write `E[E'] = E''` (or a
    /// `Object.defineProperty`-family call) stored an object born at
    /// `value_loc` into property `prop` of an object born at `obj_loc`.
    /// `op_loc` is the location of the write operation itself (unused by
    /// the relational \[DPW\] rule, needed by the non-relational ablation).
    fn on_dynamic_write(
        &mut self,
        _op_loc: Option<Loc>,
        _obj_loc: Option<Loc>,
        _prop: &str,
        _value_loc: Option<Loc>,
        _value: &Value,
    ) {
    }

    /// A dynamic property read at `op_loc` whose *base* was the unknown
    /// proxy `p*` but whose key was the concrete string `key` (§6's
    /// "unknown function arguments" extension).
    fn on_proxy_base_read(&mut self, _op_loc: Loc, _key: &str) {}

    /// A static property write `E.p = E''` stored `value` (used by the
    /// approximate interpreter to maintain its `this` map).
    fn on_static_write(&mut self, _obj: &Value, _prop: &str, _value: &Value) {}

    /// `require(name)` was evaluated at `site`, resolving to `resolved`
    /// (a project file path) if resolution succeeded.
    fn on_require(&mut self, _site: Loc, _name: &str, _resolved: Option<&str>) {}

    /// A property read of `prop` on a plain object whose own keys are
    /// `shape` (insertion order; observers canonicalize); `found` says
    /// whether the lookup (own or inherited) produced a property. Emitted
    /// for static member reads and string-keyed computed reads **only
    /// when** [`crate::InterpOptions::observe_props`] is on — the feed of
    /// the `aji-quant` statistical property-access finder. Proxies, §3
    /// receiver wrappers and sandbox mocks never report (their misses are
    /// modeling artifacts, not program behavior).
    fn on_prop_access(
        &mut self,
        _site: Option<Loc>,
        _prop: &str,
        _shape: &[std::rc::Rc<str>],
        _found: bool,
    ) {
    }
}

impl<T: Tracer> Tracer for std::rc::Rc<std::cell::RefCell<T>> {
    fn on_alloc(&mut self, loc: Option<Loc>) {
        self.borrow_mut().on_alloc(loc);
    }
    fn on_function_def(&mut self, def: NodeId, loc: Option<Loc>, value: &Value) {
        self.borrow_mut().on_function_def(def, loc, value);
    }
    fn on_call(&mut self, call_site: Option<Loc>, callee_def: NodeId, callee_loc: Option<Loc>) {
        self.borrow_mut().on_call(call_site, callee_def, callee_loc);
    }
    fn on_dynamic_read(&mut self, op_loc: Loc, result: &Value, result_loc: Option<Loc>) {
        self.borrow_mut().on_dynamic_read(op_loc, result, result_loc);
    }
    fn on_dynamic_write(
        &mut self,
        op_loc: Option<Loc>,
        obj_loc: Option<Loc>,
        prop: &str,
        value_loc: Option<Loc>,
        value: &Value,
    ) {
        self.borrow_mut()
            .on_dynamic_write(op_loc, obj_loc, prop, value_loc, value);
    }

    fn on_proxy_base_read(&mut self, op_loc: Loc, key: &str) {
        self.borrow_mut().on_proxy_base_read(op_loc, key);
    }
    fn on_static_write(&mut self, obj: &Value, prop: &str, value: &Value) {
        self.borrow_mut().on_static_write(obj, prop, value);
    }
    fn on_require(&mut self, site: Loc, name: &str, resolved: Option<&str>) {
        self.borrow_mut().on_require(site, name, resolved);
    }
    fn on_prop_access(
        &mut self,
        site: Option<Loc>,
        prop: &str,
        shape: &[std::rc::Rc<str>],
        found: bool,
    ) {
        self.borrow_mut().on_prop_access(site, prop, shape, found);
    }
}

/// A tracer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// A dynamic call-graph edge: call site location → callee function
/// definition location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DynCallEdge {
    /// Location of the call site.
    pub call_site: Loc,
    /// Location of the invoked function's definition.
    pub callee: Loc,
}

/// Records the dynamic call graph of a concrete execution — the stand-in
/// for the paper's NodeProf-based dynamic call graphs used to measure
/// precision and recall.
#[derive(Debug, Default)]
pub struct DynCallGraph {
    /// Distinct call edges.
    pub edges: BTreeSet<DynCallEdge>,
    /// Function definitions that were actually entered.
    pub invoked: BTreeSet<NodeId>,
}

impl DynCallGraph {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

impl Tracer for DynCallGraph {
    fn on_call(&mut self, call_site: Option<Loc>, callee_def: NodeId, callee_loc: Option<Loc>) {
        self.invoked.insert(callee_def);
        if let (Some(cs), Some(cl)) = (call_site, callee_loc) {
            self.edges.insert(DynCallEdge {
                call_site: cs,
                callee: cl,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::FileId;

    #[test]
    fn dyn_call_graph_dedupes_edges() {
        let mut g = DynCallGraph::new();
        let cs = Loc::new(FileId(0), 1, 1);
        let f = Loc::new(FileId(0), 2, 1);
        g.on_call(Some(cs), NodeId(7), Some(f));
        g.on_call(Some(cs), NodeId(7), Some(f));
        assert_eq!(g.edge_count(), 1);
        assert!(g.invoked.contains(&NodeId(7)));
    }

    #[test]
    fn calls_without_locations_count_invocations_only() {
        let mut g = DynCallGraph::new();
        g.on_call(None, NodeId(3), None);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.invoked.len(), 1);
    }
}
