//! Built-in globals: `Object`, `Array`, `Function.prototype`, string and
//! number methods, `Math`, `JSON`, errors, `console`, timers, `process`,
//! and the sandboxed Node.js module mocks.
//!
//! Per §3 of the paper, the `Object.create` / `Object.defineProperty` /
//! `Object.defineProperties` / `Object.assign` natives are modeled as
//! object constructions and dynamic property writes, feeding the same
//! tracer events as the corresponding language constructs. Node.js
//! functions that interact with the outside world are replaced by mocks
//! that invoke any callback arguments and return the unknown-value proxy.

use crate::error::JsError;
use crate::heap::{ObjKind, Prop, PropValue};
use crate::machine::Interp;
use crate::value::{ObjId, Value};
use std::rc::Rc;

/// Signature of a native function: `(interp, self-object, this, args)`.
pub type NativeFn = fn(&mut Interp, ObjId, Value, &[Value]) -> Result<Value, JsError>;

/// An entry in the native registry.
#[derive(Clone, Copy)]
pub struct NativeEntry {
    /// Diagnostic name.
    pub name: &'static str,
    /// Implementation.
    pub f: NativeFn,
}

impl std::fmt::Debug for NativeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeEntry({})", self.name)
    }
}

/// Index of the native named `name` in the registry, registering it on
/// first use.
///
/// # Panics
///
/// Panics if `name` is not a known native.
pub fn native_id(interp: &mut Interp, name: &str) -> u32 {
    if let Some(i) = interp.natives.iter().position(|e| e.name == name) {
        return i as u32;
    }
    let entry = NATIVE_TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown native `{name}`"));
    interp.natives.push(NativeEntry {
        name: entry.0,
        f: entry.1,
    });
    (interp.natives.len() - 1) as u32
}

/// Creates a function object for the named native.
pub fn make_native(interp: &mut Interp, name: &str) -> Value {
    let id = native_id(interp, name);
    let obj = interp.heap.alloc(ObjKind::Native(id));
    let fproto = interp.protos.function;
    interp.heap.get_mut(obj).proto = Some(fproto);
    interp
        .heap
        .get_mut(obj)
        .props
        .insert(Rc::from("name"), Prop::hidden(Value::str(name)));
    Value::Obj(obj)
}

fn set_method(interp: &mut Interp, target: ObjId, prop: &str, native: &'static str) {
    let f = make_native(interp, native);
    interp
        .heap
        .get_mut(target)
        .props
        .insert(Rc::from(prop), Prop::hidden(f));
}

fn set_hidden(interp: &mut Interp, target: ObjId, prop: &str, v: Value) {
    interp
        .heap
        .get_mut(target)
        .props
        .insert(Rc::from(prop), Prop::hidden(v));
}

fn bind_global(interp: &mut Interp, name: &str, v: Value) {
    interp.global_scope.borrow_mut().declare(name, v.clone());
    set_hidden(interp, interp.global_obj, name, v);
}

/// Installs all globals into a freshly created interpreter.
pub fn install(interp: &mut Interp) {
    // Prototypes first (everything links to them).
    let object_proto = interp.heap.alloc(ObjKind::Plain);
    let function_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(function_proto).proto = Some(object_proto);
    let array_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(array_proto).proto = Some(object_proto);
    let string_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(string_proto).proto = Some(object_proto);
    let number_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(number_proto).proto = Some(object_proto);
    let boolean_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(boolean_proto).proto = Some(object_proto);
    let error_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(error_proto).proto = Some(object_proto);
    let regexp_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(regexp_proto).proto = Some(object_proto);
    let promise_proto = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(promise_proto).proto = Some(object_proto);
    interp.protos = crate::machine::Protos {
        object: object_proto,
        function: function_proto,
        array: array_proto,
        string: string_proto,
        number: number_proto,
        boolean: boolean_proto,
        error: error_proto,
        regexp: regexp_proto,
        promise: promise_proto,
    };
    interp.heap.get_mut(interp.global_obj).proto = Some(object_proto);

    // Object.prototype.
    set_method(interp, object_proto, "hasOwnProperty", "object_has_own");
    set_method(interp, object_proto, "toString", "object_to_string");
    set_method(interp, object_proto, "valueOf", "identity_this");
    set_method(interp, object_proto, "isPrototypeOf", "object_is_prototype_of");
    set_method(
        interp,
        object_proto,
        "propertyIsEnumerable",
        "object_prop_is_enumerable",
    );

    // Function.prototype.
    set_method(interp, function_proto, "call", "function_call");
    set_method(interp, function_proto, "apply", "function_apply");
    set_method(interp, function_proto, "bind", "function_bind");
    set_method(interp, function_proto, "toString", "function_to_string");

    // Array.prototype.
    for (prop, native) in [
        ("push", "array_push"),
        ("pop", "array_pop"),
        ("shift", "array_shift"),
        ("unshift", "array_unshift"),
        ("slice", "array_slice"),
        ("splice", "array_splice"),
        ("concat", "array_concat"),
        ("join", "array_join"),
        ("indexOf", "array_index_of"),
        ("lastIndexOf", "array_last_index_of"),
        ("includes", "array_includes"),
        ("forEach", "array_for_each"),
        ("map", "array_map"),
        ("filter", "array_filter"),
        ("reduce", "array_reduce"),
        ("reduceRight", "array_reduce_right"),
        ("some", "array_some"),
        ("every", "array_every"),
        ("find", "array_find"),
        ("findIndex", "array_find_index"),
        ("sort", "array_sort"),
        ("reverse", "array_reverse"),
        ("fill", "array_fill"),
        ("flat", "array_flat"),
        ("toString", "array_to_string"),
    ] {
        set_method(interp, array_proto, prop, native);
    }

    // String.prototype.
    for (prop, native) in [
        ("charAt", "string_char_at"),
        ("charCodeAt", "string_char_code_at"),
        ("indexOf", "string_index_of"),
        ("lastIndexOf", "string_last_index_of"),
        ("includes", "string_includes"),
        ("startsWith", "string_starts_with"),
        ("endsWith", "string_ends_with"),
        ("slice", "string_slice"),
        ("substring", "string_substring"),
        ("substr", "string_substr"),
        ("toUpperCase", "string_to_upper"),
        ("toLowerCase", "string_to_lower"),
        ("trim", "string_trim"),
        ("split", "string_split"),
        ("replace", "string_replace"),
        ("replaceAll", "string_replace_all"),
        ("concat", "string_concat"),
        ("repeat", "string_repeat"),
        ("padStart", "string_pad_start"),
        ("padEnd", "string_pad_end"),
        ("match", "string_match"),
        ("search", "string_search"),
        ("toString", "identity_this"),
        ("valueOf", "identity_this"),
    ] {
        set_method(interp, string_proto, prop, native);
    }

    // Number.prototype / Boolean.prototype.
    set_method(interp, number_proto, "toString", "number_to_string");
    set_method(interp, number_proto, "toFixed", "number_to_fixed");
    set_method(interp, number_proto, "valueOf", "identity_this");
    set_method(interp, boolean_proto, "toString", "object_to_string");
    set_method(interp, boolean_proto, "valueOf", "identity_this");

    // Error.prototype.
    set_method(interp, error_proto, "toString", "error_to_string");
    set_hidden(interp, error_proto, "name", Value::str("Error"));
    set_hidden(interp, error_proto, "message", Value::str(""));

    // RegExp.prototype.
    set_method(interp, regexp_proto, "test", "regexp_test");
    set_method(interp, regexp_proto, "exec", "regexp_exec");
    set_method(interp, regexp_proto, "toString", "object_to_string");

    // Promise.prototype.
    set_method(interp, promise_proto, "then", "promise_then");
    set_method(interp, promise_proto, "catch", "promise_catch");
    set_method(interp, promise_proto, "finally", "promise_finally");

    // Object constructor and statics.
    let object_ctor = make_native(interp, "object_ctor");
    if let Some(oc) = object_ctor.as_obj() {
        set_hidden(interp, oc, "prototype", Value::Obj(object_proto));
        set_hidden(interp, object_proto, "constructor", object_ctor.clone());
        for (prop, native) in [
            ("keys", "object_keys"),
            ("values", "object_values"),
            ("entries", "object_entries"),
            ("assign", "object_assign"),
            ("create", "object_create"),
            ("defineProperty", "object_define_property"),
            ("defineProperties", "object_define_properties"),
            ("getOwnPropertyNames", "object_get_own_property_names"),
            ("getOwnPropertyDescriptor", "object_get_own_property_descriptor"),
            ("getPrototypeOf", "object_get_prototype_of"),
            ("setPrototypeOf", "object_set_prototype_of"),
            ("freeze", "identity_first_arg"),
            ("seal", "identity_first_arg"),
            ("preventExtensions", "identity_first_arg"),
            ("isFrozen", "return_false"),
        ] {
            set_method(interp, oc, prop, native);
        }
    }
    bind_global(interp, "Object", object_ctor);

    // Array constructor and statics.
    let array_ctor = make_native(interp, "array_ctor");
    if let Some(ac) = array_ctor.as_obj() {
        set_hidden(interp, ac, "prototype", Value::Obj(array_proto));
        set_hidden(interp, array_proto, "constructor", array_ctor.clone());
        set_method(interp, ac, "isArray", "array_is_array");
        set_method(interp, ac, "from", "array_from");
        set_method(interp, ac, "of", "array_of");
    }
    bind_global(interp, "Array", array_ctor);

    // Function constructor (dynamic code generation).
    let function_ctor = make_native(interp, "function_ctor");
    if let Some(fc) = function_ctor.as_obj() {
        set_hidden(interp, fc, "prototype", Value::Obj(function_proto));
    }
    bind_global(interp, "Function", function_ctor);

    // String / Number / Boolean constructors.
    let string_ctor = make_native(interp, "string_ctor");
    if let Some(sc) = string_ctor.as_obj() {
        set_hidden(interp, sc, "prototype", Value::Obj(string_proto));
        set_method(interp, sc, "fromCharCode", "string_from_char_code");
    }
    bind_global(interp, "String", string_ctor);
    let number_ctor = make_native(interp, "number_ctor");
    if let Some(nc) = number_ctor.as_obj() {
        set_hidden(interp, nc, "prototype", Value::Obj(number_proto));
        set_method(interp, nc, "isInteger", "number_is_integer");
        set_method(interp, nc, "isFinite", "global_is_finite");
        set_method(interp, nc, "isNaN", "global_is_nan");
        set_method(interp, nc, "parseInt", "global_parse_int");
        set_method(interp, nc, "parseFloat", "global_parse_float");
        set_hidden(interp, nc, "MAX_SAFE_INTEGER", Value::Num(9007199254740991.0));
        set_hidden(interp, nc, "MIN_SAFE_INTEGER", Value::Num(-9007199254740991.0));
        set_hidden(interp, nc, "EPSILON", Value::Num(f64::EPSILON));
        set_hidden(interp, nc, "NaN", Value::Num(f64::NAN));
    }
    bind_global(interp, "Number", number_ctor);
    let boolean_ctor = make_native(interp, "boolean_ctor");
    if let Some(bc) = boolean_ctor.as_obj() {
        set_hidden(interp, bc, "prototype", Value::Obj(boolean_proto));
    }
    bind_global(interp, "Boolean", boolean_ctor);

    // Errors.
    for name in ["Error", "TypeError", "RangeError", "SyntaxError", "EvalError", "ReferenceError"] {
        let ctor = make_native(interp, "error_ctor");
        if let Some(ec) = ctor.as_obj() {
            // Per-type prototype chained to Error.prototype.
            let proto = if name == "Error" {
                error_proto
            } else {
                let p = interp.heap.alloc(ObjKind::Plain);
                interp.heap.get_mut(p).proto = Some(error_proto);
                set_hidden(interp, p, "name", Value::str(name));
                p
            };
            set_hidden(interp, ec, "prototype", Value::Obj(proto));
            set_hidden(interp, proto, "constructor", ctor.clone());
            set_hidden(interp, ec, "name", Value::str(name));
        }
        bind_global(interp, name, ctor);
    }

    // RegExp constructor.
    let regexp_ctor = make_native(interp, "regexp_ctor");
    if let Some(rc) = regexp_ctor.as_obj() {
        set_hidden(interp, rc, "prototype", Value::Obj(regexp_proto));
    }
    bind_global(interp, "RegExp", regexp_ctor);

    // Promise.
    let promise_ctor = make_native(interp, "promise_ctor");
    if let Some(pc) = promise_ctor.as_obj() {
        set_hidden(interp, pc, "prototype", Value::Obj(promise_proto));
        set_method(interp, pc, "resolve", "promise_resolve_static");
        set_method(interp, pc, "reject", "promise_reject_static");
        set_method(interp, pc, "all", "promise_all");
    }
    bind_global(interp, "Promise", promise_ctor);

    // Math.
    let math = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(math).proto = Some(object_proto);
    for (prop, native) in [
        ("floor", "math_floor"),
        ("ceil", "math_ceil"),
        ("round", "math_round"),
        ("trunc", "math_trunc"),
        ("abs", "math_abs"),
        ("sqrt", "math_sqrt"),
        ("pow", "math_pow"),
        ("min", "math_min"),
        ("max", "math_max"),
        ("random", "math_random"),
        ("log", "math_log"),
        ("exp", "math_exp"),
        ("sign", "math_sign"),
    ] {
        set_method(interp, math, prop, native);
    }
    set_hidden(interp, math, "PI", Value::Num(std::f64::consts::PI));
    set_hidden(interp, math, "E", Value::Num(std::f64::consts::E));
    bind_global(interp, "Math", Value::Obj(math));

    // JSON.
    let json = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(json).proto = Some(object_proto);
    set_method(interp, json, "stringify", "json_stringify");
    set_method(interp, json, "parse", "json_parse");
    bind_global(interp, "JSON", Value::Obj(json));

    // console.
    let console = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(console).proto = Some(object_proto);
    for m in ["log", "warn", "error", "info", "debug", "trace"] {
        set_method(interp, console, m, "console_log");
    }
    bind_global(interp, "console", Value::Obj(console));

    // Global functions.
    for (name, native) in [
        ("parseInt", "global_parse_int"),
        ("parseFloat", "global_parse_float"),
        ("isNaN", "global_is_nan"),
        ("isFinite", "global_is_finite"),
        ("eval", "global_eval"),
        ("Symbol", "symbol_stub"),
        ("setTimeout", "timer_immediate"),
        ("setInterval", "timer_immediate"),
        ("setImmediate", "timer_immediate"),
        ("queueMicrotask", "timer_immediate"),
        ("clearTimeout", "noop"),
        ("clearInterval", "noop"),
        ("clearImmediate", "noop"),
        ("encodeURIComponent", "identity_first_arg_str"),
        ("decodeURIComponent", "identity_first_arg_str"),
        ("encodeURI", "identity_first_arg_str"),
        ("decodeURI", "identity_first_arg_str"),
        ("structuredClone", "identity_first_arg"),
    ] {
        let f = make_native(interp, native);
        bind_global(interp, name, f);
    }
    // Symbol.iterator marker used by some libraries.
    if let Some(Value::Obj(sym)) = crate::env::lookup(&interp.global_scope, "Symbol").as_ref() {
        set_hidden(interp, *sym, "iterator", Value::str("Symbol(Symbol.iterator)"));
        set_hidden(
            interp,
            *sym,
            "asyncIterator",
            Value::str("Symbol(Symbol.asyncIterator)"),
        );
    }

    // Date (deterministic).
    let date_ctor = make_native(interp, "date_ctor");
    if let Some(dc) = date_ctor.as_obj() {
        set_method(interp, dc, "now", "date_now");
        let date_proto = interp.heap.alloc(ObjKind::Plain);
        interp.heap.get_mut(date_proto).proto = Some(object_proto);
        for m in [
            "getTime",
            "valueOf",
            "getFullYear",
            "getMonth",
            "getDate",
            "getHours",
            "getMinutes",
            "getSeconds",
            "getMilliseconds",
            "getDay",
        ] {
            set_method(interp, date_proto, m, "date_get_time");
        }
        set_method(interp, date_proto, "toISOString", "date_to_iso");
        set_method(interp, date_proto, "toString", "date_to_iso");
        set_hidden(interp, dc, "prototype", Value::Obj(date_proto));
    }
    bind_global(interp, "Date", date_ctor);

    // process.
    let process = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(process).proto = Some(object_proto);
    let envv = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(envv).proto = Some(object_proto);
    set_hidden(interp, process, "env", Value::Obj(envv));
    let argv = interp
        .heap
        .alloc(ObjKind::Array(vec![Value::str("node"), Value::str("main")]));
    interp.heap.get_mut(argv).proto = Some(array_proto);
    set_hidden(interp, process, "argv", Value::Obj(argv));
    set_hidden(interp, process, "platform", Value::str("linux"));
    set_hidden(interp, process, "version", Value::str("v18.0.0"));
    set_method(interp, process, "exit", "noop");
    set_method(interp, process, "cwd", "process_cwd");
    set_method(interp, process, "nextTick", "timer_immediate");
    set_method(interp, process, "on", "noop");
    set_method(interp, process, "emit", "noop");
    let stdout = interp.heap.alloc(ObjKind::Plain);
    interp.heap.get_mut(stdout).proto = Some(object_proto);
    set_method(interp, stdout, "write", "console_log");
    set_hidden(interp, process, "stdout", Value::Obj(stdout));
    set_hidden(interp, process, "stderr", Value::Obj(stdout));
    bind_global(interp, "process", Value::Obj(process));

    // Buffer mock.
    let buffer = make_mock(interp, "Buffer");
    bind_global(interp, "Buffer", buffer);
}

/// Creates a sandbox mock object: property reads fall back to the object
/// itself, and calling it invokes callback arguments (see
/// `mock_io` below).
pub fn make_mock(interp: &mut Interp, name: &str) -> Value {
    let id = native_id(interp, "mock_io");
    let obj = interp.heap.alloc(ObjKind::Native(id));
    let fproto = interp.protos.function;
    interp.heap.get_mut(obj).proto = Some(fproto);
    set_hidden(interp, obj, "__mock__", Value::Bool(true));
    set_hidden(interp, obj, "name", Value::str(name));
    Value::Obj(obj)
}

// ---------------------------------------------------------------------
// Native implementations
// ---------------------------------------------------------------------

type R = Result<Value, JsError>;

fn this_string(i: &mut Interp, this: &Value) -> String {
    i.to_string_value(this)
}

fn arg(args: &[Value], n: usize) -> Value {
    args.get(n).cloned().unwrap_or(Value::Undefined)
}

fn new_array(i: &mut Interp, elems: Vec<Value>) -> Value {
    let id = i.heap.alloc(ObjKind::Array(elems));
    let proto = i.protos.array;
    i.heap.get_mut(id).proto = Some(proto);
    i.heap.get_mut(id).born_at = i.current_call_site;
    i.tracer.on_alloc(i.current_call_site);
    Value::Obj(id)
}

fn new_object(i: &mut Interp) -> ObjId {
    let site = i.pending_new_loc.or(i.current_call_site);
    let id = i.heap.alloc_plain(Some(i.protos.object), site);
    i.tracer.on_alloc(site);
    id
}

/// Reads the dense element list of an array `this`, or materializes an
/// array-like.
fn this_elems(i: &mut Interp, this: &Value) -> Result<Vec<Value>, JsError> {
    match this.as_obj().map(|id| i.heap.get(id).kind.clone()) {
        Some(ObjKind::Array(elems)) => Ok(elems),
        _ => i.iterate_values(this),
    }
}

fn store_elems(i: &mut Interp, this: &Value, elems: Vec<Value>) {
    if let Some(id) = this.as_obj() {
        if let ObjKind::Array(e) = &mut i.heap.get_mut(id).kind {
            *e = elems;
        }
    }
}

// ----- generic -----

fn noop(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Undefined)
}

fn identity_this(_i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    Ok(this)
}

fn identity_first_arg(_i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(arg(args, 0))
}

fn identity_first_arg_str(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let s = i.to_string_value(&arg(args, 0));
    Ok(Value::from(s))
}

fn return_false(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Bool(false))
}

fn console_log(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let line = args
        .iter()
        .map(|a| i.to_string_value(a))
        .collect::<Vec<_>>()
        .join(" ");
    i.console.push(line);
    Ok(Value::Undefined)
}

fn timer_immediate(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let cb = arg(args, 0);
    if i.heap.is_callable(&cb) {
        // Extra args after the delay are forwarded.
        let rest: Vec<Value> = args.iter().skip(2).cloned().collect();
        i.call_value(cb, Value::Undefined, &rest, None)?;
    }
    Ok(Value::Num(0.0))
}

/// The sandbox mock: invokes any callback arguments with unknown values
/// and returns the proxy (approx mode) or itself (concrete mode).
fn mock_io(i: &mut Interp, s: ObjId, _t: Value, args: &[Value]) -> R {
    let unknown = if i.opts.approx {
        i.proxy_value()
    } else {
        Value::Obj(s)
    };
    for a in args {
        if i.heap.is_callable(a) && a.as_obj() != Some(s) {
            let cb_args = [unknown.clone(), unknown.clone(), unknown.clone()];
            // Ignore errors from callbacks: the mock's job is coverage.
            let _ = i.call_value(a.clone(), Value::Undefined, &cb_args, None);
        }
    }
    Ok(if i.opts.approx {
        i.proxy_value()
    } else {
        Value::Obj(s)
    })
}

// ----- require -----

fn require(i: &mut Interp, s: ObjId, _t: Value, args: &[Value]) -> R {
    let site = i.current_call_site;
    let spec = arg(args, 0);
    if i.heap.is_proxy(&spec) {
        return Ok(i.proxy_value());
    }
    let name = i.to_string_value(&spec);
    let from_idx = match i.heap.own_prop(s, "__module_index__") {
        Some(Prop {
            value: PropValue::Data(Value::Num(n)),
            ..
        }) => n as usize,
        _ => 0,
    };
    i.load_module(from_idx, &name, site)
}

fn require_resolve(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let name = i.to_string_value(&arg(args, 0));
    Ok(Value::from(name))
}

// ----- Object -----

fn object_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    match args.first() {
        Some(Value::Obj(id)) => Ok(Value::Obj(*id)),
        _ => Ok(Value::Obj(new_object(i))),
    }
}

fn object_keys(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let keys = match arg(args, 0).as_obj() {
        Some(id) if !matches!(i.heap.get(id).kind, ObjKind::Proxy) => i
            .heap
            .own_enumerable_keys(id)
            .into_iter()
            .map(Value::Str)
            .collect(),
        _ => Vec::new(),
    };
    Ok(new_array(i, keys))
}

fn object_values(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let o = arg(args, 0);
    let mut vals = Vec::new();
    if let Some(id) = o.as_obj() {
        if !matches!(i.heap.get(id).kind, ObjKind::Proxy) {
            for k in i.heap.own_enumerable_keys(id) {
                vals.push(i.get_property(o.clone(), &k, None)?);
            }
        }
    }
    Ok(new_array(i, vals))
}

fn object_entries(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let o = arg(args, 0);
    let mut entries = Vec::new();
    if let Some(id) = o.as_obj() {
        if !matches!(i.heap.get(id).kind, ObjKind::Proxy) {
            for k in i.heap.own_enumerable_keys(id) {
                let v = i.get_property(o.clone(), &k, None)?;
                entries.push(new_array(i, vec![Value::Str(k), v]));
            }
        }
    }
    Ok(new_array(i, entries))
}

/// `Object.assign` — modeled as a sequence of dynamic property writes
/// (§3 of the paper).
fn object_assign(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let target = arg(args, 0);
    let Some(tid) = target.as_obj() else {
        return Ok(target);
    };
    if matches!(i.heap.get(tid).kind, ObjKind::Proxy) {
        return Ok(target);
    }
    for src in args.iter().skip(1) {
        let Some(sid) = src.as_obj() else { continue };
        if matches!(i.heap.get(sid).kind, ObjKind::Proxy) {
            continue;
        }
        for k in i.heap.own_enumerable_keys(sid) {
            let v = i.get_property(src.clone(), &k, None)?;
            let op_loc = i.current_call_site;
            let obj_loc = i.loc_of(&target);
            let val_loc = i.loc_of(&v);
            i.tracer.on_dynamic_write(op_loc, obj_loc, &k, val_loc, &v);
            i.set_property(&target, &k, v)?;
        }
    }
    Ok(target)
}

/// `Object.create` — a form of object construction (§3).
fn object_create(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let proto = match arg(args, 0) {
        Value::Obj(p) => Some(p),
        Value::Null => None,
        _ => Some(i.protos.object),
    };
    let site = i.current_call_site;
    let id = i.heap.alloc_plain(proto, site);
    i.tracer.on_alloc(site);
    let objv = Value::Obj(id);
    if let Some(props) = args.get(1) {
        define_properties_from(i, &objv, props)?;
    }
    Ok(objv)
}

/// Applies one property descriptor, recording a dynamic-write hint.
fn define_one_property(
    i: &mut Interp,
    target: &Value,
    key: &str,
    descriptor: &Value,
) -> Result<(), JsError> {
    let Some(tid) = target.as_obj() else {
        return Ok(());
    };
    if matches!(i.heap.get(tid).kind, ObjKind::Proxy) {
        return Ok(());
    }
    let get = i.get_property(descriptor.clone(), "get", None)?;
    let set = i.get_property(descriptor.clone(), "set", None)?;
    let enumerable = i.get_property(descriptor.clone(), "enumerable", None)?;
    if i.heap.is_callable(&get) || i.heap.is_callable(&set) {
        let prop = Prop {
            value: PropValue::Accessor {
                get: if i.heap.is_callable(&get) { Some(get.clone()) } else { None },
                set: if i.heap.is_callable(&set) { Some(set.clone()) } else { None },
            },
            enumerable: enumerable.is_truthy(),
        };
        i.heap.get_mut(tid).props.insert(Rc::from(key), prop);
        // Record the getter as flowing into the property (the paper's
        // implementation treats defineProperty as a dynamic write of the
        // descriptor's value).
        let op_loc = i.current_call_site;
        let obj_loc = i.loc_of(target);
        let val_loc = i.loc_of(&get);
        i.tracer.on_dynamic_write(op_loc, obj_loc, key, val_loc, &get);
        return Ok(());
    }
    let value = i.get_property(descriptor.clone(), "value", None)?;
    let op_loc = i.current_call_site;
    let obj_loc = i.loc_of(target);
    let val_loc = i.loc_of(&value);
    i.tracer.on_dynamic_write(op_loc, obj_loc, key, val_loc, &value);
    i.heap.get_mut(tid).props.insert(
        Rc::from(key),
        Prop {
            value: PropValue::Data(value),
            enumerable: enumerable.is_truthy(),
        },
    );
    Ok(())
}

fn object_define_property(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let target = arg(args, 0);
    let keyv = arg(args, 1);
    if i.heap.is_proxy(&keyv) {
        return Ok(target);
    }
    let key = i.to_string_value(&keyv);
    let descriptor = arg(args, 2);
    define_one_property(i, &target, &key, &descriptor)?;
    Ok(target)
}

fn define_properties_from(
    i: &mut Interp,
    target: &Value,
    props: &Value,
) -> Result<(), JsError> {
    if let Some(pid) = props.as_obj() {
        if !matches!(i.heap.get(pid).kind, ObjKind::Proxy) {
            for k in i.heap.own_enumerable_keys(pid) {
                let d = i.get_property(props.clone(), &k, None)?;
                define_one_property(i, target, &k, &d)?;
            }
        }
    }
    Ok(())
}

fn object_define_properties(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let target = arg(args, 0);
    let props = arg(args, 1);
    define_properties_from(i, &target, &props)?;
    Ok(target)
}

fn object_get_own_property_names(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let keys = match arg(args, 0).as_obj() {
        Some(id) if !matches!(i.heap.get(id).kind, ObjKind::Proxy) => {
            let mut ks: Vec<Value> = i
                .heap
                .own_keys(id)
                .into_iter()
                .map(Value::Str)
                .collect();
            if matches!(i.heap.get(id).kind, ObjKind::Array(_)) {
                ks.push(Value::str("length"));
            }
            ks
        }
        _ => Vec::new(),
    };
    Ok(new_array(i, keys))
}

fn object_get_own_property_descriptor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let o = arg(args, 0);
    let keyv = arg(args, 1);
    if i.heap.is_proxy(&keyv) || i.heap.is_proxy(&o) {
        return Ok(if i.opts.approx {
            i.proxy_value()
        } else {
            Value::Undefined
        });
    }
    let key = i.to_string_value(&keyv);
    let Some(id) = o.as_obj() else {
        return Ok(Value::Undefined);
    };
    let Some(prop) = i.heap.own_prop(id, &key) else {
        return Ok(Value::Undefined);
    };
    let d = new_object(i);
    match prop.value {
        PropValue::Data(v) => {
            i.heap.set_prop(d, "value", v);
            i.heap.set_prop(d, "writable", Value::Bool(true));
        }
        PropValue::Accessor { get, set } => {
            i.heap
                .set_prop(d, "get", get.unwrap_or(Value::Undefined));
            i.heap
                .set_prop(d, "set", set.unwrap_or(Value::Undefined));
        }
    }
    i.heap
        .set_prop(d, "enumerable", Value::Bool(prop.enumerable));
    i.heap.set_prop(d, "configurable", Value::Bool(true));
    Ok(Value::Obj(d))
}

fn object_get_prototype_of(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    match arg(args, 0).as_obj() {
        Some(id) => Ok(i
            .heap
            .get(id)
            .proto
            .map(Value::Obj)
            .unwrap_or(Value::Null)),
        None => Ok(Value::Null),
    }
}

fn object_set_prototype_of(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let o = arg(args, 0);
    if let Some(id) = o.as_obj() {
        match arg(args, 1) {
            Value::Obj(p) => i.heap.get_mut(id).proto = Some(p),
            Value::Null => i.heap.get_mut(id).proto = None,
            _ => {}
        }
    }
    Ok(o)
}

fn object_has_own(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let key = i.to_string_value(&arg(args, 0));
    match this.as_obj() {
        Some(id) if !matches!(i.heap.get(id).kind, ObjKind::Proxy) => {
            Ok(Value::Bool(i.heap.own_prop(id, &key).is_some()))
        }
        Some(_) => Ok(Value::Bool(true)),
        None => Ok(Value::Bool(false)),
    }
}

fn object_to_string(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    // Careful: this native *is* the `toString` that `ToPrimitive` falls
    // back to, so it must not call back into the generic `ToString`
    // machinery (infinite mutual recursion otherwise — found by fuzzing).
    let s = match &this {
        Value::Obj(id) => match &i.heap.get(*id).kind {
            ObjKind::Array(_) => {
                return array_join(i, _s, this.clone(), &[]);
            }
            ObjKind::Function(_) | ObjKind::Native(_) => {
                "function () { [native code] }".to_string()
            }
            _ => "[object Object]".to_string(),
        },
        other => crate::convert::prim_to_string(other),
    };
    Ok(Value::from(s))
}

fn object_is_prototype_of(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let (Some(pid), Some(oid)) = (this.as_obj(), arg(args, 0).as_obj()) else {
        return Ok(Value::Bool(false));
    };
    let mut cur = i.heap.get(oid).proto;
    let mut hops = 0;
    while let Some(p) = cur {
        if p == pid {
            return Ok(Value::Bool(true));
        }
        cur = i.heap.get(p).proto;
        hops += 1;
        if hops > 64 {
            break;
        }
    }
    Ok(Value::Bool(false))
}

fn object_prop_is_enumerable(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let key = i.to_string_value(&arg(args, 0));
    match this.as_obj() {
        Some(id) => Ok(Value::Bool(
            i.heap.own_prop(id, &key).map(|p| p.enumerable) == Some(true),
        )),
        None => Ok(Value::Bool(false)),
    }
}

// ----- Function.prototype -----

fn function_call(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let call_this = arg(args, 0);
    let rest: Vec<Value> = args.iter().skip(1).cloned().collect();
    let site = i.current_call_site;
    i.call_value(this, call_this, &rest, site)
}

fn function_apply(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let call_this = arg(args, 0);
    let arr = arg(args, 1);
    let list = if arr.is_nullish() {
        Vec::new()
    } else {
        i.iterate_values(&arr)?
    };
    let site = i.current_call_site;
    i.call_value(this, call_this, &list, site)
}

fn function_bind(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let Some(fid) = this.as_obj() else {
        return Ok(this);
    };
    match i.heap.get(fid).kind.clone() {
        ObjKind::Function(mut data) => {
            data.bound_this = Some(Box::new(arg(args, 0)));
            data.bound_args
                .extend(args.iter().skip(1).cloned());
            let b = i.heap.alloc(ObjKind::Function(data));
            let src = i.heap.get(fid).clone();
            let dst = i.heap.get_mut(b);
            dst.proto = src.proto;
            // Bound functions keep the original's allocation-site identity
            // so analysis hints still refer to the definition.
            dst.born_at = src.born_at;
            dst.func_def = src.func_def;
            Ok(Value::Obj(b))
        }
        _ => Ok(this), // binding natives/proxies: approximate with the original
    }
}

fn function_to_string(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::str("function () { [native code] }"))
}

fn function_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    // new Function(p1, ..., pn, body) — dynamically generated code.
    let mut params = Vec::new();
    for a in args.iter().take(args.len().saturating_sub(1)) {
        params.push(i.to_string_value(a));
    }
    let body = match args.last() {
        Some(b) => i.to_string_value(b),
        None => String::new(),
    };
    let src = format!(
        "(function anonymous({}) {{ {} }})",
        params.join(", "),
        body
    );
    let scope = i.global_scope();
    i.run_eval(&src, &scope)
}

// ----- Array -----

fn array_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let elems = if args.len() == 1 {
        if let Value::Num(n) = &args[0] {
            vec![Value::Undefined; (*n as usize).min(100_000)]
        } else {
            vec![args[0].clone()]
        }
    } else {
        args.to_vec()
    };
    let id = i.heap.alloc(ObjKind::Array(elems));
    let proto = i.protos.array;
    i.heap.get_mut(id).proto = Some(proto);
    let site = i.pending_new_loc.or(i.current_call_site);
    i.heap.get_mut(id).born_at = site;
    i.tracer.on_alloc(site);
    Ok(Value::Obj(id))
}

fn array_is_array(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(Value::Bool(matches!(
        arg(args, 0).as_obj().map(|id| &i.heap.get(id).kind),
        Some(ObjKind::Array(_))
    )))
}

fn array_from(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let src = arg(args, 0);
    let items = i.iterate_values(&src)?;
    let mapfn = arg(args, 1);
    let mut out = Vec::with_capacity(items.len());
    if i.heap.is_callable(&mapfn) {
        for (idx, item) in items.into_iter().enumerate() {
            out.push(i.call_value(
                mapfn.clone(),
                Value::Undefined,
                &[item, Value::Num(idx as f64)],
                None,
            )?);
        }
    } else {
        out = items;
    }
    Ok(new_array(i, out))
}

fn array_of(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(new_array(i, args.to_vec()))
}

fn array_push(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    elems.extend(args.iter().cloned());
    let n = elems.len();
    store_elems(i, &this, elems);
    Ok(Value::Num(n as f64))
}

fn array_pop(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    let v = elems.pop().unwrap_or(Value::Undefined);
    store_elems(i, &this, elems);
    Ok(v)
}

fn array_shift(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    let v = if elems.is_empty() {
        Value::Undefined
    } else {
        elems.remove(0)
    };
    store_elems(i, &this, elems);
    Ok(v)
}

fn array_unshift(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    for (k, a) in args.iter().enumerate() {
        elems.insert(k, a.clone());
    }
    let n = elems.len();
    store_elems(i, &this, elems);
    Ok(Value::Num(n as f64))
}

fn norm_index(idx: f64, len: usize) -> usize {
    if idx < 0.0 {
        (len as f64 + idx).max(0.0) as usize
    } else {
        (idx as usize).min(len)
    }
}

fn array_slice(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let len = elems.len();
    let start = match args.first() {
        Some(v) => norm_index(i.to_number_value(v)?, len),
        None => 0,
    };
    let end = match args.get(1) {
        Some(Value::Undefined) | None => len,
        Some(v) => norm_index(i.to_number_value(v)?, len),
    };
    let out = if start < end {
        elems[start..end].to_vec()
    } else {
        Vec::new()
    };
    Ok(new_array(i, out))
}

fn array_splice(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    let len = elems.len();
    let start = match args.first() {
        Some(v) => norm_index(i.to_number_value(v)?, len),
        None => 0,
    };
    let delete_count = match args.get(1) {
        Some(v) => (i.to_number_value(v)?.max(0.0) as usize).min(len - start),
        None => len - start,
    };
    let removed: Vec<Value> = elems.splice(start..start + delete_count, args.iter().skip(2).cloned()).collect();
    store_elems(i, &this, elems);
    Ok(new_array(i, removed))
}

fn array_concat(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    for a in args {
        match a.as_obj().map(|id| i.heap.get(id).kind.clone()) {
            Some(ObjKind::Array(more)) => elems.extend(more),
            _ => elems.push(a.clone()),
        }
    }
    Ok(new_array(i, elems))
}

fn array_join(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let sep = match args.first() {
        Some(Value::Undefined) | None => ",".to_string(),
        Some(v) => i.to_string_value(v),
    };
    let parts: Vec<String> = elems
        .iter()
        .map(|e| {
            if e.is_nullish() {
                String::new()
            } else {
                i.to_string_value(e)
            }
        })
        .collect();
    Ok(Value::from(parts.join(&sep)))
}

fn array_index_of(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let needle = arg(args, 0);
    Ok(Value::Num(
        elems
            .iter()
            .position(|e| e.strict_eq(&needle))
            .map(|p| p as f64)
            .unwrap_or(-1.0),
    ))
}

fn array_last_index_of(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let needle = arg(args, 0);
    Ok(Value::Num(
        elems
            .iter()
            .rposition(|e| e.strict_eq(&needle))
            .map(|p| p as f64)
            .unwrap_or(-1.0),
    ))
}

fn array_includes(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let needle = arg(args, 0);
    Ok(Value::Bool(elems.iter().any(|e| e.strict_eq(&needle))))
}

fn array_for_each(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    let cb_this = arg(args, 1);
    for (idx, e) in elems.into_iter().enumerate() {
        i.call_value(
            cb.clone(),
            cb_this.clone(),
            &[e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
    }
    Ok(Value::Undefined)
}

fn array_map(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    let cb_this = arg(args, 1);
    let mut out = Vec::with_capacity(elems.len());
    for (idx, e) in elems.into_iter().enumerate() {
        out.push(i.call_value(
            cb.clone(),
            cb_this.clone(),
            &[e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?);
    }
    Ok(new_array(i, out))
}

fn array_filter(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    let cb_this = arg(args, 1);
    let mut out = Vec::new();
    for (idx, e) in elems.into_iter().enumerate() {
        let keep = i.call_value(
            cb.clone(),
            cb_this.clone(),
            &[e.clone(), Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
        if i.truthy(&keep) {
            out.push(e);
        }
    }
    Ok(new_array(i, out))
}

fn array_reduce(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    let mut acc;
    let mut start = 0;
    if args.len() >= 2 {
        acc = arg(args, 1);
    } else if !elems.is_empty() {
        acc = elems[0].clone();
        start = 1;
    } else {
        return Err(i.throw_error("TypeError", "reduce of empty array with no initial value"));
    }
    for (idx, e) in elems.into_iter().enumerate().skip(start) {
        acc = i.call_value(
            cb.clone(),
            Value::Undefined,
            &[acc, e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
    }
    Ok(acc)
}

fn array_reduce_right(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    elems.reverse();
    let rev = new_array(i, elems);
    array_reduce(i, _s, rev, args)
}

fn array_some(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    for (idx, e) in elems.into_iter().enumerate() {
        let r = i.call_value(
            cb.clone(),
            Value::Undefined,
            &[e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
        if i.truthy(&r) {
            return Ok(Value::Bool(true));
        }
    }
    Ok(Value::Bool(false))
}

fn array_every(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    for (idx, e) in elems.into_iter().enumerate() {
        let r = i.call_value(
            cb.clone(),
            Value::Undefined,
            &[e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
        if !i.truthy(&r) {
            return Ok(Value::Bool(false));
        }
    }
    Ok(Value::Bool(true))
}

fn array_find(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    for (idx, e) in elems.into_iter().enumerate() {
        let r = i.call_value(
            cb.clone(),
            Value::Undefined,
            &[e.clone(), Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
        if i.truthy(&r) {
            return Ok(e);
        }
    }
    Ok(Value::Undefined)
}

fn array_find_index(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let cb = arg(args, 0);
    for (idx, e) in elems.into_iter().enumerate() {
        let r = i.call_value(
            cb.clone(),
            Value::Undefined,
            &[e, Value::Num(idx as f64), this.clone()],
            i.current_call_site,
        )?;
        if i.truthy(&r) {
            return Ok(Value::Num(idx as f64));
        }
    }
    Ok(Value::Num(-1.0))
}

fn array_sort(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    let cmp = arg(args, 0);
    if i.heap.is_callable(&cmp) {
        // Simple insertion sort driven by the comparator (comparators can
        // have side effects; a stable, predictable order matters more
        // than asymptotics here).
        let mut sorted: Vec<Value> = Vec::with_capacity(elems.len());
        for e in elems.into_iter() {
            let mut at = sorted.len();
            for (j, s) in sorted.iter().enumerate() {
                let r = i.call_value(
                    cmp.clone(),
                    Value::Undefined,
                    &[e.clone(), s.clone()],
                    None,
                )?;
                if i.to_number_value(&r)? < 0.0 {
                    at = j;
                    break;
                }
            }
            sorted.insert(at, e);
        }
        elems = sorted;
    } else {
        let mut keyed: Vec<(String, Value)> = elems
            .into_iter()
            .map(|e| (i.to_string_value(&e), e))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        elems = keyed.into_iter().map(|(_, e)| e).collect();
    }
    store_elems(i, &this, elems);
    Ok(this)
}

fn array_reverse(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    elems.reverse();
    store_elems(i, &this, elems);
    Ok(this)
}

fn array_fill(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut elems = this_elems(i, &this)?;
    let v = arg(args, 0);
    for e in elems.iter_mut() {
        *e = v.clone();
    }
    store_elems(i, &this, elems);
    Ok(this)
}

fn array_flat(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let elems = this_elems(i, &this)?;
    let mut out = Vec::new();
    for e in elems {
        match e.as_obj().map(|id| i.heap.get(id).kind.clone()) {
            Some(ObjKind::Array(inner)) => out.extend(inner),
            _ => out.push(e),
        }
    }
    Ok(new_array(i, out))
}

fn array_to_string(i: &mut Interp, s: ObjId, this: Value, _a: &[Value]) -> R {
    array_join(i, s, this, &[])
}

// ----- String -----

fn string_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let s = match args.first() {
        Some(v) => i.to_string_value(v),
        None => String::new(),
    };
    Ok(Value::from(s))
}

fn string_from_char_code(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let mut out = String::new();
    for a in args {
        let c = i.to_number_value(a)? as u32;
        out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
    }
    Ok(Value::from(out))
}

fn string_char_at(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let idx = i.to_number_value(&arg(args, 0))? as usize;
    Ok(Value::from(
        s.chars().nth(idx).map(|c| c.to_string()).unwrap_or_default(),
    ))
}

fn string_char_code_at(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let idx = i.to_number_value(&arg(args, 0))? as usize;
    Ok(match s.chars().nth(idx) {
        Some(c) => Value::Num(c as u32 as f64),
        None => Value::Num(f64::NAN),
    })
}

fn string_index_of(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let needle = i.to_string_value(&arg(args, 0));
    Ok(Value::Num(
        s.find(&needle)
            .map(|b| s[..b].chars().count() as f64)
            .unwrap_or(-1.0),
    ))
}

fn string_last_index_of(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let needle = i.to_string_value(&arg(args, 0));
    Ok(Value::Num(
        s.rfind(&needle)
            .map(|b| s[..b].chars().count() as f64)
            .unwrap_or(-1.0),
    ))
}

fn string_includes(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let needle = i.to_string_value(&arg(args, 0));
    Ok(Value::Bool(s.contains(&needle)))
}

fn string_starts_with(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let needle = i.to_string_value(&arg(args, 0));
    Ok(Value::Bool(s.starts_with(&needle)))
}

fn string_ends_with(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let needle = i.to_string_value(&arg(args, 0));
    Ok(Value::Bool(s.ends_with(&needle)))
}

fn char_slice(s: &str, start: usize, end: usize) -> String {
    s.chars().skip(start).take(end.saturating_sub(start)).collect()
}

fn string_slice(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let len = s.chars().count();
    let start = match args.first() {
        Some(v) => norm_index(i.to_number_value(v)?, len),
        None => 0,
    };
    let end = match args.get(1) {
        Some(Value::Undefined) | None => len,
        Some(v) => norm_index(i.to_number_value(v)?, len),
    };
    Ok(Value::from(char_slice(&s, start, end)))
}

fn string_substring(i: &mut Interp, s_: ObjId, this: Value, args: &[Value]) -> R {
    // substring swaps out-of-order indices; close enough to slice for our
    // purposes when indices are in order.
    string_slice(i, s_, this, args)
}

fn string_substr(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let len = s.chars().count();
    let start = match args.first() {
        Some(v) => norm_index(i.to_number_value(v)?, len),
        None => 0,
    };
    let count = match args.get(1) {
        Some(Value::Undefined) | None => len - start,
        Some(v) => i.to_number_value(v)?.max(0.0) as usize,
    };
    Ok(Value::from(char_slice(&s, start, start + count)))
}

fn string_to_upper(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let s = this_string(i, &this);
    Ok(Value::from(s.to_uppercase()))
}

fn string_to_lower(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let s = this_string(i, &this);
    Ok(Value::from(s.to_lowercase()))
}

fn string_trim(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let s = this_string(i, &this);
    Ok(Value::from(s.trim().to_string()))
}

fn string_split(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let sep = arg(args, 0);
    let parts: Vec<Value> = match &sep {
        Value::Undefined => vec![Value::from(s)],
        Value::Str(sep) if sep.is_empty() => {
            s.chars().map(|c| Value::str(c.to_string())).collect()
        }
        Value::Str(sep) => s.split(&**sep).map(Value::str).collect(),
        Value::Obj(_) => {
            // Regex separator: approximate by whitespace split.
            s.split_whitespace().map(Value::str).collect()
        }
        other => {
            let sep = i.to_string_value(other);
            s.split(&sep).map(Value::str).collect()
        }
    };
    let limited = match args.get(1) {
        Some(Value::Num(n)) => parts.into_iter().take(*n as usize).collect(),
        _ => parts,
    };
    Ok(new_array(i, limited))
}

fn string_replace(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let pat = arg(args, 0);
    let repl = arg(args, 1);
    match &pat {
        Value::Str(p) => {
            let replacement = if i.heap.is_callable(&repl) {
                let m = Value::Str(p.clone());
                let r = i.call_value(repl, Value::Undefined, &[m], None)?;
                i.to_string_value(&r)
            } else {
                i.to_string_value(&repl)
            };
            Ok(Value::from(s.replacen(&**p, &replacement, 1)))
        }
        // Regex pattern: return the string unchanged (approximation).
        _ => Ok(Value::from(s)),
    }
}

fn string_replace_all(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let pat = arg(args, 0);
    let repl = arg(args, 1);
    match &pat {
        Value::Str(p) => {
            let replacement = i.to_string_value(&repl);
            Ok(Value::from(s.replace(&**p, &replacement)))
        }
        _ => Ok(Value::from(s)),
    }
}

fn string_concat(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let mut s = this_string(i, &this);
    for a in args {
        s.push_str(&i.to_string_value(a));
    }
    Ok(Value::from(s))
}

fn string_repeat(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let n = i.to_number_value(&arg(args, 0))?.max(0.0) as usize;
    Ok(Value::from(s.repeat(n.min(10_000))))
}

fn string_pad_start(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let target = i.to_number_value(&arg(args, 0))?.max(0.0) as usize;
    let pad = match args.get(1) {
        Some(Value::Undefined) | None => " ".to_string(),
        Some(v) => i.to_string_value(v),
    };
    let mut out = String::new();
    while out.chars().count() + s.chars().count() < target && !pad.is_empty() {
        out.push_str(&pad);
    }
    let needed = target.saturating_sub(s.chars().count());
    let out: String = out.chars().take(needed).collect();
    Ok(Value::from(format!("{out}{s}")))
}

fn string_pad_end(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let s = this_string(i, &this);
    let target = i.to_number_value(&arg(args, 0))?.max(0.0) as usize;
    let pad = match args.get(1) {
        Some(Value::Undefined) | None => " ".to_string(),
        Some(v) => i.to_string_value(v),
    };
    let mut out = s.clone();
    while out.chars().count() < target && !pad.is_empty() {
        out.push_str(&pad);
    }
    let out: String = out.chars().take(target.max(s.chars().count())).collect();
    Ok(Value::from(out))
}

fn string_match(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Null)
}

fn string_search(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Num(-1.0))
}

// ----- Number / Math -----

fn number_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    match args.first() {
        Some(v) => Ok(Value::Num(i.to_number_value(v)?)),
        None => Ok(Value::Num(0.0)),
    }
}

fn boolean_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(Value::Bool(i.truthy(&arg(args, 0))))
}

fn number_is_integer(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(Value::Bool(matches!(
        arg(args, 0),
        Value::Num(n) if n.fract() == 0.0 && n.is_finite()
    ) && {
        let _ = i;
        true
    }))
}

fn number_to_string(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let n = i.to_number_value(&this)?;
    match args.first() {
        Some(Value::Num(radix)) if *radix != 10.0 => {
            let r = *radix as u32;
            if !(2..=36).contains(&r) || !n.is_finite() {
                return Ok(Value::from(crate::value::num_to_string(n)));
            }
            let mut v = n.trunc() as i64;
            let neg = v < 0;
            v = v.abs();
            let digits = "0123456789abcdefghijklmnopqrstuvwxyz".as_bytes();
            let mut out = Vec::new();
            if v == 0 {
                out.push(b'0');
            }
            while v > 0 {
                out.push(digits[(v % r as i64) as usize]);
                v /= r as i64;
            }
            if neg {
                out.push(b'-');
            }
            out.reverse();
            Ok(Value::from(String::from_utf8(out).unwrap_or_default()))
        }
        _ => Ok(Value::from(crate::value::num_to_string(n))),
    }
}

fn number_to_fixed(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let n = i.to_number_value(&this)?;
    let digits = i.to_number_value(&arg(args, 0))?.max(0.0) as usize;
    Ok(Value::from(format!("{:.*}", digits.min(20), n)))
}

macro_rules! math_unary {
    ($name:ident, $f:expr) => {
        fn $name(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
            let n = i.to_number_value(&arg(args, 0))?;
            #[allow(clippy::redundant_closure_call)]
            Ok(Value::Num(($f)(n)))
        }
    };
}

math_unary!(math_floor, f64::floor);
math_unary!(math_ceil, f64::ceil);
math_unary!(math_round, f64::round);
math_unary!(math_trunc, f64::trunc);
math_unary!(math_abs, f64::abs);
math_unary!(math_sqrt, f64::sqrt);
math_unary!(math_log, f64::ln);
math_unary!(math_exp, f64::exp);
math_unary!(math_sign, f64::signum);

fn math_pow(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let a = i.to_number_value(&arg(args, 0))?;
    let b = i.to_number_value(&arg(args, 1))?;
    Ok(Value::Num(a.powf(b)))
}

fn math_min(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let mut m = f64::INFINITY;
    for a in args {
        m = m.min(i.to_number_value(a)?);
    }
    Ok(Value::Num(m))
}

fn math_max(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let mut m = f64::NEG_INFINITY;
    for a in args {
        m = m.max(i.to_number_value(a)?);
    }
    Ok(Value::Num(m))
}

fn math_random(i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Num(i.next_random()))
}

// ----- globals -----

fn global_parse_int(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let s = i.to_string_value(&arg(args, 0));
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    // An explicit radix wins; otherwise a 0x prefix selects hex.
    let explicit = match args.get(1) {
        Some(Value::Num(r)) if *r >= 2.0 && *r <= 36.0 => Some(*r as u32),
        _ => None,
    };
    let has_hex_prefix = t.starts_with("0x") || t.starts_with("0X");
    let radix = explicit.unwrap_or(if has_hex_prefix { 16 } else { 10 });
    let t = if radix == 16 {
        t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")).unwrap_or(t)
    } else {
        t
    };
    let digits: String = t
        .chars()
        .take_while(|c| c.is_digit(radix))
        .collect();
    if digits.is_empty() {
        return Ok(Value::Num(f64::NAN));
    }
    let v = i64::from_str_radix(&digits, radix).unwrap_or(0) as f64;
    Ok(Value::Num(if neg { -v } else { v }))
}

fn global_parse_float(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let s = i.to_string_value(&arg(args, 0));
    let t = s.trim();
    // Longest numeric prefix.
    let mut end = 0;
    let bytes = t.as_bytes();
    let mut seen_dot = false;
    let mut seen_e = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let ok = c.is_ascii_digit()
            || (c == '-' && end == 0)
            || (c == '+' && end == 0)
            || (c == '.' && !seen_dot && !seen_e)
            || ((c == 'e' || c == 'E') && !seen_e && end > 0);
        if !ok {
            break;
        }
        if c == '.' {
            seen_dot = true;
        }
        if c == 'e' || c == 'E' {
            seen_e = true;
        }
        end += 1;
    }
    Ok(Value::Num(t[..end].parse().unwrap_or(f64::NAN)))
}

fn global_is_nan(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let n = i.to_number_value(&arg(args, 0))?;
    Ok(Value::Bool(n.is_nan()))
}

fn global_is_finite(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let n = i.to_number_value(&arg(args, 0))?;
    Ok(Value::Bool(n.is_finite()))
}

/// Indirect `eval` (direct eval is intercepted in the call evaluator and
/// runs in the caller's scope; this one runs in the global scope).
fn global_eval(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    match arg(args, 0) {
        Value::Str(code) => {
            let scope = i.global_scope();
            i.run_eval(&code, &scope)
        }
        other => Ok(other),
    }
}

fn symbol_stub(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let desc = match args.first() {
        Some(v) => i.to_string_value(v),
        None => String::new(),
    };
    let n = i.heap.len();
    Ok(Value::from(format!("Symbol({desc})#{n}")))
}

fn process_cwd(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::str("/"))
}

// ----- errors -----

fn error_ctor(i: &mut Interp, s: ObjId, _t: Value, args: &[Value]) -> R {
    let msg = match args.first() {
        Some(Value::Undefined) | None => String::new(),
        Some(v) => i.to_string_value(v),
    };
    // Use this constructor's prototype so `instanceof TypeError` works.
    let proto = match i.heap.own_prop(s, "prototype") {
        Some(Prop {
            value: PropValue::Data(Value::Obj(p)),
            ..
        }) => p,
        _ => i.protos.error,
    };
    let site = i.pending_new_loc.or(i.current_call_site);
    let e = i.heap.alloc_plain(Some(proto), site);
    i.tracer.on_alloc(site);
    i.heap.set_prop(e, "message", Value::from(msg));
    i.heap.set_prop(e, "stack", Value::str("Error\n    at <anonymous>"));
    Ok(Value::Obj(e))
}

fn error_to_string(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    let name = i.get_property(this.clone(), "name", None)?;
    let msg = i.get_property(this.clone(), "message", None)?;
    let name = i.to_string_value(&name);
    let msg = i.to_string_value(&msg);
    Ok(Value::from(if msg.is_empty() {
        name
    } else {
        format!("{name}: {msg}")
    }))
}

// ----- RegExp -----

fn regexp_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let site = i.pending_new_loc.or(i.current_call_site);
    let proto = i.protos.regexp;
    let o = i.heap.alloc_plain(Some(proto), site);
    i.tracer.on_alloc(site);
    let src = i.to_string_value(&arg(args, 0));
    let flags = match args.get(1) {
        Some(Value::Undefined) | None => String::new(),
        Some(v) => i.to_string_value(v),
    };
    i.heap.set_prop(o, "source", Value::from(src));
    i.heap.set_prop(o, "flags", Value::from(flags));
    i.heap.set_prop(o, "lastIndex", Value::Num(0.0));
    Ok(Value::Obj(o))
}

/// Regex matching is approximated: `test` succeeds (keeping the common
/// validation paths alive), `exec` yields no match.
fn regexp_test(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Bool(true))
}

fn regexp_exec(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Null)
}

// ----- Date -----

fn date_ctor(i: &mut Interp, s: ObjId, _t: Value, _a: &[Value]) -> R {
    let proto = match i.heap.own_prop(s, "prototype") {
        Some(Prop {
            value: PropValue::Data(Value::Obj(p)),
            ..
        }) => p,
        _ => i.protos.object,
    };
    let site = i.pending_new_loc.or(i.current_call_site);
    let d = i.heap.alloc_plain(Some(proto), site);
    i.tracer.on_alloc(site);
    let t = deterministic_now(i);
    i.heap.set_prop(d, "__time__", Value::Num(t));
    Ok(Value::Obj(d))
}

fn deterministic_now(i: &mut Interp) -> f64 {
    // A fixed epoch advanced by 1s per observation keeps runs reproducible
    // while still looking like a clock to the program.
    
    1_700_000_000_000.0 + (i.heap.len() as f64) * 1000.0
}

fn date_now(i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::Num(deterministic_now(i)))
}

fn date_get_time(i: &mut Interp, _s: ObjId, this: Value, _a: &[Value]) -> R {
    match this.as_obj() {
        Some(id) => match i.heap.own_prop(id, "__time__") {
            Some(Prop {
                value: PropValue::Data(v),
                ..
            }) => Ok(v),
            _ => Ok(Value::Num(0.0)),
        },
        None => Ok(Value::Num(0.0)),
    }
}

fn date_to_iso(_i: &mut Interp, _s: ObjId, _t: Value, _a: &[Value]) -> R {
    Ok(Value::str("2023-11-14T22:13:20.000Z"))
}

// ----- Promise -----

fn promise_new(i: &mut Interp, state: &str, value: Value) -> Value {
    let proto = i.protos.promise;
    let p = i.heap.alloc_plain(Some(proto), None);
    i.heap.set_prop(p, "__state__", Value::str(state));
    i.heap.set_prop(p, "__value__", value);
    Value::Obj(p)
}

fn promise_ctor(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let p = promise_new(i, "pending", Value::Undefined);
    let executor = arg(args, 0);
    if i.heap.is_callable(&executor) {
        let resolve = make_native(i, "promise_resolve_fn");
        let reject = make_native(i, "promise_reject_fn");
        for f in [&resolve, &reject] {
            if let Some(fid) = f.as_obj() {
                set_hidden(i, fid, "__promise__", p.clone());
            }
        }
        // Executors run synchronously here.
        let _ = i.call_value(executor, Value::Undefined, &[resolve, reject], None);
    }
    Ok(p)
}

fn promise_settle(i: &mut Interp, s: ObjId, state: &str, args: &[Value]) -> R {
    if let Some(Prop {
        value: PropValue::Data(Value::Obj(p)),
        ..
    }) = i.heap.own_prop(s, "__promise__")
    {
        i.heap.set_prop(p, "__state__", Value::str(state));
        i.heap.set_prop(p, "__value__", arg(args, 0));
    }
    Ok(Value::Undefined)
}

fn promise_resolve_fn(i: &mut Interp, s: ObjId, _t: Value, args: &[Value]) -> R {
    promise_settle(i, s, "fulfilled", args)
}

fn promise_reject_fn(i: &mut Interp, s: ObjId, _t: Value, args: &[Value]) -> R {
    promise_settle(i, s, "rejected", args)
}

fn promise_state(i: &Interp, p: &Value) -> (String, Value) {
    let Some(id) = p.as_obj() else {
        return ("fulfilled".into(), p.clone());
    };
    let state = match i.heap.own_prop(id, "__state__") {
        Some(Prop {
            value: PropValue::Data(Value::Str(s)),
            ..
        }) => s.to_string(),
        _ => return ("fulfilled".into(), p.clone()),
    };
    let value = match i.heap.own_prop(id, "__value__") {
        Some(Prop {
            value: PropValue::Data(v),
            ..
        }) => v,
        _ => Value::Undefined,
    };
    (state, value)
}

fn promise_then(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let (state, value) = promise_state(i, &this);
    let on_ok = arg(args, 0);
    let on_err = arg(args, 1);
    let result = match state.as_str() {
        "fulfilled" if i.heap.is_callable(&on_ok) => {
            i.call_value(on_ok, Value::Undefined, &[value], None)?
        }
        "rejected" if i.heap.is_callable(&on_err) => {
            i.call_value(on_err, Value::Undefined, &[value], None)?
        }
        _ => value,
    };
    Ok(promise_new(i, "fulfilled", result))
}

fn promise_catch(i: &mut Interp, s: ObjId, this: Value, args: &[Value]) -> R {
    promise_then(i, s, this, &[Value::Undefined, arg(args, 0)])
}

fn promise_finally(i: &mut Interp, _s: ObjId, this: Value, args: &[Value]) -> R {
    let cb = arg(args, 0);
    if i.heap.is_callable(&cb) {
        i.call_value(cb, Value::Undefined, &[], None)?;
    }
    Ok(this)
}

fn promise_resolve_static(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(promise_new(i, "fulfilled", arg(args, 0)))
}

fn promise_reject_static(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    Ok(promise_new(i, "rejected", arg(args, 0)))
}

fn promise_all(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let items = i.iterate_values(&arg(args, 0))?;
    let mut values = Vec::with_capacity(items.len());
    for item in items {
        let (_, v) = promise_state(i, &item);
        values.push(v);
    }
    let arr = new_array(i, values);
    Ok(promise_new(i, "fulfilled", arr))
}

// ----- JSON -----

fn json_stringify(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let mut out = String::new();
    if stringify_value(i, &arg(args, 0), &mut out, 0) {
        Ok(Value::from(out))
    } else {
        Ok(Value::Undefined)
    }
}

fn stringify_value(i: &mut Interp, v: &Value, out: &mut String, depth: u32) -> bool {
    if depth > 24 {
        out.push_str("null");
        return true;
    }
    match v {
        Value::Undefined => false,
        Value::Null => {
            out.push_str("null");
            true
        }
        Value::Bool(b) => {
            out.push_str(if *b { "true" } else { "false" });
            true
        }
        Value::Num(n) => {
            if n.is_finite() {
                out.push_str(&crate::value::num_to_string(*n));
            } else {
                out.push_str("null");
            }
            true
        }
        Value::Str(s) => {
            out.push_str(&aji_ast::print::quote_str(s));
            true
        }
        Value::Obj(id) => {
            let kind = i.heap.get(*id).kind.clone();
            match kind {
                ObjKind::Array(elems) => {
                    out.push('[');
                    for (k, e) in elems.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        if !stringify_value(i, e, out, depth + 1) {
                            out.push_str("null");
                        }
                    }
                    out.push(']');
                    true
                }
                ObjKind::Function(_) | ObjKind::Native(_) | ObjKind::Proxy => false,
                ObjKind::Plain => {
                    out.push('{');
                    let mut first = true;
                    for k in i.heap.own_enumerable_keys(*id) {
                        let pv = match i.get_property(v.clone(), &k, None) {
                            Ok(pv) => pv,
                            Err(_) => continue,
                        };
                        let mut piece = String::new();
                        if stringify_value(i, &pv, &mut piece, depth + 1) {
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            out.push_str(&aji_ast::print::quote_str(&k));
                            out.push(':');
                            out.push_str(&piece);
                        }
                    }
                    out.push('}');
                    true
                }
            }
        }
    }
}

fn json_parse(i: &mut Interp, _s: ObjId, _t: Value, args: &[Value]) -> R {
    let text = i.to_string_value(&arg(args, 0));
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    match p.value(i) {
        Some(v) => Ok(v),
        None => Err(i.throw_error("SyntaxError", "Unexpected token in JSON")),
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn value(&mut self, i: &mut Interp) -> Option<Value> {
        self.ws();
        match self.peek() {
            b'{' => {
                self.pos += 1;
                let site = i.current_call_site;
                let o = i.heap.alloc_plain(Some(i.protos.object), site);
                i.tracer.on_alloc(site);
                self.ws();
                if self.peek() == b'}' {
                    self.pos += 1;
                    return Some(Value::Obj(o));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    if self.peek() != b':' {
                        return None;
                    }
                    self.pos += 1;
                    let v = self.value(i)?;
                    i.heap.set_prop(o, &k, v);
                    self.ws();
                    match self.peek() {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Some(Value::Obj(o));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut elems = Vec::new();
                self.ws();
                if self.peek() == b']' {
                    self.pos += 1;
                    return Some(new_array(i, elems));
                }
                loop {
                    let v = self.value(i)?;
                    elems.push(v);
                    self.ws();
                    match self.peek() {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Some(new_array(i, elems));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => self.string().map(Value::from),
            b't' => {
                if self.bytes[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    Some(Value::Bool(true))
                } else {
                    None
                }
            }
            b'f' => {
                if self.bytes[self.pos..].starts_with(b"false") {
                    self.pos += 5;
                    Some(Value::Bool(false))
                } else {
                    None
                }
            }
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Some(Value::Null)
                } else {
                    None
                }
            }
            _ => {
                let start = self.pos;
                if self.peek() == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Value::Num)
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.peek() != b'"' {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let c = self.peek();
            self.pos += 1;
            match c {
                0 => return None,
                b'"' => return Some(out),
                b'\\' => {
                    let e = self.peek();
                    self.pos += 1;
                    match e {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => out.push(other as char),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                c => {
                    let start = self.pos - 1;
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    self.pos = (start + len).min(self.bytes.len());
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }
}

/// Table of every native, used by [`native_id`].
static NATIVE_TABLE: &[(&str, NativeFn)] = &[
    ("noop", noop),
    ("identity_this", identity_this),
    ("identity_first_arg", identity_first_arg),
    ("identity_first_arg_str", identity_first_arg_str),
    ("return_false", return_false),
    ("console_log", console_log),
    ("timer_immediate", timer_immediate),
    ("mock_io", mock_io),
    ("require", require),
    ("require_resolve", require_resolve),
    ("object_ctor", object_ctor),
    ("object_keys", object_keys),
    ("object_values", object_values),
    ("object_entries", object_entries),
    ("object_assign", object_assign),
    ("object_create", object_create),
    ("object_define_property", object_define_property),
    ("object_define_properties", object_define_properties),
    ("object_get_own_property_names", object_get_own_property_names),
    (
        "object_get_own_property_descriptor",
        object_get_own_property_descriptor,
    ),
    ("object_get_prototype_of", object_get_prototype_of),
    ("object_set_prototype_of", object_set_prototype_of),
    ("object_has_own", object_has_own),
    ("object_to_string", object_to_string),
    ("object_is_prototype_of", object_is_prototype_of),
    ("object_prop_is_enumerable", object_prop_is_enumerable),
    ("function_call", function_call),
    ("function_apply", function_apply),
    ("function_bind", function_bind),
    ("function_to_string", function_to_string),
    ("function_ctor", function_ctor),
    ("array_ctor", array_ctor),
    ("array_is_array", array_is_array),
    ("array_from", array_from),
    ("array_of", array_of),
    ("array_push", array_push),
    ("array_pop", array_pop),
    ("array_shift", array_shift),
    ("array_unshift", array_unshift),
    ("array_slice", array_slice),
    ("array_splice", array_splice),
    ("array_concat", array_concat),
    ("array_join", array_join),
    ("array_index_of", array_index_of),
    ("array_last_index_of", array_last_index_of),
    ("array_includes", array_includes),
    ("array_for_each", array_for_each),
    ("array_map", array_map),
    ("array_filter", array_filter),
    ("array_reduce", array_reduce),
    ("array_reduce_right", array_reduce_right),
    ("array_some", array_some),
    ("array_every", array_every),
    ("array_find", array_find),
    ("array_find_index", array_find_index),
    ("array_sort", array_sort),
    ("array_reverse", array_reverse),
    ("array_fill", array_fill),
    ("array_flat", array_flat),
    ("array_to_string", array_to_string),
    ("string_ctor", string_ctor),
    ("string_from_char_code", string_from_char_code),
    ("string_char_at", string_char_at),
    ("string_char_code_at", string_char_code_at),
    ("string_index_of", string_index_of),
    ("string_last_index_of", string_last_index_of),
    ("string_includes", string_includes),
    ("string_starts_with", string_starts_with),
    ("string_ends_with", string_ends_with),
    ("string_slice", string_slice),
    ("string_substring", string_substring),
    ("string_substr", string_substr),
    ("string_to_upper", string_to_upper),
    ("string_to_lower", string_to_lower),
    ("string_trim", string_trim),
    ("string_split", string_split),
    ("string_replace", string_replace),
    ("string_replace_all", string_replace_all),
    ("string_concat", string_concat),
    ("string_repeat", string_repeat),
    ("string_pad_start", string_pad_start),
    ("string_pad_end", string_pad_end),
    ("string_match", string_match),
    ("string_search", string_search),
    ("number_ctor", number_ctor),
    ("boolean_ctor", boolean_ctor),
    ("number_is_integer", number_is_integer),
    ("number_to_string", number_to_string),
    ("number_to_fixed", number_to_fixed),
    ("math_floor", math_floor),
    ("math_ceil", math_ceil),
    ("math_round", math_round),
    ("math_trunc", math_trunc),
    ("math_abs", math_abs),
    ("math_sqrt", math_sqrt),
    ("math_pow", math_pow),
    ("math_min", math_min),
    ("math_max", math_max),
    ("math_random", math_random),
    ("math_log", math_log),
    ("math_exp", math_exp),
    ("math_sign", math_sign),
    ("global_parse_int", global_parse_int),
    ("global_parse_float", global_parse_float),
    ("global_is_nan", global_is_nan),
    ("global_is_finite", global_is_finite),
    ("global_eval", global_eval),
    ("symbol_stub", symbol_stub),
    ("process_cwd", process_cwd),
    ("error_ctor", error_ctor),
    ("error_to_string", error_to_string),
    ("regexp_ctor", regexp_ctor),
    ("regexp_test", regexp_test),
    ("regexp_exec", regexp_exec),
    ("date_ctor", date_ctor),
    ("date_now", date_now),
    ("date_get_time", date_get_time),
    ("date_to_iso", date_to_iso),
    ("promise_ctor", promise_ctor),
    ("promise_resolve_fn", promise_resolve_fn),
    ("promise_reject_fn", promise_reject_fn),
    ("promise_then", promise_then),
    ("promise_catch", promise_catch),
    ("promise_finally", promise_finally),
    ("promise_resolve_static", promise_resolve_static),
    ("promise_reject_static", promise_reject_static),
    ("promise_all", promise_all),
    ("json_stringify", json_stringify),
    ("json_parse", json_parse),
];
