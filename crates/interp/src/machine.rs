//! The interpreter: state, module system, call machinery.
//!
//! Statement execution lives in `stmts.rs`, expression evaluation in
//! `exprs.rs` and property access / conversions in `props.rs`; they are all
//! `impl Interp` blocks over the state defined here.

use crate::builtins::{self, NativeEntry};
use crate::env::{Scope, ScopeKind, ScopeRef};
use crate::error::{BudgetKind, Flow, JsError};
use crate::heap::{FuncData, Heap, ObjKind, Prop};
use crate::obs::InterpObs;
use crate::profile::Profiler;
use crate::registry::FuncRegistry;
use crate::tracer::{NoopTracer, Tracer};
use crate::value::{ObjId, Value};
use aji_ast::ast::{Function, Module};
use aji_ast::{Loc, NodeIdGen, Project, SourceMap, Span};
use std::collections::HashMap;
use std::rc::Rc;

/// Tuning knobs for an interpreter instance.
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Run with approximate-interpretation semantics: unknown values are
    /// represented by the proxy `p*`, calls on the proxy are no-ops,
    /// unresolved identifiers/modules yield the proxy, and calling a
    /// non-callable yields the proxy instead of throwing.
    pub approx: bool,
    /// Maximum number of evaluation steps before aborting with a budget
    /// error.
    pub max_steps: u64,
    /// Maximum JavaScript call-stack depth.
    pub max_stack: u32,
    /// Maximum iterations of any single loop execution (the paper's
    /// long-running-loop abort).
    pub max_loop_iters: u64,
    /// Execute compiled-subset function bodies on the bytecode VM
    /// (`aji-bytecode`) instead of tree-walking them. Observationally
    /// identical — same steps, tracer events and budgets — just faster;
    /// disable to force the tree-walker (differential testing).
    pub use_vm: bool,
    /// Emit [`crate::Tracer::on_prop_access`] events for *static* member
    /// reads (and string-keyed computed reads) on plain objects — the feed
    /// of the `aji-quant` statistical property-access finder. Off by
    /// default: the event carries the receiver's own-key shape, which the
    /// VM's inline-cache hit path cannot reconstruct, so turning this on
    /// forces the tree-walker for function bodies (`use_vm` is ignored).
    pub observe_props: bool,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            approx: false,
            max_steps: 20_000_000,
            max_stack: 64,
            max_loop_iters: 500_000,
            use_vm: true,
            observe_props: false,
        }
    }
}

impl InterpOptions {
    /// The defaults the approximate interpreter uses: proxy semantics on,
    /// tighter budgets (the pre-analysis favors breadth over depth).
    pub fn approx_defaults() -> Self {
        InterpOptions {
            approx: true,
            max_steps: 5_000_000,
            max_stack: 48,
            max_loop_iters: 10_000,
            use_vm: true,
            observe_props: false,
        }
    }

    /// Folds every semantics-affecting field into `h`, so caches keyed on
    /// the digest (the `aji serve` hint store) never serve a result
    /// computed under different budgets or engine settings.
    ///
    /// `use_vm` is deliberately **excluded**: the bytecode VM is
    /// observationally identical to the tree-walker (pinned by
    /// `tests/bytecode_differential.rs`), so both engines may share cache
    /// entries. `observe_props` is excluded for the same reason — it adds
    /// tracer events but never changes a computed result, so an observing
    /// run may reuse cached analysis answers.
    pub fn fingerprint_into(&self, h: &mut aji_support::Fnv64) {
        h.write_u64(u64::from(self.approx));
        h.write_u64(self.max_steps);
        h.write_u64(u64::from(self.max_stack));
        h.write_u64(self.max_loop_iters);
    }
}

/// Builtin prototype objects.
#[derive(Debug, Clone, Copy)]
pub struct Protos {
    /// `Object.prototype`.
    pub object: ObjId,
    /// `Function.prototype`.
    pub function: ObjId,
    /// `Array.prototype`.
    pub array: ObjId,
    /// String wrapper prototype (methods for string primitives).
    pub string: ObjId,
    /// Number wrapper prototype.
    pub number: ObjId,
    /// Boolean wrapper prototype.
    pub boolean: ObjId,
    /// `Error.prototype`.
    pub error: ObjId,
    /// RegExp prototype.
    pub regexp: ObjId,
    /// Promise prototype.
    pub promise: ObjId,
}

/// A tree-walking JavaScript interpreter over an in-memory [`Project`].
///
/// One instance owns its parse of the project (node ids and source
/// locations are deterministic, so they agree with any other parse of the
/// same project — the static analysis relies on this), its heap, and a
/// [`Tracer`] receiving instrumentation events.
pub struct Interp {
    /// The object heap.
    pub heap: Heap,
    /// Options.
    pub opts: InterpOptions,
    /// Instrumentation sink.
    pub tracer: Box<dyn Tracer>,
    /// Function-definition registry.
    pub registry: FuncRegistry,
    /// Source map: project files first, then prelude/eval files.
    pub source_map: SourceMap,
    /// Console output captured from `console.log` and friends.
    pub console: Vec<String>,
    /// Observability counters (no-op handles when `aji-obs` is inactive).
    pub obs: InterpObs,

    pub(crate) modules: Vec<Rc<Module>>,
    pub(crate) paths: Vec<String>,
    pub(crate) project_file_count: usize,
    pub(crate) global_scope: ScopeRef,
    pub(crate) global_obj: ObjId,
    pub(crate) protos: Protos,
    pub(crate) proxy: ObjId,
    pub(crate) natives: Vec<NativeEntry>,
    pub(crate) module_cache: HashMap<usize, ObjId>,
    pub(crate) builtin_cache: HashMap<String, Value>,
    pub(crate) ids: NodeIdGen,
    pub(crate) steps: u64,
    /// Steps already folded into the `interp.steps` counter; the
    /// remainder is batched in on flush/reset (one atomic add instead of
    /// one per step — the hot path stays counter-free).
    pub(crate) steps_reported: u64,
    /// Inline-cache hits not yet folded into `interp.ic_hits` (same
    /// batching; a plain integer increment on the VM's hottest path).
    pub(crate) ic_hits_pending: u64,
    pub(crate) depth: u32,
    pub(crate) eval_depth: u32,
    pub(crate) rng: u64,
    pub(crate) current_call_site: Option<Loc>,
    pub(crate) pending_new_loc: Option<Loc>,
    pub(crate) pending_label: Option<String>,
    /// Whether the current run has already recorded a budget exhaustion.
    /// One exhausted run counts exactly once in `obs.budget_exhaustions`,
    /// however many budget errors surface while it unwinds (`finally`
    /// blocks keep executing — and stepping — after an uncatchable
    /// `Budget` error).
    pub(crate) budget_tripped: bool,
    /// Per-definition bytecode cache: `Some` holds the compiled chunk,
    /// `None` memoizes a compiler bail (the definition tree-walks forever).
    pub(crate) vm_cache: HashMap<aji_ast::NodeId, Option<Rc<crate::vm::VmCode>>>,
    /// Step-attributed hot-function profiler, present only when the
    /// registry active at construction carried a flight recorder with
    /// profiling on. Flushed into that registry when the interpreter
    /// drops (or explicitly via [`Interp::flush_profile`]).
    pub(crate) profiler: Option<Box<Profiler>>,
}

impl Interp {
    /// Parses `project` and builds an interpreter with default options and
    /// no tracer.
    ///
    /// # Errors
    ///
    /// Returns the first parse error in the project.
    pub fn new(project: &Project) -> Result<Interp, aji_parser::ParseError> {
        Interp::with_options(project, InterpOptions::default(), Box::new(NoopTracer))
    }

    /// Parses `project` and builds an interpreter with the given options
    /// and tracer.
    ///
    /// # Errors
    ///
    /// Returns the first parse error in the project.
    pub fn with_options(
        project: &Project,
        opts: InterpOptions,
        tracer: Box<dyn Tracer>,
    ) -> Result<Interp, aji_parser::ParseError> {
        let parsed = aji_parser::parse_project(project)?;
        Ok(Interp::with_parsed(project, &parsed, opts, tracer))
    }

    /// Builds an interpreter over an already-parsed project, sharing the
    /// parse with other pipeline phases (the modules are reference-counted;
    /// only the source map and id generator are cloned, so the interpreter
    /// can extend them with prelude/`eval` files without touching the
    /// caller's copy).
    ///
    /// `parsed` must be the parse of `project` (paths and the test driver
    /// come from `project`).
    pub fn with_parsed(
        project: &Project,
        parsed: &aji_parser::ParsedProject,
        opts: InterpOptions,
        tracer: Box<dyn Tracer>,
    ) -> Interp {
        let parsed = parsed.clone();
        let mut registry = FuncRegistry::new();
        for m in &parsed.modules {
            registry.add_module(m, &parsed.source_map);
        }
        let project_file_count = parsed.source_map.len();
        let mut heap = Heap::new();

        // Placeholder prototype ids; builtins::install fills them in.
        let global_obj = heap.alloc(ObjKind::Plain);
        let proxy = heap.alloc(ObjKind::Proxy);

        let global_scope = Scope::new(ScopeKind::Global, None);
        global_scope.borrow_mut().this_val = Some(Value::Obj(global_obj));

        let obs = InterpObs::bind();
        let profiler = obs
            .recorder
            .as_ref()
            .filter(|r| r.config().profile)
            .map(|_| Box::new(Profiler::new()));
        let mut interp = Interp {
            heap,
            opts,
            tracer,
            registry,
            source_map: parsed.source_map,
            console: Vec::new(),
            obs,
            modules: parsed.modules,
            paths: project.files.iter().map(|f| f.path.clone()).collect(),
            project_file_count,
            global_scope,
            global_obj,
            protos: Protos {
                object: ObjId(0),
                function: ObjId(0),
                array: ObjId(0),
                string: ObjId(0),
                number: ObjId(0),
                boolean: ObjId(0),
                error: ObjId(0),
                regexp: ObjId(0),
                promise: ObjId(0),
            },
            proxy,
            natives: Vec::new(),
            module_cache: HashMap::new(),
            builtin_cache: HashMap::new(),
            ids: parsed.ids,
            steps: 0,
            steps_reported: 0,
            ic_hits_pending: 0,
            depth: 0,
            eval_depth: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            current_call_site: None,
            pending_new_loc: None,
            pending_label: None,
            budget_tripped: false,
            vm_cache: HashMap::new(),
            profiler,
        };
        builtins::install(&mut interp);
        interp
    }

    /// The singleton unknown-value proxy `p*`.
    pub fn proxy_value(&self) -> Value {
        Value::Obj(self.proxy)
    }

    /// The global object.
    pub fn global_object(&self) -> Value {
        Value::Obj(self.global_obj)
    }

    /// The global scope (useful for binding extra test hooks).
    pub fn global_scope(&self) -> ScopeRef {
        self.global_scope.clone()
    }

    /// Number of evaluation steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets the step budget (the approximate interpreter resets it per
    /// worklist item so one long-running module cannot starve the rest).
    pub fn reset_steps(&mut self) {
        // Settle everything owed at the old counter value, then re-base:
        // the batched `interp.steps` delta and the profiler's mark both
        // use delta accounting against `self.steps`.
        self.flush_batched_counters();
        let now = self.steps;
        if let Some(p) = self.profiler.as_deref_mut() {
            p.sync(now);
            p.rebase(0);
        }
        self.steps = 0;
        self.steps_reported = 0;
        self.budget_tripped = false;
    }

    /// Folds the batched hot-path tallies (steps, IC hits) into their
    /// observability counters. Called on flush/drop and before any
    /// re-basing of `self.steps`; hot paths only bump plain integers.
    fn flush_batched_counters(&mut self) {
        let d = self.steps - self.steps_reported;
        if d > 0 {
            self.obs.steps.add(d);
            self.steps_reported = self.steps;
        }
        if self.ic_hits_pending > 0 {
            self.obs.ic_hits.add(self.ic_hits_pending);
            self.ic_hits_pending = 0;
        }
    }

    /// Raises a budget error, counting the exhaustion once per run: the
    /// first trip increments `obs.budget_exhaustions`; repeat trips while
    /// the same run unwinds (or keeps stepping through `finally` blocks)
    /// reuse the flag and stay silent. [`Interp::reset_steps`] and the
    /// public entry points arm the flag again.
    pub(crate) fn trip_budget(&mut self, kind: BudgetKind) -> JsError {
        if !self.budget_tripped {
            self.budget_tripped = true;
            self.obs.budget_exhaustions.inc();
            let name = match kind {
                BudgetKind::Steps => "steps",
                BudgetKind::Stack => "stack",
                BudgetKind::Loop => "loop",
            };
            self.trace(aji_obs::TraceKind::BudgetTrip, name, "");
        }
        JsError::Budget(kind)
    }

    /// Records a flight-recorder event stamped with the current step
    /// index, when the construction-time registry had a recorder.
    #[cold]
    pub(crate) fn trace(&self, kind: aji_obs::TraceKind, name: &str, detail: &str) {
        if let Some(rec) = &self.obs.recorder {
            rec.record_at(self.steps, kind, name, detail);
        }
    }

    /// Human-readable profile/trace key of a function: `name@file:line`
    /// (`<anon>` for unnamed functions).
    pub(crate) fn fn_display_key(&self, name: Option<&str>, span: Span) -> String {
        let loc = self.source_map.loc(span);
        let file = &self.source_map.file(span.file).path;
        format!("{}@{}:{}", name.unwrap_or("<anon>"), file, loc.line)
    }

    /// Pushes a profiled call frame for `def` (no-op without a profiler).
    #[cold]
    fn profile_enter(&mut self, def: &Rc<Function>) {
        let now = self.steps;
        if let Some(mut p) = self.profiler.take() {
            p.enter(def.id, now, || {
                self.fn_display_key(def.name.as_deref(), def.span)
            });
            self.profiler = Some(p);
        }
    }

    /// Pops the current profiled call frame (no-op without a profiler).
    #[cold]
    fn profile_exit(&mut self) {
        let now = self.steps;
        if let Some(p) = self.profiler.as_deref_mut() {
            p.exit(now);
        }
    }

    /// Flushes the hot-function profile and heap gauge into the registry
    /// bound at construction. Runs automatically on drop; calling it
    /// earlier flushes once and disarms the drop hook.
    pub fn flush_profile(&mut self) {
        self.flush_batched_counters();
        let Some(reg) = self.obs.registry.clone() else {
            return;
        };
        if self.obs.recorder.is_some() {
            reg.gauge_max("interp.peak_heap_objects", self.heap.len() as u64);
        }
        let now = self.steps;
        if let Some(mut p) = self.profiler.take() {
            p.flush(now, &reg);
        }
    }

    /// Creates the receiver wrapper of §3: an object that behaves like
    /// `base` for its known properties but yields the proxy `p*` for
    /// absent ones ("we wrap it into a proxy object that delegates to p*
    /// for absent properties").
    pub fn make_this_wrapper(&mut self, base: ObjId) -> Value {
        let w = self.heap.alloc_plain(Some(base), None);
        self.heap.set_prop(w, "__proxy_fallback__", Value::Bool(true));
        if let Some(p) = self.heap.get_mut(w).props.get_mut("__proxy_fallback__") {
            p.enumerable = false;
        }
        Value::Obj(w)
    }

    /// Allocation site of a value, if it is an object created by
    /// statically known code (the paper's `loc` map).
    pub fn loc_of(&self, v: &Value) -> Option<Loc> {
        v.as_obj().and_then(|id| self.heap.get(id).born_at)
    }

    /// The source location of a span, unless the span belongs to
    /// dynamically generated or prelude code (whose locations must not be
    /// used as allocation sites).
    pub(crate) fn static_loc(&self, span: Span) -> Option<Loc> {
        if self.eval_depth > 0 || span.file.index() >= self.project_file_count {
            None
        } else {
            Some(self.source_map.loc(span))
        }
    }

    #[inline]
    pub(crate) fn step(&mut self) -> Result<(), JsError> {
        self.steps += 1;
        if self.steps > self.opts.max_steps {
            Err(self.trip_budget(BudgetKind::Steps))
        } else {
            Ok(())
        }
    }

    /// Throws a JavaScript `Error` with the given name and message.
    pub fn throw_error(&mut self, name: &str, msg: impl AsRef<str>) -> JsError {
        let obj = self.heap.alloc(ObjKind::Plain);
        self.heap.get_mut(obj).proto = Some(self.protos.error);
        self.heap.set_prop(obj, "name", Value::str(name));
        self.heap.set_prop(obj, "message", Value::str(msg.as_ref()));
        JsError::Thrown(Value::Obj(obj))
    }

    // ----- module system -----

    /// Runs the module at `path` (loading it if needed) and returns its
    /// exports. This is the entry point used for both the main module and
    /// test drivers.
    ///
    /// # Errors
    ///
    /// Returns any uncaught exception, budget exhaustion or missing-module
    /// error.
    pub fn run_module(&mut self, path: &str) -> Result<Value, JsError> {
        self.budget_tripped = false;
        let Some(idx) = self.paths.iter().position(|p| p == path) else {
            return Err(self.throw_error("Error", format!("Cannot find module '{path}'")));
        };
        self.require_index(idx)
    }

    /// Loads a project module by file index, returning `module.exports`.
    pub(crate) fn require_index(&mut self, idx: usize) -> Result<Value, JsError> {
        if let Some(&mobj) = self.module_cache.get(&idx) {
            return Ok(self.exports_of(mobj));
        }
        // Create the module object eagerly so cyclic requires observe the
        // partial exports, as in Node. The sentinel locations (line 0)
        // identify these analysis-relevant objects to the static analysis:
        // hints mentioning them map onto the `Exports`/`ModuleObj` tokens.
        let file = aji_ast::FileId(idx as u32);
        let exports = self
            .heap
            .alloc_plain(Some(self.protos.object), Some(Loc::new(file, 0, 0)));
        let mobj = self
            .heap
            .alloc_plain(Some(self.protos.object), Some(Loc::new(file, 0, 1)));
        self.heap
            .set_prop(mobj, "exports", Value::Obj(exports));
        self.heap
            .set_prop(mobj, "id", Value::str(&self.paths[idx]));
        self.module_cache.insert(idx, mobj);

        let module_rc = self.modules[idx].clone();
        let scope = Scope::new(ScopeKind::Module, Some(self.global_scope.clone()));
        scope.borrow_mut().this_val = Some(Value::Obj(exports));
        {
            let mut s = scope.borrow_mut();
            s.declare("module", Value::Obj(mobj));
            s.declare("exports", Value::Obj(exports));
            let req = self.make_require(idx);
            s.declare("require", req);
            s.declare("__filename", Value::str(&self.paths[idx]));
            s.declare("__dirname", Value::str(dirname(&self.paths[idx])));
        }
        let result = self.exec_module_body(&module_rc, &scope);
        match result {
            Ok(()) => Ok(self.exports_of(mobj)),
            Err(e) => {
                // Leave the partial exports cached (Node keeps failed
                // modules out of the cache, but keeping them maximizes the
                // information available to the pre-analysis).
                Err(e)
            }
        }
    }

    fn exec_module_body(&mut self, module: &Rc<Module>, scope: &ScopeRef) -> Result<(), JsError> {
        self.hoist(&module.body, scope)?;
        for stmt in &module.body {
            match self.exec_stmt(stmt, scope)? {
                Flow::Normal => {}
                _ => break,
            }
        }
        Ok(())
    }

    pub(crate) fn exports_of(&self, mobj: ObjId) -> Value {
        match self.heap.own_prop(mobj, "exports") {
            Some(p) => match p.value {
                crate::heap::PropValue::Data(v) => v,
                _ => Value::Undefined,
            },
            None => Value::Undefined,
        }
    }

    /// Creates the `require` function for the module at file index `idx`.
    pub(crate) fn make_require(&mut self, idx: usize) -> Value {
        let nid = builtins::native_id(self, "require");
        let f = self.heap.alloc(ObjKind::Native(nid));
        self.heap.get_mut(f).proto = Some(self.protos.function);
        self.heap
            .set_prop(f, "__module_index__", Value::Num(idx as f64));
        // `require.cache`, `require.resolve` are occasionally touched.
        let resolve = builtins::make_native(self, "require_resolve");
        self.heap.set_prop(f, "resolve", resolve);
        Value::Obj(f)
    }

    /// Resolves a module specifier relative to the file at `from_idx`.
    /// Returns a project file index.
    pub(crate) fn resolve_module(&self, from_idx: usize, name: &str) -> Option<usize> {
        let find = |p: &str| self.paths.iter().position(|q| q == p);
        let with_suffixes = |base: &str| -> Option<usize> {
            if let Some(i) = find(base) {
                return Some(i);
            }
            if let Some(i) = find(&format!("{base}.js")) {
                return Some(i);
            }
            if let Some(i) = find(&format!("{base}/index.js")) {
                return Some(i);
            }
            find(&format!("{base}.json"))
        };
        if name.starts_with("./") || name.starts_with("../") || name.starts_with('/') {
            let from_dir = dirname(&self.paths[from_idx]);
            let joined = normalize_path(&join_path(&from_dir, name));
            return with_suffixes(&joined);
        }
        // Package specifier: walk up from the requiring file's directory
        // looking in `node_modules`.
        let mut dir = dirname(&self.paths[from_idx]);
        loop {
            let candidate = if dir.is_empty() {
                format!("node_modules/{name}")
            } else {
                format!("{dir}/node_modules/{name}")
            };
            if let Some(i) = with_suffixes(&candidate) {
                return Some(i);
            }
            if dir.is_empty() {
                return None;
            }
            dir = dirname(&dir);
        }
    }

    /// Loads the module named `name` from the module at `from_idx`:
    /// Node core modules first (prelude implementations or sandbox mocks),
    /// then project files. Used by the `require` native.
    pub(crate) fn load_module(
        &mut self,
        from_idx: usize,
        name: &str,
        site: Option<Loc>,
    ) -> Result<Value, JsError> {
        let is_pathy = name.starts_with("./") || name.starts_with("../") || name.starts_with('/');
        if !is_pathy {
            if let Some(v) = self.builtin_cache.get(name) {
                if let Some(s) = site {
                    self.tracer.on_require(s, name, None);
                }
                return Ok(v.clone());
            }
            if let Some(src) = crate::prelude::source(name) {
                let v = self.load_prelude(name, src)?;
                self.builtin_cache.insert(name.to_string(), v.clone());
                if let Some(s) = site {
                    self.tracer.on_require(s, name, None);
                }
                return Ok(v);
            }
            if crate::prelude::is_mocked(name) {
                let v = builtins::make_mock(self, name);
                self.builtin_cache.insert(name.to_string(), v.clone());
                if let Some(s) = site {
                    self.tracer.on_require(s, name, None);
                }
                return Ok(v);
            }
        }
        match self.resolve_module(from_idx, name) {
            Some(idx) => {
                let path = self.paths[idx].clone();
                if let Some(s) = site {
                    self.tracer.on_require(s, name, Some(&path));
                }
                if path.ends_with(".json") {
                    return self.load_json_module(idx);
                }
                self.require_index(idx)
            }
            None => {
                if let Some(s) = site {
                    self.tracer.on_require(s, name, None);
                }
                if self.opts.approx {
                    Ok(self.proxy_value())
                } else {
                    Err(self.throw_error(
                        "Error",
                        format!("Cannot find module '{name}'"),
                    ))
                }
            }
        }
    }

    /// Executes an embedded core-module implementation.
    fn load_prelude(&mut self, name: &str, src: &'static str) -> Result<Value, JsError> {
        let file = self
            .source_map
            .add_file(format!("<builtin:{name}>"), src);
        let module = aji_parser::parse_module(src, file, &mut self.ids)
            .map_err(|e| JsError::Internal(format!("prelude `{name}` failed to parse: {e}")))?;
        // Register functions without locations: prelude code is not part
        // of the analyzed program, so its definitions must not become
        // allocation sites.
        self.registry.add_module_defs_only(&module);
        let module = Rc::new(module);

        let exports = self.heap.alloc_plain(Some(self.protos.object), None);
        let mobj = self.heap.alloc_plain(Some(self.protos.object), None);
        self.heap.set_prop(mobj, "exports", Value::Obj(exports));
        let scope = Scope::new(ScopeKind::Module, Some(self.global_scope.clone()));
        scope.borrow_mut().this_val = Some(Value::Obj(exports));
        {
            let mut s = scope.borrow_mut();
            s.declare("module", Value::Obj(mobj));
            s.declare("exports", Value::Obj(exports));
            let req = self.make_require(0);
            s.declare("require", req);
            s.declare("__filename", Value::str(format!("<builtin:{name}>")));
            s.declare("__dirname", Value::str("<builtin>"));
        }
        self.exec_module_body(&module, &scope)?;
        Ok(self.exports_of(mobj))
    }

    /// Loads a `.json` project file as data.
    fn load_json_module(&mut self, idx: usize) -> Result<Value, JsError> {
        if let Some(&mobj) = self.module_cache.get(&idx) {
            return Ok(self.exports_of(mobj));
        }
        let text = self.source_map.file(aji_ast::FileId(idx as u32)).src.clone();
        let json = builtins::make_native(self, "json_parse");
        let v = self.call_value(json, Value::Undefined, &[Value::from(text)], None)?;
        let mobj = self.heap.alloc_plain(Some(self.protos.object), None);
        self.heap.set_prop(mobj, "exports", v.clone());
        self.module_cache.insert(idx, mobj);
        Ok(v)
    }

    // ----- calls -----

    /// Calls a value as a function. This is the public entry used by the
    /// approximate interpreter's worklist (`f.apply(w, p*)` in the paper).
    ///
    /// # Errors
    ///
    /// Propagates thrown exceptions and budget exhaustion.
    pub fn call_function(
        &mut self,
        callee: Value,
        this: Value,
        args: &[Value],
    ) -> Result<Value, JsError> {
        self.budget_tripped = false;
        self.obs.forced_calls.inc();
        self.call_value(callee, this, args, None)
    }

    pub(crate) fn call_value(
        &mut self,
        callee: Value,
        this: Value,
        args: &[Value],
        call_site: Option<Loc>,
    ) -> Result<Value, JsError> {
        let Some(id) = callee.as_obj() else {
            if self.opts.approx {
                return Ok(self.proxy_value());
            }
            return Err(self.throw_error(
                "TypeError",
                format!("{} is not a function", callee),
            ));
        };
        let kind = self.heap.get(id).kind.clone();
        match kind {
            ObjKind::Proxy => {
                // Rule 1 of §3: calls on p* are no-ops with p* as result.
                self.obs.proxy_ops.inc();
                Ok(self.proxy_value())
            }
            ObjKind::Native(n) => {
                self.obs.builtin_dispatches.inc();
                // Natives count against the stack budget too: some call
                // back into user code (callbacks, getters, toString).
                self.depth += 1;
                if self.depth > self.opts.max_stack {
                    self.depth -= 1;
                    return Err(self.trip_budget(BudgetKind::Stack));
                }
                let saved_site = self.current_call_site;
                self.current_call_site = call_site;
                let entry = self.natives[n as usize];
                let r = (entry.f)(self, id, this, args);
                self.current_call_site = saved_site;
                self.depth -= 1;
                r
            }
            ObjKind::Function(data) => self.call_closure(id, &data, this, args, call_site),
            _ => {
                if self.opts.approx {
                    Ok(self.proxy_value())
                } else {
                    Err(self.throw_error(
                        "TypeError",
                        format!("{} is not a function", callee),
                    ))
                }
            }
        }
    }

    pub(crate) fn call_closure(
        &mut self,
        fobj: ObjId,
        data: &FuncData,
        this: Value,
        args: &[Value],
        call_site: Option<Loc>,
    ) -> Result<Value, JsError> {
        self.depth += 1;
        if self.depth > self.opts.max_stack {
            self.depth -= 1;
            return Err(self.trip_budget(BudgetKind::Stack));
        }
        self.obs.calls.inc();
        let profiled = self.profiler.is_some();
        if profiled {
            self.profile_enter(&data.def);
        }
        let result = self.call_closure_inner(fobj, data, this, args, call_site);
        if profiled {
            self.profile_exit();
        }
        self.depth -= 1;
        result
    }

    fn call_closure_inner(
        &mut self,
        fobj: ObjId,
        data: &FuncData,
        this: Value,
        args: &[Value],
        call_site: Option<Loc>,
    ) -> Result<Value, JsError> {
        let def = data.def.clone();
        let def_loc = self.registry.loc(def.id);
        self.tracer.on_call(call_site, def.id, def_loc);

        // Assemble the full argument list (bound args from `bind` first).
        let mut all_args: Vec<Value>;
        let args = if data.bound_args.is_empty() {
            args
        } else {
            all_args = data.bound_args.clone();
            all_args.extend_from_slice(args);
            &all_args[..]
        };

        let kind = if def.is_arrow {
            ScopeKind::Arrow
        } else {
            ScopeKind::Function
        };
        let scope = Scope::new(kind, Some(data.env.clone()));
        if !def.is_arrow {
            let effective_this = match &data.bound_this {
                Some(b) => (**b).clone(),
                None => this,
            };
            scope.borrow_mut().this_val = Some(effective_this);
            // `arguments`.
            let args_obj = self.heap.alloc(ObjKind::Array(args.to_vec()));
            self.heap.get_mut(args_obj).proto = Some(self.protos.array);
            scope.borrow_mut().declare("arguments", Value::Obj(args_obj));
        }
        // Named function expressions can refer to themselves.
        if let Some(name) = &def.name {
            scope.borrow_mut().declare(name.as_str(), Value::Obj(fobj));
        }
        // Class plumbing for `super`.
        if let Some(home) = data.home_proto {
            if let Some(sp) = self.heap.get(home).proto {
                scope.borrow_mut().declare("%superproto%", Value::Obj(sp));
            }
        }
        if let Some(sc) = &data.super_ctor {
            scope.borrow_mut().declare("%superctor%", (**sc).clone());
        }

        // Bind parameters.
        for (i, param) in def.params.iter().enumerate() {
            let mut v = args.get(i).cloned().unwrap_or(Value::Undefined);
            if v.is_nullish() {
                if let Some(d) = &param.default {
                    if matches!(v, Value::Undefined) {
                        v = self.eval_expr(d, &scope)?;
                    }
                }
            }
            self.bind_pattern(&param.pat, v, &scope, true)?;
        }
        if let Some(rest) = &def.rest {
            let extra: Vec<Value> = args
                .iter()
                .skip(def.params.len())
                .cloned()
                .collect();
            let arr = self.heap.alloc(ObjKind::Array(extra));
            self.heap.get_mut(arr).proto = Some(self.protos.array);
            self.bind_pattern(rest, Value::Obj(arr), &scope, true)?;
        }

        // Hot path: run the body on the bytecode VM when it compiles.
        // The compiled subset skips `hoist` — its effects (pre-declaring
        // `var`/`let` names) are folded into the chunk's slot layout, and
        // functions whose hoist would be observable (nested function or
        // class declarations) bail out of compilation.
        // `observe_props` needs the receiver shape at every static member
        // read; the VM's inline-cache hit path skips `get_property`
        // entirely, so observing runs stay on the tree-walker.
        if self.opts.use_vm && !self.opts.observe_props {
            if let Some(code) = self.vm_code(&def) {
                return self.run_vm(&code, &scope);
            }
        }

        match &def.body {
            aji_ast::ast::FuncBody::Block(stmts) => {
                self.hoist(stmts, &scope)?;
                for s in stmts {
                    match self.exec_stmt(s, &scope)? {
                        Flow::Normal => {}
                        Flow::Return(v) => return Ok(v),
                        Flow::Break(_) | Flow::Continue(_) => break,
                    }
                }
                Ok(Value::Undefined)
            }
            aji_ast::ast::FuncBody::Expr(e) => self.eval_expr(e, &scope),
        }
    }

    /// Creates a closure value for a function definition evaluated in
    /// `scope`.
    pub(crate) fn make_closure(&mut self, def: &Function, scope: &ScopeRef) -> Value {
        let shared = match self.registry.get(def.id) {
            Some(rc) => rc,
            None => {
                // Function from dynamically generated code.
                let rc = Rc::new(def.clone());
                self.registry
                    .add_dynamic(rc.clone(), self.static_loc(def.span));
                rc
            }
        };
        let born_at = self.static_loc(def.span);
        let id = self.heap.alloc(ObjKind::Function(Box::new(FuncData {
            def: shared,
            env: scope.clone(),
            bound_this: None,
            bound_args: Vec::new(),
            super_ctor: None,
            home_proto: None,
        })));
        {
            let obj = self.heap.get_mut(id);
            obj.proto = Some(self.protos.function);
            obj.born_at = born_at;
            obj.func_def = Some(def.id);
        }
        if let Some(name) = &def.name {
            self.heap
                .get_mut(id)
                .props
                .insert(Rc::from("name"), Prop::hidden(Value::str(name)));
        }
        self.heap.get_mut(id).props.insert(
            Rc::from("length"),
            Prop::hidden(Value::Num(def.params.len() as f64)),
        );
        self.tracer
            .on_function_def(def.id, born_at, &Value::Obj(id));
        Value::Obj(id)
    }

    /// Ensures a function object has a `prototype` property and returns it.
    pub(crate) fn function_prototype(&mut self, fid: ObjId) -> ObjId {
        if let Some(p) = self.heap.own_prop(fid, "prototype") {
            if let crate::heap::PropValue::Data(Value::Obj(pid)) = p.value {
                return pid;
            }
        }
        // The prototype object inherits a sentinel allocation site derived
        // from its function's, so hints about `F.prototype` map onto the
        // static analysis' Proto token.
        let proto_site = self
            .heap
            .get(fid)
            .born_at
            .map(|l| l.prototype_site());
        let proto = self.heap.alloc_plain(Some(self.protos.object), proto_site);
        self.heap
            .set_prop(proto, "constructor", Value::Obj(fid));
        if let Some(p) = self.heap.get_mut(proto).props.get_mut("constructor") {
            p.enumerable = false;
        }
        self.heap.get_mut(fid).props.insert(
            Rc::from("prototype"),
            Prop::hidden(Value::Obj(proto)),
        );
        proto
    }

    /// `new callee(...args)`.
    pub(crate) fn construct(
        &mut self,
        callee: Value,
        args: &[Value],
        site_loc: Option<Loc>,
        call_site: Option<Loc>,
    ) -> Result<Value, JsError> {
        let Some(id) = callee.as_obj() else {
            if self.opts.approx {
                return Ok(self.proxy_value());
            }
            return Err(self.throw_error("TypeError", "not a constructor"));
        };
        let kind = self.heap.get(id).kind.clone();
        match kind {
            ObjKind::Proxy => {
                self.obs.proxy_ops.inc();
                Ok(self.proxy_value())
            }
            ObjKind::Native(_) => {
                self.pending_new_loc = site_loc;
                let r = self.call_value(callee, Value::Undefined, args, call_site);
                self.pending_new_loc = None;
                r
            }
            ObjKind::Function(data) => {
                let proto = self.function_prototype(id);
                let obj = self.heap.alloc_plain(Some(proto), site_loc);
                self.tracer.on_alloc(site_loc);
                let this = Value::Obj(obj);
                // A derived class's default constructor forwards its
                // arguments to the superclass constructor.
                if self.heap.own_prop(id, "__default_derived_ctor__").is_some() {
                    if let Some(sc) = &data.super_ctor {
                        self.call_value((**sc).clone(), this.clone(), args, call_site)?;
                    }
                }
                // Class instance fields.
                self.run_instance_fields(id, &this)?;
                let r = self.call_closure(id, &data, this.clone(), args, call_site)?;
                Ok(match r {
                    Value::Obj(rid) if !matches!(self.heap.get(rid).kind, ObjKind::Proxy) => {
                        Value::Obj(rid)
                    }
                    Value::Obj(_) => r,
                    _ => this,
                })
            }
            _ => {
                if self.opts.approx {
                    Ok(self.proxy_value())
                } else {
                    Err(self.throw_error("TypeError", "not a constructor"))
                }
            }
        }
    }

    /// Deterministic pseudo-random stream for `Math.random` — determinism
    /// keeps analysis runs reproducible.
    pub(crate) fn next_random(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Drop for Interp {
    /// Flushes the hot-function profile (when profiling was on) so
    /// pipeline code never has to remember to; the registry handle was
    /// captured at construction, so the flush lands correctly even after
    /// the installing scope popped.
    fn drop(&mut self) {
        self.flush_profile();
    }
}

/// Directory part of a `/`-separated path (empty for top-level files).
pub(crate) fn dirname(path: &str) -> String {
    match path.rfind('/') {
        Some(i) => path[..i].to_string(),
        None => String::new(),
    }
}

/// Joins two `/`-separated paths.
pub(crate) fn join_path(dir: &str, rel: &str) -> String {
    if rel.starts_with('/') {
        return rel.trim_start_matches('/').to_string();
    }
    if dir.is_empty() {
        rel.to_string()
    } else {
        format!("{dir}/{rel}")
    }
}

/// Normalizes `.` and `..` segments.
pub(crate) fn normalize_path(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_helpers() {
        assert_eq!(dirname("a/b/c.js"), "a/b");
        assert_eq!(dirname("c.js"), "");
        assert_eq!(join_path("a/b", "./c.js"), "a/b/./c.js");
        assert_eq!(normalize_path("a/b/./c.js"), "a/b/c.js");
        assert_eq!(normalize_path("a/b/../c.js"), "a/c.js");
        assert_eq!(normalize_path("./x.js"), "x.js");
        assert_eq!(normalize_path("a/../../x.js"), "x.js");
    }

    #[test]
    fn options_defaults() {
        let d = InterpOptions::default();
        assert!(!d.approx);
        let a = InterpOptions::approx_defaults();
        assert!(a.approx);
        assert!(a.max_loop_iters < d.max_loop_iters);
    }
}
