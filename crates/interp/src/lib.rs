//! A tree-walking JavaScript interpreter with CommonJS modules,
//! instrumentation hooks and forced-execution support — the Node.js/V8
//! stand-in for the *aji* reproduction of *Reducing Static Analysis
//! Unsoundness with Approximate Interpretation* (PLDI 2024).
//!
//! Two consumers sit on top of this crate:
//!
//! * the **dynamic call-graph recorder** ([`tracer::DynCallGraph`]) — the
//!   NodeProf stand-in that produces ground truth for recall/precision
//!   measurements by running a project's test driver; and
//! * the **approximate interpreter** (crate `aji-approx`) — the paper's
//!   pre-analysis, which drives this interpreter in `approx` mode
//!   ([`InterpOptions::approx_defaults`]) where unknown values are
//!   represented by a proxy object `p*` with the exact semantics of §3.
//!
//! # Example
//!
//! ```
//! use aji_ast::Project;
//! use aji_interp::Interp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut project = Project::new("demo");
//! project.add_file("index.js", "exports.answer = 6 * 7;");
//! let mut interp = Interp::new(&project)?;
//! let exports = interp.run_module("index.js")?;
//! let answer = interp.get_property_public(&exports, "answer")?;
//! assert_eq!(answer.to_string(), "42");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builtins;
mod convert;
pub mod env;
mod error;
mod exprs;
pub mod heap;
mod machine;
pub mod obs;
mod prelude;
mod profile;
mod props;
mod registry;
mod stmts;
pub mod tracer;
pub mod value;
mod vm;

pub use error::{BudgetKind, Flow, JsError};
pub use machine::{Interp, InterpOptions, Protos};
pub use registry::FuncRegistry;
pub use tracer::{DynCallEdge, DynCallGraph, NoopTracer, Tracer};
pub use value::{ObjId, Value};

impl Interp {
    /// Public, convenience property read (used by tests, examples and the
    /// approximate interpreter's worklist driver).
    ///
    /// # Errors
    ///
    /// Propagates getters' exceptions and type errors on nullish bases.
    pub fn get_property_public(&mut self, base: &Value, key: &str) -> Result<Value, JsError> {
        self.get_property(base.clone(), key, None)
    }

    /// Public, convenience property write.
    ///
    /// # Errors
    ///
    /// Propagates setters' exceptions.
    pub fn set_property_public(
        &mut self,
        base: &Value,
        key: &str,
        v: Value,
    ) -> Result<(), JsError> {
        self.set_property(base, key, v)
    }

    /// Number of declared parameters of a user-defined function value.
    pub fn param_count(&self, f: &Value) -> Option<usize> {
        let id = f.as_obj()?;
        match &self.heap.get(id).kind {
            heap::ObjKind::Function(data) => Some(data.def.params.len()),
            _ => None,
        }
    }

    /// Converts any value to its JavaScript string form (public wrapper
    /// around the internal `ToString`).
    pub fn to_string_public(&mut self, v: &Value) -> String {
        self.to_string_value(v)
    }

    /// Evaluates a source string in the global scope (test helper).
    ///
    /// # Errors
    ///
    /// Returns parse errors as thrown `SyntaxError`s and propagates any
    /// uncaught exception.
    pub fn eval_source(&mut self, src: &str) -> Result<Value, JsError> {
        let scope = self.global_scope();
        self.run_eval(src, &scope)
    }
}
