//! Runtime values.

use std::fmt;
use std::rc::Rc;

/// Handle to an object in the [`crate::heap::Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Index into the heap's object table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A JavaScript value.
#[derive(Debug, Clone)]
#[derive(Default)]
pub enum Value {
    /// `undefined`.
    #[default]
    Undefined,
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (IEEE 754 double, like JavaScript's Number).
    Num(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Reference to a heap object (plain object, array, function, ...).
    Obj(ObjId),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// JavaScript truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) => true,
        }
    }

    /// Whether the value is `undefined` or `null`.
    pub fn is_nullish(&self) -> bool {
        matches!(self, Value::Undefined | Value::Null)
    }

    /// The object handle, if this is an object.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// Identity / strict-equality comparison for primitives and object
    /// identity for objects (JavaScript `===` except that `NaN !== NaN` is
    /// honored).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => a == b,
            _ => false,
        }
    }

    /// The `typeof` tag, modulo functions (the heap distinguishes callables;
    /// the interpreter overrides this for function objects).
    pub fn type_of_non_callable(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Obj(_) => "object",
        }
    }
}


impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Rc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "undefined"),
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Num(n) => write!(f, "{}", num_to_string(*n)),
            Value::Str(s) => write!(f, "{}", s),
            Value::Obj(id) => write!(f, "[object #{}]", id.0),
        }
    }
}

/// JavaScript `ToString` for numbers (shared with property-key conversion).
pub fn num_to_string(n: f64) -> String {
    aji_ast::num_to_prop_name(n)
}

/// JavaScript `ToNumber` for strings.
pub fn str_to_num(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return 0.0;
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| v as f64)
            .unwrap_or(f64::NAN);
    }
    t.parse().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Num(0.0).is_truthy());
        assert!(!Value::Num(f64::NAN).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::Num(1.0).is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(Value::Obj(ObjId(0)).is_truthy());
    }

    #[test]
    fn strict_equality() {
        assert!(Value::Num(1.0).strict_eq(&Value::Num(1.0)));
        assert!(!Value::Num(f64::NAN).strict_eq(&Value::Num(f64::NAN)));
        assert!(Value::str("a").strict_eq(&Value::str("a")));
        assert!(!Value::Num(1.0).strict_eq(&Value::str("1")));
        assert!(Value::Obj(ObjId(3)).strict_eq(&Value::Obj(ObjId(3))));
        assert!(!Value::Obj(ObjId(3)).strict_eq(&Value::Obj(ObjId(4))));
    }

    #[test]
    fn string_to_number() {
        assert_eq!(str_to_num("42"), 42.0);
        assert_eq!(str_to_num("  3.5 "), 3.5);
        assert_eq!(str_to_num(""), 0.0);
        assert_eq!(str_to_num("0x10"), 16.0);
        assert!(str_to_num("abc").is_nan());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.5).to_string(), "3.5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Undefined.to_string(), "undefined");
    }
}
