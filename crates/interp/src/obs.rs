//! Observability hooks for the interpreter.
//!
//! Sits next to [`crate::tracer`]: where the [`Tracer`](crate::tracer::Tracer)
//! reports *semantic* events to the analyses, these counters report *work*
//! events to `aji-obs`. Handles are bound once at interpreter construction
//! (against the registry active at that moment), so each hot-path record is
//! a single relaxed atomic add — and a no-op branch when observability is
//! off.

use std::sync::Arc;

use aji_obs::{counter, Counter, Registry, TraceRecorder};

/// Cached counter handles for the interpreter's hot paths.
#[derive(Debug, Default)]
pub struct InterpObs {
    /// Evaluation steps executed ([`crate::Interp::steps`] across runs).
    pub steps: Counter,
    /// User-function invocations (closure calls entered).
    pub calls: Counter,
    /// Forced calls via [`crate::Interp::call_function`] — the approximate
    /// interpreter's worklist entry point.
    pub forced_calls: Counter,
    /// Operations absorbed by the unknown-value proxy `p*` (calls on the
    /// proxy, constructions of it, property reads from it).
    pub proxy_ops: Counter,
    /// Native (builtin) function dispatches.
    pub builtin_dispatches: Counter,
    /// Budget exhaustions (step, stack or loop budget hit).
    pub budget_exhaustions: Counter,
    /// Bytecode inline-cache hits (property get/set/member-call sites).
    pub ic_hits: Counter,
    /// Bytecode inline-cache misses (generic path taken, cache patched).
    pub ic_misses: Counter,
    /// Function bodies compiled to bytecode (once per definition).
    pub vm_compiles: Counter,
    /// Function bodies rejected by the bytecode compiler (tree-walked).
    pub vm_bails: Counter,
    /// The registry active at construction, kept so deferred flushes
    /// (profiler drop, gauges) land in the right place even after the
    /// scope that installed it pops.
    pub registry: Option<Arc<Registry>>,
    /// The registry's flight recorder, when one is installed — the sink
    /// for budget-trip, VM compile/bail and IC-miss trace events, each
    /// stamped with the interpreter's step index.
    pub recorder: Option<Arc<TraceRecorder>>,
}

impl InterpObs {
    /// Binds handles against the currently active registry (no-op handles
    /// when observability is inactive).
    pub fn bind() -> InterpObs {
        let registry = aji_obs::current_registry();
        let recorder = registry.as_ref().and_then(|r| r.recorder());
        InterpObs {
            steps: counter("interp.steps"),
            calls: counter("interp.calls"),
            forced_calls: counter("interp.forced_calls"),
            proxy_ops: counter("interp.proxy_ops"),
            builtin_dispatches: counter("interp.builtin_dispatches"),
            budget_exhaustions: counter("interp.budget_exhaustions"),
            ic_hits: counter("interp.ic_hits"),
            ic_misses: counter("interp.ic_misses"),
            vm_compiles: counter("interp.vm_compiles"),
            vm_bails: counter("interp.vm_bails"),
            registry,
            recorder,
        }
    }
}
