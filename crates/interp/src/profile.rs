//! Step-attributed hot-function profiler.
//!
//! When the active observability registry carries a flight recorder whose
//! [`TraceConfig::profile`](aji_obs::TraceConfig) flag is set, the
//! interpreter owns one of these and charges every evaluation step, IC
//! hit/miss and compiler bail to the function currently on top of the
//! profiled call stack. Attribution is by **step count**, not wall clock,
//! so the resulting table is exact, deterministic, and honest on a
//! 1-core container — two functions cannot "overlap" in steps.
//!
//! Steps are attributed by **delta accounting**: the profiler remembers
//! the interpreter's step counter at the last frame transition
//! ([`Profiler::sync`]) and charges the elapsed difference to the frame
//! being left. The interpreter's `step()` hot path therefore carries no
//! profiler branch at all — the cost lands on call boundaries, which are
//! orders of magnitude rarer.
//!
//! On interpreter drop the profile flushes as plain counters
//! (`profile.fn.<metric>.<function-key>` and
//! `interp.ic_miss_site.<site-key>`) into the registry the interpreter
//! bound at construction. Counters merge by summation under
//! [`Registry::absorb`](aji_obs::Registry::absorb), so per-worker profiles
//! fold into corpus totals that are invariant to thread count.

use std::collections::HashMap;

use aji_ast::NodeId;
use aji_obs::Registry;

/// Per-function tallies. Index 0 is the synthetic `<toplevel>` frame that
/// charges module bodies, prelude code and anything outside a profiled
/// call.
#[derive(Debug)]
struct FnStat {
    key: String,
    steps: u64,
    calls: u64,
    ic_hits: u64,
    ic_misses: u64,
    bails: u64,
}

impl FnStat {
    fn new(key: String) -> FnStat {
        FnStat {
            key,
            steps: 0,
            calls: 0,
            ic_hits: 0,
            ic_misses: 0,
            bails: 0,
        }
    }
}

/// The profiler state: a dense stat table, a definition-id index into it,
/// and the profiled call stack (indices, so per-step charging is one
/// vector index away from the current frame).
#[derive(Debug)]
pub(crate) struct Profiler {
    stats: Vec<FnStat>,
    index: HashMap<NodeId, usize>,
    stack: Vec<usize>,
    cur: usize,
    /// Interpreter step count at the last frame transition; the delta
    /// since is owed to the current frame.
    last_mark: u64,
    /// Per-site IC miss counts, keyed `function-key:prop#ic`.
    ic_sites: HashMap<String, u64>,
    /// Deepest VM value stack observed across all `run_vm` activations.
    peak_vm_stack: u64,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler {
            stats: vec![FnStat::new("<toplevel>".to_string())],
            index: HashMap::new(),
            stack: Vec::new(),
            cur: 0,
            last_mark: 0,
            ic_sites: HashMap::new(),
            peak_vm_stack: 0,
        }
    }

    /// The stat index for a definition, creating it with `make_key` on
    /// first sight.
    fn frame(&mut self, id: NodeId, make_key: impl FnOnce() -> String) -> usize {
        if let Some(&idx) = self.index.get(&id) {
            return idx;
        }
        let idx = self.stats.len();
        self.stats.push(FnStat::new(make_key()));
        self.index.insert(id, idx);
        idx
    }

    /// Charges the steps elapsed since the last transition to the current
    /// frame and advances the mark. `now` is the interpreter's step
    /// counter.
    pub(crate) fn sync(&mut self, now: u64) {
        self.stats[self.cur].steps += now.saturating_sub(self.last_mark);
        self.last_mark = now;
    }

    /// Re-bases the mark after the interpreter's step counter was reset
    /// externally (benchmark harnesses call `Interp::reset_steps`).
    pub(crate) fn rebase(&mut self, now: u64) {
        self.last_mark = now;
    }

    /// Enters a profiled call at step `now`: the definition becomes the
    /// current frame.
    pub(crate) fn enter(&mut self, id: NodeId, now: u64, make_key: impl FnOnce() -> String) {
        self.sync(now);
        let idx = self.frame(id, make_key);
        self.stats[idx].calls += 1;
        self.stack.push(self.cur);
        self.cur = idx;
    }

    /// Leaves the current profiled call at step `now` (normal return or
    /// unwind alike).
    pub(crate) fn exit(&mut self, now: u64) {
        self.sync(now);
        self.cur = self.stack.pop().unwrap_or(0);
    }

    /// Charges an inline-cache hit to the current frame.
    #[inline]
    pub(crate) fn ic_hit(&mut self) {
        self.stats[self.cur].ic_hits += 1;
    }

    /// Charges an inline-cache miss to the current frame and to the
    /// per-site table under `function-key:prop#ic`.
    pub(crate) fn ic_miss(&mut self, prop: &str, ic: u16) {
        self.stats[self.cur].ic_misses += 1;
        let site = format!("{}:{prop}#{ic}", self.stats[self.cur].key);
        *self.ic_sites.entry(site).or_insert(0) += 1;
    }

    /// Records a bytecode-compiler bail for a definition.
    pub(crate) fn bail(&mut self, id: NodeId, make_key: impl FnOnce() -> String) {
        let idx = self.frame(id, make_key);
        self.stats[idx].bails += 1;
    }

    /// Folds a VM activation's peak value-stack depth into the profile.
    pub(crate) fn track_vm_stack(&mut self, depth: u64) {
        self.peak_vm_stack = self.peak_vm_stack.max(depth);
    }

    /// Flushes the profile into `reg` as summation-mergeable counters
    /// (only non-zero metrics, keeping reports lean) plus the peak VM
    /// stack gauge. `now` settles the steps still owed to the current
    /// frame.
    pub(crate) fn flush(&mut self, now: u64, reg: &Registry) {
        self.sync(now);
        for st in &self.stats {
            for (metric, value) in [
                ("steps", st.steps),
                ("calls", st.calls),
                ("ic_hits", st.ic_hits),
                ("ic_misses", st.ic_misses),
                ("bails", st.bails),
            ] {
                if value > 0 {
                    reg.counter_add(&format!("profile.fn.{metric}.{}", st.key), value);
                }
            }
        }
        for (site, n) in &self.ic_sites {
            reg.counter_add(&format!("interp.ic_miss_site.{site}"), *n);
        }
        if self.peak_vm_stack > 0 {
            reg.gauge_max("interp.peak_vm_stack", self.peak_vm_stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn steps_charge_to_the_current_frame() {
        let mut p = Profiler::new();
        // 1 toplevel step, then f runs from step 1 to step 3.
        p.enter(NodeId(7), 1, || "f@a.js:1".into());
        p.ic_hit();
        p.ic_miss("x", 0);
        p.exit(3);
        // 1 more toplevel step, then a zero-step re-entry of f.
        p.enter(NodeId(7), 4, || panic!("key already made"));
        p.exit(4);
        p.bail(NodeId(9), || "g@a.js:5".into());
        p.track_vm_stack(12);
        p.track_vm_stack(4);

        let reg = Arc::new(Registry::new());
        p.flush(4, &reg);
        let rep = reg.report();
        assert_eq!(rep.counter("profile.fn.steps.<toplevel>"), Some(2));
        assert_eq!(rep.counter("profile.fn.steps.f@a.js:1"), Some(2));
        assert_eq!(rep.counter("profile.fn.calls.f@a.js:1"), Some(2));
        assert_eq!(rep.counter("profile.fn.ic_hits.f@a.js:1"), Some(1));
        assert_eq!(rep.counter("profile.fn.ic_misses.f@a.js:1"), Some(1));
        assert_eq!(rep.counter("profile.fn.bails.g@a.js:5"), Some(1));
        assert_eq!(rep.counter("interp.ic_miss_site.f@a.js:1:x#0"), Some(1));
        assert_eq!(rep.gauge("interp.peak_vm_stack"), Some(12));
        // Zero metrics are not flushed.
        assert_eq!(rep.counter("profile.fn.ic_misses.g@a.js:5"), None);
    }
}
