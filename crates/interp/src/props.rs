//! Property access (with prototype chains, accessors, proxies and
//! primitive wrappers) and the conversions that need heap access.

use crate::convert::{prim_loose_eq, prim_to_number, prim_to_string};
use crate::error::JsError;
use crate::heap::{ObjKind, Prop, PropValue};
use crate::machine::Interp;
use crate::value::Value;
use aji_ast::Loc;

// The `to_*` conversions below convert their *argument*, not `self`; they
// take `&mut self` because getters/`toString` may run user code.
#[allow(clippy::wrong_self_convention)]
impl Interp {
    /// JavaScript truthiness (objects, including the proxy, are truthy).
    pub(crate) fn truthy(&self, v: &Value) -> bool {
        v.is_truthy()
    }

    /// `typeof v`.
    pub(crate) fn type_of(&self, v: &Value) -> &'static str {
        match v {
            Value::Obj(id) => {
                if self.heap.get(*id).kind.is_callable() {
                    "function"
                } else {
                    "object"
                }
            }
            other => other.type_of_non_callable(),
        }
    }

    /// Reads a property from any value (objects, proxies, primitives).
    ///
    /// `_op_loc` is the location of the triggering operation when it is a
    /// dynamic read (kept for symmetry; hint recording happens in the
    /// caller).
    pub(crate) fn get_property(
        &mut self,
        base: Value,
        key: &str,
        _op_loc: Option<Loc>,
    ) -> Result<Value, JsError> {
        match &base {
            Value::Obj(id) => {
                let id = *id;
                match &self.heap.get(id).kind {
                    // Rule: property reads on p* yield p*.
                    ObjKind::Proxy => {
                        self.obs.proxy_ops.inc();
                        return Ok(self.proxy_value());
                    }
                    ObjKind::Array(elems)
                        if key == "length" => {
                            return Ok(Value::Num(elems.len() as f64));
                        }
                    ObjKind::Function(_) | ObjKind::Native(_)
                        if key == "prototype" && self.heap.own_prop(id, "prototype").is_none() => {
                            let p = self.function_prototype(id);
                            return Ok(Value::Obj(p));
                        }
                    _ => {}
                }
                match self.heap.lookup(id, key) {
                    Some((Prop { value, .. }, _owner)) => match value {
                        PropValue::Data(v) => Ok(v),
                        PropValue::Accessor { get, .. } => match get {
                            Some(g) => self.call_value(g, base.clone(), &[], None),
                            None => Ok(Value::Undefined),
                        },
                    },
                    None => {
                        // Sandbox mocks: any missing property is the mock
                        // itself, keeping chained Node API usage alive.
                        if self.heap.own_prop(id, "__mock__").is_some() {
                            return Ok(Value::Obj(id));
                        }
                        // §3 receiver wrappers delegate misses to p*.
                        if self
                            .heap
                            .lookup(id, "__proxy_fallback__")
                            .is_some()
                        {
                            return Ok(self.proxy_value());
                        }
                        Ok(Value::Undefined)
                    }
                }
            }
            Value::Str(s) => {
                if key == "length" {
                    return Ok(Value::Num(s.chars().count() as f64));
                }
                if let Some(idx) = crate::heap::array_index(key) {
                    return Ok(s
                        .chars()
                        .nth(idx)
                        .map(|c| Value::str(c.to_string()))
                        .unwrap_or(Value::Undefined));
                }
                self.proto_lookup(self.protos.string, base.clone(), key)
            }
            Value::Num(_) => self.proto_lookup(self.protos.number, base.clone(), key),
            Value::Bool(_) => self.proto_lookup(self.protos.boolean, base.clone(), key),
            Value::Undefined | Value::Null => {
                if self.opts.approx {
                    // Keep forced execution going.
                    Ok(self.proxy_value())
                } else {
                    Err(self.throw_error(
                        "TypeError",
                        format!("Cannot read properties of {} (reading '{}')", base, key),
                    ))
                }
            }
        }
    }

    /// Reports one property access to the tracer when
    /// [`crate::InterpOptions::observe_props`] is on: the receiver's
    /// own-key shape plus whether the lookup would find `name` anywhere on
    /// the prototype chain. Only plain objects report — proxies, §3
    /// receiver wrappers and sandbox mocks answer every key by design, so
    /// a "miss" on them is a modeling artifact, not program behavior.
    pub(crate) fn observe_prop_access(&mut self, site: Option<Loc>, base: &Value, name: &str) {
        let Some(id) = base.as_obj() else { return };
        if matches!(self.heap.get(id).kind, ObjKind::Proxy)
            || self.heap.own_prop(id, "__mock__").is_some()
            || self.heap.lookup(id, "__proxy_fallback__").is_some()
        {
            return;
        }
        let found = self.heap.lookup(id, name).is_some();
        let shape = self.heap.own_keys(id);
        self.tracer.on_prop_access(site, name, &shape, found);
    }

    fn proto_lookup(&mut self, proto: crate::value::ObjId, this: Value, key: &str) -> Result<Value, JsError> {
        match self.heap.lookup(proto, key) {
            Some((Prop { value, .. }, _)) => match value {
                PropValue::Data(v) => Ok(v),
                PropValue::Accessor { get, .. } => match get {
                    Some(g) => self.call_value(g, this, &[], None),
                    None => Ok(Value::Undefined),
                },
            },
            None => Ok(Value::Undefined),
        }
    }

    /// Writes a property on any value (setter dispatch, proxies ignored,
    /// primitives ignored).
    pub(crate) fn set_property(
        &mut self,
        base: &Value,
        key: &str,
        v: Value,
    ) -> Result<(), JsError> {
        let Some(id) = base.as_obj() else {
            if base.is_nullish() && !self.opts.approx {
                return Err(self.throw_error(
                    "TypeError",
                    format!("Cannot set properties of {}", base),
                ));
            }
            return Ok(()); // writes to primitives are silently dropped
        };
        if matches!(self.heap.get(id).kind, ObjKind::Proxy) {
            // Rule: writes on p* are ignored.
            return Ok(());
        }
        // Setter anywhere on the prototype chain wins.
        if let Some((Prop {
            value: PropValue::Accessor { set, .. },
            ..
        }, _)) = self.heap.lookup(id, key)
        {
            if let Some(s) = set {
                self.call_value(s, base.clone(), &[v], None)?;
            }
            return Ok(());
        }
        self.heap.set_prop(id, key, v);
        Ok(())
    }

    /// `ToPrimitive` (number hint by default; JavaScript's `toString` /
    /// `valueOf` protocol, approximated).
    pub(crate) fn to_primitive(&mut self, v: &Value) -> Result<Value, JsError> {
        let Some(id) = v.as_obj() else {
            return Ok(v.clone());
        };
        match &self.heap.get(id).kind {
            ObjKind::Proxy => Ok(Value::str("")),
            ObjKind::Array(elems) => {
                // Array toString = join(",").
                let elems = elems.clone();
                let mut parts = Vec::with_capacity(elems.len());
                for e in &elems {
                    if e.is_nullish() {
                        parts.push(String::new());
                    } else {
                        parts.push(self.to_string_value(e));
                    }
                }
                Ok(Value::from(parts.join(",")))
            }
            ObjKind::Function(_) | ObjKind::Native(_) => {
                Ok(Value::str("function () { [native code] }"))
            }
            ObjKind::Plain => {
                // valueOf first (for Date-like objects), then toString.
                for m in ["valueOf", "toString"] {
                    if let Some((Prop {
                        value: PropValue::Data(f),
                        ..
                    }, _)) = self.heap.lookup(id, m)
                    {
                        if self.heap.is_callable(&f) {
                            let r = self.call_value(f, v.clone(), &[], None)?;
                            if !matches!(r, Value::Obj(_)) {
                                return Ok(r);
                            }
                        }
                    }
                }
                Ok(Value::str("[object Object]"))
            }
        }
    }

    /// `ToString` with heap access (objects go through `ToPrimitive`).
    pub(crate) fn to_string_value(&mut self, v: &Value) -> String {
        match v {
            Value::Obj(_) => match self.to_primitive(v) {
                Ok(p) if !matches!(p, Value::Obj(_)) => prim_to_string(&p),
                _ => "[object Object]".to_string(),
            },
            other => prim_to_string(other),
        }
    }

    /// `ToNumber` with heap access.
    pub(crate) fn to_number_value(&mut self, v: &Value) -> Result<f64, JsError> {
        match v {
            Value::Obj(_) => {
                let p = self.to_primitive(v)?;
                Ok(prim_to_number(&p))
            }
            other => Ok(prim_to_number(other)),
        }
    }

    /// Loose equality with `ToPrimitive` on object operands.
    pub(crate) fn loose_eq(&mut self, a: &Value, b: &Value) -> Result<bool, JsError> {
        match (a, b) {
            (Value::Obj(x), Value::Obj(y)) => Ok(x == y),
            (Value::Obj(_), _) => {
                if b.is_nullish() {
                    return Ok(false);
                }
                let ap = self.to_primitive(a)?;
                Ok(prim_loose_eq(&ap, b))
            }
            (_, Value::Obj(_)) => {
                if a.is_nullish() {
                    return Ok(false);
                }
                let bp = self.to_primitive(b)?;
                Ok(prim_loose_eq(a, &bp))
            }
            _ => Ok(prim_loose_eq(a, b)),
        }
    }
}
