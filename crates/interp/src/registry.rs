//! Function-definition registry: shares one `Rc<Function>` per syntactic
//! function definition so closures are cheap to create and definitions are
//! addressable by `NodeId`.

use aji_ast::ast::{Function, Module};
use aji_ast::visit::{self, Visit};
use aji_ast::{Loc, NodeId, SourceMap};
use std::collections::HashMap;
use std::rc::Rc;

/// Registry of all function definitions in a project (plus any functions
/// appearing in `eval`'d code, which are registered on the fly).
#[derive(Debug, Default)]
pub struct FuncRegistry {
    map: HashMap<NodeId, Rc<Function>>,
    locs: HashMap<NodeId, Loc>,
}

impl FuncRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers every function of a module, recording each definition's
    /// source location.
    pub fn add_module(&mut self, module: &Module, sm: &SourceMap) {
        struct Collector<'a> {
            reg: &'a mut FuncRegistry,
            sm: &'a SourceMap,
        }
        impl Visit for Collector<'_> {
            fn visit_function(&mut self, f: &Function) {
                self.reg
                    .map
                    .entry(f.id)
                    .or_insert_with(|| Rc::new(f.clone()));
                self.reg.locs.insert(f.id, self.sm.loc(f.span));
                visit::walk_function(self, f);
            }
        }
        let mut c = Collector { reg: self, sm };
        c.visit_module(module);
    }

    /// Registers every function of a module *without* recording locations
    /// (used for prelude/builtin code whose definitions must not become
    /// allocation sites).
    pub fn add_module_defs_only(&mut self, module: &Module) {
        struct Collector<'a> {
            reg: &'a mut FuncRegistry,
        }
        impl Visit for Collector<'_> {
            fn visit_function(&mut self, f: &Function) {
                self.reg
                    .map
                    .entry(f.id)
                    .or_insert_with(|| Rc::new(f.clone()));
                visit::walk_function(self, f);
            }
        }
        let mut c = Collector { reg: self };
        c.visit_module(module);
    }

    /// Registers a function discovered at runtime (e.g. inside `eval`'d
    /// code). `loc` is `None` for dynamically generated code.
    pub fn add_dynamic(&mut self, f: Rc<Function>, loc: Option<Loc>) {
        if let Some(l) = loc {
            self.locs.insert(f.id, l);
        }
        self.map.insert(f.id, f);
    }

    /// Looks up the shared definition for a node id.
    pub fn get(&self, id: NodeId) -> Option<Rc<Function>> {
        self.map.get(&id).cloned()
    }

    /// The definition's source location, if it comes from static code.
    pub fn loc(&self, id: NodeId) -> Option<Loc> {
        self.locs.get(&id).copied()
    }

    /// Number of registered definitions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All registered definition ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.map.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::NodeIdGen;

    #[test]
    fn registers_nested_functions_once() {
        let src = "function a() { return function b() {}; }\nvar c = () => 1;";
        let mut sm = SourceMap::new();
        let file = sm.add_file("t.js", src);
        let mut ids = NodeIdGen::new();
        let m = aji_parser::parse_module(src, file, &mut ids).unwrap();
        let mut reg = FuncRegistry::new();
        reg.add_module(&m, &sm);
        assert_eq!(reg.len(), 3);
        for id in reg.ids().collect::<Vec<_>>() {
            assert!(reg.loc(id).is_some());
            assert!(reg.get(id).is_some());
        }
    }
}
