//! Lexical environments (scope chains).
//!
//! Closures capture an [`ScopeRef`]; variable lookup walks the parent
//! chain. Function scopes additionally carry the `this` binding and the
//! `arguments` object; arrow functions simply do not create those slots, so
//! lookup finds the enclosing function's.

use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Shared, mutable scope handle.
pub type ScopeRef = Rc<RefCell<Scope>>;

/// What introduced a scope (used for `var` hoisting targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The global scope.
    Global,
    /// A module's top-level scope (the "module function" of the paper).
    Module,
    /// An ordinary function body.
    Function,
    /// An arrow function body (no own `this`/`arguments`).
    Arrow,
    /// A block / loop body / catch clause.
    Block,
}

/// One scope in the chain.
#[derive(Debug)]
pub struct Scope {
    /// What kind of scope this is.
    pub kind: ScopeKind,
    /// Enclosing scope.
    pub parent: Option<ScopeRef>,
    /// Variable bindings.
    vars: HashMap<Rc<str>, Value>,
    /// `this` binding, present on function/module/global scopes.
    pub this_val: Option<Value>,
}

impl Scope {
    /// Creates a new scope with the given parent.
    pub fn new(kind: ScopeKind, parent: Option<ScopeRef>) -> ScopeRef {
        Rc::new(RefCell::new(Scope {
            kind,
            parent,
            vars: HashMap::new(),
            this_val: None,
        }))
    }

    /// Declares (or redeclares) a variable directly in this scope.
    pub fn declare(&mut self, name: impl Into<Rc<str>>, v: Value) {
        self.vars.insert(name.into(), v);
    }

    /// Whether this scope directly binds `name`.
    pub fn has_own(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Reads an own binding.
    pub fn get_own(&self, name: &str) -> Option<Value> {
        self.vars.get(name).cloned()
    }

    /// Writes an own binding; returns false if not bound here.
    pub fn set_own(&mut self, name: &str, v: Value) -> bool {
        if let Some(slot) = self.vars.get_mut(name) {
            *slot = v;
            true
        } else {
            false
        }
    }
}

/// Looks a variable up through the scope chain.
pub fn lookup(scope: &ScopeRef, name: &str) -> Option<Value> {
    let mut cur = Some(scope.clone());
    while let Some(s) = cur {
        let b = s.borrow();
        if let Some(v) = b.get_own(name) {
            return Some(v);
        }
        cur = b.parent.clone();
    }
    None
}

/// Assigns to the nearest binding of `name`; if none exists, creates a
/// global binding on the outermost scope (sloppy-mode JavaScript).
pub fn assign(scope: &ScopeRef, name: &str, v: Value) {
    let mut cur = scope.clone();
    loop {
        {
            let mut b = cur.borrow_mut();
            if b.set_own(name, v.clone()) {
                return;
            }
        }
        let parent = cur.borrow().parent.clone();
        match parent {
            Some(p) => cur = p,
            None => {
                cur.borrow_mut().declare(name, v);
                return;
            }
        }
    }
}

/// Finds the `this` binding by walking to the nearest non-arrow function
/// (or module/global) scope.
pub fn this_value(scope: &ScopeRef) -> Value {
    let mut cur = Some(scope.clone());
    while let Some(s) = cur {
        let b = s.borrow();
        if let Some(t) = &b.this_val {
            return t.clone();
        }
        cur = b.parent.clone();
    }
    Value::Undefined
}

/// Finds the nearest scope that `var` declarations hoist to (function,
/// module or global scope).
pub fn hoist_target(scope: &ScopeRef) -> ScopeRef {
    let mut cur = scope.clone();
    loop {
        let kind = cur.borrow().kind;
        match kind {
            ScopeKind::Block | ScopeKind::Arrow => {
                let parent = cur.borrow().parent.clone();
                match parent {
                    Some(p) => cur = p,
                    None => return cur,
                }
            }
            _ => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_chain() {
        let global = Scope::new(ScopeKind::Global, None);
        global.borrow_mut().declare("x", Value::Num(1.0));
        let inner = Scope::new(ScopeKind::Function, Some(global.clone()));
        inner.borrow_mut().declare("y", Value::Num(2.0));
        assert!(lookup(&inner, "x").is_some());
        assert!(lookup(&inner, "y").is_some());
        assert!(lookup(&global, "y").is_none());
        assert!(lookup(&inner, "z").is_none());
    }

    #[test]
    fn assign_updates_nearest_binding() {
        let global = Scope::new(ScopeKind::Global, None);
        global.borrow_mut().declare("x", Value::Num(1.0));
        let inner = Scope::new(ScopeKind::Block, Some(global.clone()));
        assign(&inner, "x", Value::Num(5.0));
        assert!(matches!(lookup(&global, "x"), Some(Value::Num(n)) if n == 5.0));
    }

    #[test]
    fn assign_creates_implicit_global() {
        let global = Scope::new(ScopeKind::Global, None);
        let inner = Scope::new(ScopeKind::Function, Some(global.clone()));
        assign(&inner, "implicit", Value::Num(9.0));
        assert!(global.borrow().has_own("implicit"));
    }

    #[test]
    fn this_skips_arrow_scopes() {
        let global = Scope::new(ScopeKind::Global, None);
        let func = Scope::new(ScopeKind::Function, Some(global));
        func.borrow_mut().this_val = Some(Value::Num(7.0));
        let arrow = Scope::new(ScopeKind::Arrow, Some(func));
        let block = Scope::new(ScopeKind::Block, Some(arrow));
        assert!(matches!(this_value(&block), Value::Num(n) if n == 7.0));
    }

    #[test]
    fn hoist_target_skips_blocks() {
        let global = Scope::new(ScopeKind::Global, None);
        let func = Scope::new(ScopeKind::Function, Some(global));
        let block = Scope::new(ScopeKind::Block, Some(func.clone()));
        let inner_block = Scope::new(ScopeKind::Block, Some(block));
        let t = hoist_target(&inner_block);
        assert!(Rc::ptr_eq(&t, &func));
    }
}
