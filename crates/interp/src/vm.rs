//! Bytecode VM for the forced-call hot path.
//!
//! [`Interp::vm_code`] compiles a function body once (memoizing both
//! successes and bails per definition id) and [`Interp::run_vm`] executes
//! the chunk against the same scope the tree-walker would have used. The
//! shared prologue in `call_closure_inner` — tracer `on_call`, parameter
//! and rest binding, `arguments`, `super` plumbing — runs before either
//! engine, so the VM only replaces the body walk.
//!
//! Parity contract: for every compiled function the VM charges the same
//! steps, emits the same tracer events, trips the same budgets at the
//! same points, and computes the same values as the tree-walker. The
//! compiler (`aji-bytecode`) guarantees this structurally by bailing on
//! anything outside the proven subset; the VM keeps it by routing every
//! observable operation through the same `Interp` methods the tree-walker
//! uses (`step`, `eval_ident`, `eval_binary`, `call_value`, …).
//!
//! The only new machinery is the monomorphic inline cache on property
//! get / set / member-call sites: a per-site `(object id, entry index)`
//! pair validated on every hit (key and data-ness re-checked, so heap
//! mutation can never make a hit unsound) and patched on miss when the
//! receiver is a plain object with an own data property. Hits replicate
//! the generic path's effects exactly — an own data property on a plain
//! object involves no getters, no proxy, and no tracer events.

use std::cell::Cell;
use std::rc::Rc;

use aji_ast::ast::Function;
use aji_bytecode::{compile_function, Chunk, Const, Op};

use crate::env::{self, ScopeRef};
use crate::error::{BudgetKind, JsError};
use crate::heap::{ObjKind, PropValue};
use crate::machine::Interp;
use crate::value::Value;

/// One monomorphic inline-cache entry: the receiver's object id and the
/// property's entry index in its `OrderedMap`. `obj == u32::MAX` marks an
/// empty cache (object ids are sequential and never reach the sentinel).
#[derive(Clone, Copy)]
pub(crate) struct IcEntry {
    obj: u32,
    slot: u32,
}

const IC_EMPTY: IcEntry = IcEntry {
    obj: u32::MAX,
    slot: 0,
};

/// A compiled function body installed in the interpreter: the chunk plus
/// pre-converted constants and the per-site inline caches. Shared via
/// `Rc` by every closure over the same definition.
pub(crate) struct VmCode {
    chunk: Chunk,
    consts: Vec<Value>,
    ics: Vec<Cell<IcEntry>>,
    /// Display key of the compiled function (`name@file:line`), used to
    /// label flight-recorder events and IC-miss site counters.
    func_key: String,
    /// Static operand-stack high-water mark of the chunk
    /// ([`aji_bytecode::max_stack`]) — lets the profiler report peak VM
    /// stack depth without the dispatch loop tracking it per op.
    max_stack: u16,
}

/// Type-specialized fast path for `Op::Binary` on two numbers,
/// replicating [`Interp::eval_binary`]'s numeric results exactly: the
/// same IEEE-754 operations, the same `ToInt32`/`ToUint32` on bit ops,
/// the same `NaN` behavior on comparisons. Operators whose Num × Num
/// semantics involve anything beyond plain arithmetic (`in`,
/// `instanceof`, loose equality) return `None` and take the generic
/// path.
fn num_binary(op: aji_ast::ast::BinaryOp, a: f64, b: f64) -> Option<Value> {
    use aji_ast::ast::BinaryOp::*;
    Some(match op {
        Add => Value::Num(a + b),
        Sub => Value::Num(a - b),
        Mul => Value::Num(a * b),
        Div => Value::Num(a / b),
        Rem => Value::Num(a % b),
        Exp => Value::Num(a.powf(b)),
        EqStrict => Value::Bool(a == b),
        NeqStrict => Value::Bool(a != b),
        Lt => Value::Bool(a < b),
        Le => Value::Bool(a <= b),
        Gt => Value::Bool(a > b),
        Ge => Value::Bool(a >= b),
        Shl | Shr | UShr | BitAnd | BitOr | BitXor => {
            let x = crate::convert::to_int32(a);
            let shift = crate::convert::to_uint32(b) & 31;
            Value::Num(match op {
                Shl => (x << shift) as f64,
                Shr => (x >> shift) as f64,
                UShr => ((x as u32) >> shift) as f64,
                BitAnd => (x & crate::convert::to_int32(b)) as f64,
                BitOr => (x | crate::convert::to_int32(b)) as f64,
                BitXor => (x ^ crate::convert::to_int32(b)) as f64,
                _ => unreachable!(),
            })
        }
        _ => return None,
    })
}

impl Interp {
    /// The compiled code for a function definition, compiling on first
    /// request. Returns `None` (memoized) when the function bails out of
    /// the compiled subset.
    pub(crate) fn vm_code(&mut self, def: &Rc<Function>) -> Option<Rc<VmCode>> {
        if let Some(cached) = self.vm_cache.get(&def.id) {
            return cached.clone();
        }
        let compiled = {
            let _span = aji_obs::span("vm-compile");
            compile_function(def)
        };
        let entry = match compiled {
            Ok(chunk) => {
                self.obs.vm_compiles.inc();
                let func_key = self.fn_display_key(chunk.func_name.as_deref(), chunk.func_span);
                self.trace(aji_obs::TraceKind::VmCompile, &func_key, "");
                let consts = chunk
                    .consts
                    .iter()
                    .map(|c| match c {
                        Const::Undefined => Value::Undefined,
                        Const::Null => Value::Null,
                        Const::Bool(b) => Value::Bool(*b),
                        Const::Num(n) => Value::Num(*n),
                        Const::Str(s) => Value::str(s),
                    })
                    .collect();
                let ics = (0..chunk.n_ics).map(|_| Cell::new(IC_EMPTY)).collect();
                let max_stack = aji_bytecode::max_stack(&chunk.ops);
                Some(Rc::new(VmCode {
                    chunk,
                    consts,
                    ics,
                    func_key,
                    max_stack,
                }))
            }
            Err(bail) => {
                self.obs.vm_bails.inc();
                if self.profiler.is_some() || self.obs.recorder.is_some() {
                    let key = self.fn_display_key(def.name.as_deref(), def.span);
                    self.trace(aji_obs::TraceKind::VmBail, &key, bail.0);
                    if let Some(mut p) = self.profiler.take() {
                        p.bail(def.id, || key);
                        self.profiler = Some(p);
                    }
                }
                None
            }
        };
        self.vm_cache.insert(def.id, entry.clone());
        entry
    }

    /// Executes a compiled function body in `scope` (the function scope
    /// the shared prologue populated). Returns the function's return
    /// value; JS exceptions and budget errors propagate as `Err` exactly
    /// like the tree-walker's.
    pub(crate) fn run_vm(&mut self, code: &VmCode, scope: &ScopeRef) -> Result<Value, JsError> {
        if let Some(p) = self.profiler.as_deref_mut() {
            // The chunk's statically computed stack bound stands in for
            // runtime tracking: depth at every pc is a compile-time
            // fact, so the dispatch loop stays observation-free.
            p.track_vm_stack(u64::from(code.max_stack));
        }
        self.run_vm_inner(code, scope)
    }

    /// The dispatch loop proper.
    fn run_vm_inner(&mut self, code: &VmCode, scope: &ScopeRef) -> Result<Value, JsError> {
        let chunk = &code.chunk;
        let mut slots: Vec<Value> = vec![Value::Undefined; chunk.n_slots as usize];
        {
            // Seed parameter/var slots from the prologue-bound scope: a
            // bound name carries its value, everything else hoists to
            // `undefined`.
            let sb = scope.borrow();
            for &(slot, name) in &chunk.entry {
                if let Some(v) = sb.get_own(&chunk.names[name as usize]) {
                    slots[slot as usize] = v;
                }
            }
        }
        let mut iters = vec![0u64; chunk.n_loops as usize];
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;
        while let Some(op) = chunk.ops.get(pc) {
            pc += 1;
            match op {
                Op::Step => self.step()?,
                Op::Const(i) => stack.push(code.consts[*i as usize].clone()),
                Op::Pop => {
                    stack.pop();
                }
                Op::LoadLocal(i) => stack.push(slots[*i as usize].clone()),
                Op::StoreLocal(i) => {
                    slots[*i as usize] = stack.last().expect("vm stack").clone();
                }
                Op::LocalUndef(i) => slots[*i as usize] = Value::Undefined,
                Op::LoadName(i) => {
                    let v = self.eval_ident(&chunk.names[*i as usize], scope)?;
                    stack.push(v);
                }
                Op::StoreName(i) => {
                    let v = stack.last().expect("vm stack").clone();
                    env::assign(scope, &chunk.names[*i as usize], v);
                }
                Op::LoadGlobal => stack.push(self.global_object()),
                Op::LoadThis => stack.push(env::this_value(scope)),
                Op::TypeOf => {
                    let v = stack.pop().expect("vm stack");
                    let t = self.type_of(&v);
                    stack.push(Value::str(t));
                }
                Op::TypeOfName { name, end } => {
                    let n = &chunk.names[*name as usize];
                    if env::lookup(scope, n).is_none()
                        && self.heap.own_prop(self.global_obj, n).is_none()
                    {
                        stack.push(Value::str("undefined"));
                        pc = *end as usize;
                    }
                }
                Op::UpdateLocal { slot, dec, prefix } => {
                    let old = stack.pop().expect("vm stack");
                    let old_n = self.to_number_value(&old)?;
                    let new_n = if *dec { old_n - 1.0 } else { old_n + 1.0 };
                    slots[*slot as usize] = Value::Num(new_n);
                    stack.push(Value::Num(if *prefix { new_n } else { old_n }));
                }
                Op::UpdateName { name, dec, prefix } => {
                    let old = stack.pop().expect("vm stack");
                    let old_n = self.to_number_value(&old)?;
                    let new_n = if *dec { old_n - 1.0 } else { old_n + 1.0 };
                    env::assign(scope, &chunk.names[*name as usize], Value::Num(new_n));
                    stack.push(Value::Num(if *prefix { new_n } else { old_n }));
                }
                Op::Unary(uop) => {
                    let v = stack.pop().expect("vm stack");
                    let r = self.unary_value(*uop, &v)?;
                    stack.push(r);
                }
                Op::Binary(bop) => {
                    let r = stack.pop().expect("vm stack");
                    let l = stack.pop().expect("vm stack");
                    let v = if let (Value::Num(a), Value::Num(b)) = (&l, &r) {
                        match num_binary(*bop, *a, *b) {
                            Some(v) => v,
                            None => self.eval_binary(*bop, l, r)?,
                        }
                    } else {
                        self.eval_binary(*bop, l, r)?
                    };
                    stack.push(v);
                }
                Op::ToStr => {
                    let v = stack.pop().expect("vm stack");
                    let s = self.to_string_value(&v);
                    stack.push(Value::from(s));
                }
                Op::Template { tpl, exprs } => {
                    let parts = stack.split_off(stack.len() - *exprs as usize);
                    let quasis = &chunk.templates[*tpl as usize];
                    let mut out = String::new();
                    for (i, q) in quasis.iter().enumerate() {
                        out.push_str(q);
                        if let Some(Value::Str(s)) = parts.get(i) {
                            out.push_str(s);
                        }
                    }
                    stack.push(Value::from(out));
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfFalse(t) => {
                    let v = stack.pop().expect("vm stack");
                    if !self.truthy(&v) {
                        pc = *t as usize;
                    }
                }
                Op::JumpTruthyKeep(t) => {
                    let keep = self.truthy(stack.last().expect("vm stack"));
                    if keep {
                        pc = *t as usize;
                    }
                }
                Op::JumpFalsyKeep(t) => {
                    let keep = !self.truthy(stack.last().expect("vm stack"));
                    if keep {
                        pc = *t as usize;
                    }
                }
                Op::JumpNotNullishKeep(t) => {
                    if !stack.last().expect("vm stack").is_nullish() {
                        pc = *t as usize;
                    }
                }
                Op::MakeArray { n, span } => {
                    let elems = stack.split_off(stack.len() - *n as usize);
                    let loc = self.static_loc(chunk.spans[*span as usize]);
                    let arr = self.heap.alloc(ObjKind::Array(elems));
                    self.heap.get_mut(arr).proto = Some(self.protos.array);
                    self.heap.get_mut(arr).born_at = loc;
                    self.tracer.on_alloc(loc);
                    stack.push(Value::Obj(arr));
                }
                Op::MakeObject { span } => {
                    let loc = self.static_loc(chunk.spans[*span as usize]);
                    let obj = self.heap.alloc_plain(Some(self.protos.object), loc);
                    self.tracer.on_alloc(loc);
                    stack.push(Value::Obj(obj));
                }
                Op::SetLitProp { name } => {
                    let v = stack.pop().expect("vm stack");
                    let objv = stack.last().expect("vm stack").clone();
                    let name = &chunk.names[*name as usize];
                    self.tracer.on_static_write(&objv, name, &v);
                    let id = objv.as_obj().expect("object literal");
                    self.heap.set_prop(id, name, v);
                }
                Op::GetProp { name, ic } => {
                    let base = stack.pop().expect("vm stack");
                    let v = self.ic_get(code, *ic, &base, &chunk.names[*name as usize])?;
                    stack.push(v);
                }
                Op::GetPropDyn { span } => {
                    let key = stack.pop().expect("vm stack");
                    let base = stack.pop().expect("vm stack");
                    let op_loc = self.static_loc(chunk.spans[*span as usize]);
                    let v = self.computed_member_read(&base, key, op_loc)?;
                    stack.push(v);
                }
                Op::SetProp { name, ic } => {
                    let base = stack.pop().expect("vm stack");
                    let v = stack.last().expect("vm stack").clone();
                    let name = &chunk.names[*name as usize];
                    self.tracer.on_static_write(&base, name, &v);
                    self.ic_set(code, *ic, &base, name, v)?;
                }
                Op::SetPropDyn { span } => {
                    let key = stack.pop().expect("vm stack");
                    let base = stack.pop().expect("vm stack");
                    let v = stack.last().expect("vm stack").clone();
                    let op_loc = self.static_loc(chunk.spans[*span as usize]);
                    self.computed_member_write(&base, key, v, op_loc)?;
                }
                Op::GetMethod { name, ic } => {
                    let base = stack.last().expect("vm stack").clone();
                    let f = self.ic_get(code, *ic, &base, &chunk.names[*name as usize])?;
                    stack.push(f);
                }
                Op::GetMethodDyn { span } => {
                    let key = stack.pop().expect("vm stack");
                    let base = stack.last().expect("vm stack").clone();
                    let op_loc = self.static_loc(chunk.spans[*span as usize]);
                    let f = self.computed_member_read(&base, key, op_loc)?;
                    stack.push(f);
                }
                Op::Call { argc, span } => {
                    let argv = stack.split_off(stack.len() - *argc as usize);
                    let f = stack.pop().expect("vm stack");
                    let site = self.static_loc(chunk.spans[*span as usize]);
                    let r = self.call_value(f, Value::Undefined, &argv, site)?;
                    stack.push(r);
                }
                Op::CallMethod { argc, span } => {
                    let argv = stack.split_off(stack.len() - *argc as usize);
                    let f = stack.pop().expect("vm stack");
                    let base = stack.pop().expect("vm stack");
                    let site = self.static_loc(chunk.spans[*span as usize]);
                    let r = self.call_value(f, base, &argv, site)?;
                    stack.push(r);
                }
                Op::New { argc, span } => {
                    let argv = stack.split_off(stack.len() - *argc as usize);
                    let c = stack.pop().expect("vm stack");
                    let site = self.static_loc(chunk.spans[*span as usize]);
                    let r = self.construct(c, &argv, site, site)?;
                    stack.push(r);
                }
                Op::LoopEnter(k) => {
                    iters[*k as usize] = 0;
                    // The tree-walker's `exec_loop` takes any pending
                    // label on entry; compiled loops are unlabeled, so
                    // the take just clears it.
                    self.pending_label = None;
                }
                Op::IterCheck(k) => {
                    let c = &mut iters[*k as usize];
                    *c += 1;
                    if *c > self.opts.max_loop_iters {
                        return Err(self.trip_budget(BudgetKind::Loop));
                    }
                }
                Op::Throw => {
                    let v = stack.pop().expect("vm stack");
                    return Err(JsError::Thrown(v));
                }
                Op::Return => return Ok(stack.pop().expect("vm stack")),
                Op::ReturnUndef => return Ok(Value::Undefined),
                Op::StepLoadLocal(i) => {
                    self.step()?;
                    stack.push(slots[*i as usize].clone());
                }
                Op::StepConst(i) => {
                    self.step()?;
                    stack.push(code.consts[*i as usize].clone());
                }
                Op::StepLoadName(i) => {
                    self.step()?;
                    let v = self.eval_ident(&chunk.names[*i as usize], scope)?;
                    stack.push(v);
                }
                Op::StoreLocalPop(i) => {
                    slots[*i as usize] = stack.pop().expect("vm stack");
                }
                Op::SetPropPop { name, ic } => {
                    let base = stack.pop().expect("vm stack");
                    let v = stack.pop().expect("vm stack");
                    let name = &chunk.names[*name as usize];
                    self.tracer.on_static_write(&base, name, &v);
                    self.ic_set(code, *ic, &base, name, v)?;
                }
                Op::StepStep => {
                    self.step()?;
                    self.step()?;
                }
                Op::StepLoadLocalGetProp { slot, name, ic } => {
                    self.step()?;
                    let base = slots[*slot as usize].clone();
                    let v = self.ic_get(code, *ic, &base, &chunk.names[*name as usize])?;
                    stack.push(v);
                }
            }
        }
        Ok(Value::Undefined)
    }

    /// Inline-cached property read. A hit is exactly `v.clone()` of an
    /// own data property on a plain object — observationally identical to
    /// the generic `get_property` path, which finds own properties first
    /// and involves no getters, proxies, or tracer events for them.
    fn ic_get(
        &mut self,
        code: &VmCode,
        ic: u16,
        base: &Value,
        name: &str,
    ) -> Result<Value, JsError> {
        let cell = &code.ics[ic as usize];
        let e = cell.get();
        if let Some(id) = base.as_obj() {
            if id.0 == e.obj {
                if let Some((k, p)) = self.heap.get(id).props.entry_at(e.slot as usize) {
                    if &**k == name {
                        if let PropValue::Data(v) = &p.value {
                            let v = v.clone();
                            self.ic_hits_pending += 1;
                            if let Some(p) = self.profiler.as_deref_mut() {
                                p.ic_hit();
                            }
                            return Ok(v);
                        }
                    }
                }
            }
            self.ic_miss(code, ic, name);
            let v = self.get_property(base.clone(), name, None)?;
            // Patch: cache own data properties of plain objects only.
            // Arrays and functions synthesize properties (`length`, lazy
            // `prototype`) that must keep taking the generic path.
            let o = self.heap.get(id);
            if matches!(o.kind, ObjKind::Plain) {
                if let Some((slot, p)) = o.props.slot_and_prop(name) {
                    if matches!(p.value, PropValue::Data(_)) {
                        cell.set(IcEntry {
                            obj: id.0,
                            slot: slot as u32,
                        });
                    }
                }
            }
            return Ok(v);
        }
        self.ic_miss(code, ic, name);
        self.get_property(base.clone(), name, None)
    }

    /// Inline-cached property write (tracer events already emitted by the
    /// caller, matching the tree-walker's order). A hit replaces an own
    /// data property in place — exactly what `set_property` does for a
    /// plain object whose own data property shadows any inherited setter.
    fn ic_set(
        &mut self,
        code: &VmCode,
        ic: u16,
        base: &Value,
        name: &str,
        v: Value,
    ) -> Result<(), JsError> {
        let cell = &code.ics[ic as usize];
        let e = cell.get();
        if let Some(id) = base.as_obj() {
            if id.0 == e.obj
                && self
                    .heap
                    .get_mut(id)
                    .props
                    .replace_data_at(e.slot as usize, name, v.clone())
            {
                self.ic_hits_pending += 1;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.ic_hit();
                }
                return Ok(());
            }
            self.ic_miss(code, ic, name);
            self.set_property(base, name, v)?;
            let o = self.heap.get(id);
            if matches!(o.kind, ObjKind::Plain) {
                if let Some((slot, p)) = o.props.slot_and_prop(name) {
                    if matches!(p.value, PropValue::Data(_)) {
                        cell.set(IcEntry {
                            obj: id.0,
                            slot: slot as u32,
                        });
                    }
                }
            }
            return Ok(());
        }
        self.ic_miss(code, ic, name);
        self.set_property(base, name, v)
    }

    /// The IC miss path's bookkeeping: the global miss counter, the
    /// profiler's per-frame and per-site tallies, and an `IcMiss` trace
    /// event keyed `function@file:line:prop#ic`. Cold — the benchmark
    /// workload takes this path ~1k times against ~17M hits.
    #[cold]
    fn ic_miss(&mut self, code: &VmCode, ic: u16, name: &str) {
        self.obs.ic_misses.inc();
        if let Some(p) = self.profiler.as_deref_mut() {
            p.ic_miss(name, ic);
        }
        if self.obs.recorder.is_some() {
            let site = format!("{}:{name}#{ic}", code.func_key);
            self.trace(aji_obs::TraceKind::IcMiss, &site, "");
        }
    }
}
