//! Interpreter errors and non-local control flow.

use crate::value::Value;
use std::fmt;

/// Why an evaluation stopped abnormally.
#[derive(Debug, Clone)]
pub enum JsError {
    /// A JavaScript exception was thrown and not yet caught.
    Thrown(Value),
    /// The execution budget (steps, stack depth or loop iterations) was
    /// exhausted. Not catchable by `try`/`catch`: the approximate
    /// interpreter uses this to abort long-running explorations (§3 of the
    /// paper).
    Budget(BudgetKind),
    /// An internal interpreter error (unsupported construct, bad state).
    Internal(String),
}

/// Which budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Total evaluation steps.
    Steps,
    /// Call-stack depth.
    Stack,
    /// Iterations of a single loop.
    Loop,
}

impl JsError {
    /// Convenience constructor for throwing a plain string as an error
    /// value (the interpreter usually throws proper `Error` objects; this
    /// is for internal fast paths).
    pub fn thrown_str(msg: impl AsRef<str>) -> JsError {
        JsError::Thrown(Value::str(msg))
    }

    /// Whether the error is catchable by `try`/`catch`.
    pub fn is_catchable(&self) -> bool {
        matches!(self, JsError::Thrown(_))
    }
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::Thrown(v) => write!(f, "uncaught exception: {}", v),
            JsError::Budget(k) => write!(f, "execution budget exhausted ({:?})", k),
            JsError::Internal(m) => write!(f, "internal interpreter error: {}", m),
        }
    }
}

impl std::error::Error for JsError {}

/// Result of executing a statement: how control continues.
#[derive(Debug, Clone)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `return v` unwinding to the nearest call.
    Return(Value),
    /// `break [label]` unwinding to the matching loop/switch.
    Break(Option<String>),
    /// `continue [label]` unwinding to the matching loop.
    Continue(Option<String>),
}

impl Flow {
    /// Whether this is [`Flow::Normal`].
    pub fn is_normal(&self) -> bool {
        matches!(self, Flow::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catchability() {
        assert!(JsError::thrown_str("boom").is_catchable());
        assert!(!JsError::Budget(BudgetKind::Steps).is_catchable());
        assert!(!JsError::Internal("x".into()).is_catchable());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            JsError::thrown_str("boom").to_string(),
            "uncaught exception: boom"
        );
        assert!(JsError::Budget(BudgetKind::Loop)
            .to_string()
            .contains("Loop"));
    }
}
