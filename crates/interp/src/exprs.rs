//! Expression evaluation, including the dynamic-property-access
//! instrumentation points that drive the approximate interpreter's hints.

use crate::convert::{prim_to_number, to_int32, to_uint32};
use crate::env::{self, ScopeRef};
use crate::error::JsError;
use crate::heap::{FuncData, ObjKind, Prop, PropValue};
use crate::machine::Interp;
use crate::value::{ObjId, Value};
use aji_ast::ast::*;
use std::rc::Rc;

impl Interp {
    /// Evaluates an expression in a scope.
    pub(crate) fn eval_expr(&mut self, e: &Expr, scope: &ScopeRef) -> Result<Value, JsError> {
        self.step()?;
        match &e.kind {
            ExprKind::Num(n) => Ok(Value::Num(*n)),
            ExprKind::Str(s) => Ok(Value::str(s)),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Template { quasis, exprs } => {
                let mut out = String::new();
                for (i, q) in quasis.iter().enumerate() {
                    out.push_str(q);
                    if i < exprs.len() {
                        let v = self.eval_expr(&exprs[i], scope)?;
                        out.push_str(&self.to_string_value(&v));
                    }
                }
                Ok(Value::from(out))
            }
            ExprKind::Regex { pattern, flags } => {
                let loc = self.static_loc(e.span);
                let obj = self.heap.alloc_plain(Some(self.protos.regexp), loc);
                self.tracer.on_alloc(loc);
                self.heap.set_prop(obj, "source", Value::str(pattern));
                self.heap.set_prop(obj, "flags", Value::str(flags));
                self.heap
                    .set_prop(obj, "lastIndex", Value::Num(0.0));
                Ok(Value::Obj(obj))
            }
            ExprKind::Ident(name) => self.eval_ident(name, scope),
            ExprKind::This => Ok(env::this_value(scope)),
            ExprKind::Array(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for el in elems {
                    match el {
                        None => out.push(Value::Undefined),
                        Some(ExprOrSpread { spread: false, expr }) => {
                            out.push(self.eval_expr(expr, scope)?)
                        }
                        Some(ExprOrSpread { spread: true, expr }) => {
                            let v = self.eval_expr(expr, scope)?;
                            out.extend(self.iterate_values(&v)?);
                        }
                    }
                }
                let loc = self.static_loc(e.span);
                let arr = self.heap.alloc(ObjKind::Array(out));
                self.heap.get_mut(arr).proto = Some(self.protos.array);
                self.heap.get_mut(arr).born_at = loc;
                self.tracer.on_alloc(loc);
                Ok(Value::Obj(arr))
            }
            ExprKind::Object(props) => self.eval_object_literal(e, props, scope),
            ExprKind::Function(f) | ExprKind::Arrow(f) => Ok(self.make_closure(f, scope)),
            ExprKind::Class(c) => self.eval_class(c, scope),
            ExprKind::Unary { op, expr } => self.eval_unary(*op, expr, scope),
            ExprKind::Update { op, prefix, expr } => {
                let old = self.eval_expr(expr, scope)?;
                let old_n = self.to_number_value(&old)?;
                let new_n = match op {
                    UpdateOp::Inc => old_n + 1.0,
                    UpdateOp::Dec => old_n - 1.0,
                };
                self.assign_to_expr(expr, Value::Num(new_n), scope)?;
                Ok(Value::Num(if *prefix { new_n } else { old_n }))
            }
            ExprKind::Binary { op, left, right } => {
                let l = self.eval_expr(left, scope)?;
                let r = self.eval_expr(right, scope)?;
                self.eval_binary(*op, l, r)
            }
            ExprKind::Logical { op, left, right } => {
                let l = self.eval_expr(left, scope)?;
                let take_right = match op {
                    LogicalOp::And => self.truthy(&l),
                    LogicalOp::Or => !self.truthy(&l),
                    LogicalOp::Nullish => l.is_nullish(),
                };
                if take_right {
                    self.eval_expr(right, scope)
                } else {
                    Ok(l)
                }
            }
            ExprKind::Assign { op, target, value } => {
                if *op == AssignOp::Assign {
                    let v = self.eval_expr(value, scope)?;
                    self.assign_to_target(target, v.clone(), scope)?;
                    return Ok(v);
                }
                // Compound assignment: read-modify-write.
                let target_expr = match target {
                    AssignTarget::Ident { name, span, id } => Expr {
                        id: *id,
                        span: *span,
                        kind: ExprKind::Ident(name.clone()),
                    },
                    AssignTarget::Member(m) => (**m).clone(),
                    AssignTarget::Pattern(p) => {
                        return Err(JsError::Internal(format!(
                            "compound assignment to pattern at {:?}",
                            p.span
                        )))
                    }
                };
                let old = self.eval_expr(&target_expr, scope)?;
                let new = match op {
                    AssignOp::And => {
                        if self.truthy(&old) {
                            self.eval_expr(value, scope)?
                        } else {
                            return Ok(old);
                        }
                    }
                    AssignOp::Or => {
                        if !self.truthy(&old) {
                            self.eval_expr(value, scope)?
                        } else {
                            return Ok(old);
                        }
                    }
                    AssignOp::Nullish => {
                        if old.is_nullish() {
                            self.eval_expr(value, scope)?
                        } else {
                            return Ok(old);
                        }
                    }
                    _ => {
                        let r = self.eval_expr(value, scope)?;
                        let bop = op
                            .binary_op()
                            .expect("compound assignment with binary op");
                        self.eval_binary(bop, old, r)?
                    }
                };
                self.assign_to_expr(&target_expr, new.clone(), scope)?;
                Ok(new)
            }
            ExprKind::Cond { test, cons, alt } => {
                let t = self.eval_expr(test, scope)?;
                if self.truthy(&t) {
                    self.eval_expr(cons, scope)
                } else {
                    self.eval_expr(alt, scope)
                }
            }
            ExprKind::Call {
                callee,
                args,
                optional,
            } => self.eval_call(e, callee, args, *optional, scope),
            ExprKind::New { callee, args } => {
                let c = self.eval_expr(callee, scope)?;
                let argv = self.eval_args(args, scope)?;
                let site = self.static_loc(e.span);
                self.construct(c, &argv, site, site)
            }
            ExprKind::Member {
                obj,
                prop,
                optional,
            } => {
                let base = self.eval_expr(obj, scope)?;
                if *optional && base.is_nullish() {
                    return Ok(Value::Undefined);
                }
                self.eval_member_read(e, &base, prop, scope)
            }
            ExprKind::Seq(exprs) => {
                let mut last = Value::Undefined;
                for x in exprs {
                    last = self.eval_expr(x, scope)?;
                }
                Ok(last)
            }
            ExprKind::Paren(inner) => self.eval_expr(inner, scope),
        }
    }

    /// Whether `eval` in this scope still refers to the builtin.
    fn resolves_to_global_eval(&self, scope: &ScopeRef) -> bool {
        match env::lookup(scope, "eval") {
            Some(Value::Obj(id)) => match &self.heap.get(id).kind {
                crate::heap::ObjKind::Native(n) => {
                    self.natives[*n as usize].name == "global_eval"
                }
                _ => false,
            },
            _ => false,
        }
    }

    pub(crate) fn eval_ident(&mut self, name: &str, scope: &ScopeRef) -> Result<Value, JsError> {
        match name {
            "undefined" => return Ok(Value::Undefined),
            "NaN" => return Ok(Value::Num(f64::NAN)),
            "Infinity" => return Ok(Value::Num(f64::INFINITY)),
            "globalThis" | "global" => return Ok(self.global_object()),
            _ => {}
        }
        if let Some(v) = env::lookup(scope, name) {
            return Ok(v);
        }
        // Fall back to global-object properties (builtins are installed
        // both as scope bindings and there, but user code can add more).
        if let Some(p) = self.heap.own_prop(self.global_obj, name) {
            if let PropValue::Data(v) = p.value {
                return Ok(v);
            }
        }
        if self.opts.approx {
            // Unknown free variable: represent with the proxy and keep
            // exploring (§3 of the paper).
            Ok(self.proxy_value())
        } else {
            Err(self.throw_error("ReferenceError", format!("{name} is not defined")))
        }
    }

    fn eval_object_literal(
        &mut self,
        e: &Expr,
        props: &[Property],
        scope: &ScopeRef,
    ) -> Result<Value, JsError> {
        let loc = self.static_loc(e.span);
        let obj = self.heap.alloc_plain(Some(self.protos.object), loc);
        self.tracer.on_alloc(loc);
        let objv = Value::Obj(obj);
        for p in props {
            match p {
                Property::KeyValue { key, value } => {
                    let v = self.eval_expr(value, scope)?;
                    match key {
                        PropName::Computed(kexpr) => {
                            // A computed key in a literal is a dynamic
                            // property write.
                            let kv = self.eval_expr(kexpr, scope)?;
                            if self.heap.is_proxy(&kv) {
                                continue;
                            }
                            let k = self.to_string_value(&kv);
                            let op_loc = self.static_loc(e.span);
                            let obj_loc = self.loc_of(&objv);
                            let val_loc = self.loc_of(&v);
                            self.tracer
                                .on_dynamic_write(op_loc, obj_loc, &k, val_loc, &v);
                            self.heap.set_prop(obj, &k, v);
                        }
                        _ => {
                            let k = key.static_name().unwrap_or_default();
                            self.tracer.on_static_write(&objv, &k, &v);
                            self.heap.set_prop(obj, &k, v);
                        }
                    }
                }
                Property::Method { key, kind, func } => {
                    let f = self.make_closure(func, scope);
                    let k = match key {
                        PropName::Computed(kexpr) => {
                            let kv = self.eval_expr(kexpr, scope)?;
                            if self.heap.is_proxy(&kv) {
                                continue;
                            }
                            self.to_string_value(&kv)
                        }
                        _ => key.static_name().unwrap_or_default(),
                    };
                    match kind {
                        MethodKind::Method => {
                            self.tracer.on_static_write(&objv, &k, &f);
                            self.heap.set_prop(obj, &k, f);
                        }
                        MethodKind::Get | MethodKind::Set => {
                            let existing = self.heap.get(obj).props.get(&k).cloned();
                            let (mut get, mut set) = match existing {
                                Some(Prop {
                                    value: PropValue::Accessor { get, set },
                                    ..
                                }) => (get, set),
                                _ => (None, None),
                            };
                            if *kind == MethodKind::Get {
                                get = Some(f);
                            } else {
                                set = Some(f);
                            }
                            self.heap.get_mut(obj).props.insert(
                                Rc::from(k.as_str()),
                                Prop {
                                    value: PropValue::Accessor { get, set },
                                    enumerable: true,
                                },
                            );
                        }
                    }
                }
                Property::Spread(inner) => {
                    let src = self.eval_expr(inner, scope)?;
                    if let Some(sid) = src.as_obj() {
                        if !matches!(self.heap.get(sid).kind, ObjKind::Proxy) {
                            for k in self.heap.own_enumerable_keys(sid) {
                                let v = self.get_property(src.clone(), &k, None)?;
                                self.heap.set_prop(obj, &k, v);
                            }
                        }
                    }
                }
            }
        }
        Ok(objv)
    }

    fn eval_unary(
        &mut self,
        op: UnaryOp,
        expr: &Expr,
        scope: &ScopeRef,
    ) -> Result<Value, JsError> {
        if op == UnaryOp::TypeOf {
            // `typeof x` on an unbound identifier yields "undefined".
            if let ExprKind::Ident(name) = &expr.unparen().kind {
                if env::lookup(scope, name).is_none()
                    && self.heap.own_prop(self.global_obj, name).is_none()
                    && !matches!(
                        name.as_str(),
                        "undefined" | "NaN" | "Infinity" | "globalThis" | "global"
                    )
                {
                    return Ok(Value::str("undefined"));
                }
            }
            let v = self.eval_expr(expr, scope)?;
            return Ok(Value::str(self.type_of(&v)));
        }
        if op == UnaryOp::Delete {
            if let ExprKind::Member { obj, prop, .. } = &expr.unparen().kind {
                let base = self.eval_expr(obj, scope)?;
                let key = match prop {
                    MemberProp::Static(n) => Some(n.clone()),
                    MemberProp::Computed(k) => {
                        let kv = self.eval_expr(k, scope)?;
                        if self.heap.is_proxy(&kv) {
                            None
                        } else {
                            Some(self.to_string_value(&kv))
                        }
                    }
                };
                if let (Some(id), Some(k)) = (base.as_obj(), key) {
                    if !matches!(self.heap.get(id).kind, ObjKind::Proxy) {
                        return Ok(Value::Bool(self.heap.delete_prop(id, &k)));
                    }
                }
                return Ok(Value::Bool(true));
            }
            let _ = self.eval_expr(expr, scope)?;
            return Ok(Value::Bool(true));
        }
        let v = self.eval_expr(expr, scope)?;
        self.unary_value(op, &v)
    }

    /// Applies a simple (non-`typeof`, non-`delete`) unary operator —
    /// shared by the tree-walker and the bytecode VM.
    pub(crate) fn unary_value(&mut self, op: UnaryOp, v: &Value) -> Result<Value, JsError> {
        Ok(match op {
            UnaryOp::Neg => Value::Num(-self.to_number_value(v)?),
            UnaryOp::Pos => Value::Num(self.to_number_value(v)?),
            UnaryOp::Not => Value::Bool(!self.truthy(v)),
            UnaryOp::BitNot => Value::Num(!to_int32(self.to_number_value(v)?) as f64),
            UnaryOp::Void => Value::Undefined,
            UnaryOp::TypeOf | UnaryOp::Delete => unreachable!(),
        })
    }

    pub(crate) fn eval_binary(
        &mut self,
        op: BinaryOp,
        l: Value,
        r: Value,
    ) -> Result<Value, JsError> {
        use BinaryOp::*;
        match op {
            Add => {
                let lp = self.to_primitive(&l)?;
                let rp = self.to_primitive(&r)?;
                if matches!(lp, Value::Str(_)) || matches!(rp, Value::Str(_)) {
                    let mut s = self.to_string_value(&lp);
                    s.push_str(&self.to_string_value(&rp));
                    Ok(Value::from(s))
                } else {
                    Ok(Value::Num(prim_to_number(&lp) + prim_to_number(&rp)))
                }
            }
            Sub | Mul | Div | Rem | Exp => {
                let ln = self.to_number_value(&l)?;
                let rn = self.to_number_value(&r)?;
                Ok(Value::Num(match op {
                    Sub => ln - rn,
                    Mul => ln * rn,
                    Div => ln / rn,
                    Rem => ln % rn,
                    Exp => ln.powf(rn),
                    _ => unreachable!(),
                }))
            }
            EqStrict => Ok(Value::Bool(l.strict_eq(&r))),
            NeqStrict => Ok(Value::Bool(!l.strict_eq(&r))),
            EqLoose => Ok(Value::Bool(self.loose_eq(&l, &r)?)),
            NeqLoose => Ok(Value::Bool(!self.loose_eq(&l, &r)?)),
            Lt | Le | Gt | Ge => {
                let lp = self.to_primitive(&l)?;
                let rp = self.to_primitive(&r)?;
                let b = if let (Value::Str(a), Value::Str(b)) = (&lp, &rp) {
                    match op {
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    }
                } else {
                    let a = prim_to_number(&lp);
                    let b = prim_to_number(&rp);
                    match op {
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    }
                };
                Ok(Value::Bool(b))
            }
            Shl | Shr | UShr | BitAnd | BitOr | BitXor => {
                let a = to_int32(self.to_number_value(&l)?);
                let b = self.to_number_value(&r)?;
                let shift = to_uint32(b) & 31;
                Ok(Value::Num(match op {
                    Shl => (a << shift) as f64,
                    Shr => (a >> shift) as f64,
                    UShr => ((a as u32) >> shift) as f64,
                    BitAnd => (a & to_int32(b)) as f64,
                    BitOr => (a | to_int32(b)) as f64,
                    BitXor => (a ^ to_int32(b)) as f64,
                    _ => unreachable!(),
                }))
            }
            In => {
                let key = self.to_string_value(&l);
                match r.as_obj() {
                    Some(id) => {
                        if matches!(self.heap.get(id).kind, ObjKind::Proxy) {
                            Ok(Value::Bool(true))
                        } else {
                            Ok(Value::Bool(self.heap.lookup(id, &key).is_some()))
                        }
                    }
                    None => {
                        if self.opts.approx {
                            Ok(Value::Bool(false))
                        } else {
                            Err(self.throw_error(
                                "TypeError",
                                "cannot use 'in' operator on non-object",
                            ))
                        }
                    }
                }
            }
            InstanceOf => {
                let (Some(oid), Some(cid)) = (l.as_obj(), r.as_obj()) else {
                    return Ok(Value::Bool(false));
                };
                if matches!(self.heap.get(cid).kind, ObjKind::Proxy) {
                    return Ok(Value::Bool(false));
                }
                let proto = match self.heap.own_prop(cid, "prototype") {
                    Some(Prop {
                        value: PropValue::Data(Value::Obj(p)),
                        ..
                    }) => p,
                    _ => return Ok(Value::Bool(false)),
                };
                let mut cur = self.heap.get(oid).proto;
                let mut hops = 0;
                while let Some(p) = cur {
                    if p == proto {
                        return Ok(Value::Bool(true));
                    }
                    cur = self.heap.get(p).proto;
                    hops += 1;
                    if hops > 64 {
                        break;
                    }
                }
                Ok(Value::Bool(false))
            }
        }
    }

    fn eval_args(
        &mut self,
        args: &[ExprOrSpread],
        scope: &ScopeRef,
    ) -> Result<Vec<Value>, JsError> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval_expr(&a.expr, scope)?;
            if a.spread {
                out.extend(self.iterate_values(&v)?);
            } else {
                out.push(v);
            }
        }
        Ok(out)
    }

    fn eval_call(
        &mut self,
        e: &Expr,
        callee: &Expr,
        args: &[ExprOrSpread],
        optional: bool,
        scope: &ScopeRef,
    ) -> Result<Value, JsError> {
        let call_site = self.static_loc(e.span);
        let callee_u = callee.unparen();

        // `super(...)` — constructor chaining.
        if let ExprKind::Ident(name) = &callee_u.kind {
            if name == "super" {
                let sc = env::lookup(scope, "%superctor%").unwrap_or(Value::Undefined);
                let this = env::this_value(scope);
                let argv = self.eval_args(args, scope)?;
                return self.call_value(sc, this, &argv, call_site);
            }
            if name == "eval" && self.resolves_to_global_eval(scope) {
                // Direct eval: run in the caller's scope.
                let argv = self.eval_args(args, scope)?;
                let code = match argv.first() {
                    Some(Value::Str(s)) => s.to_string(),
                    Some(other) => return Ok(other.clone()),
                    None => return Ok(Value::Undefined),
                };
                return self.run_eval(&code, scope);
            }
        }

        // Method call: `base.m(...)` / `base[k](...)`.
        if let ExprKind::Member {
            obj,
            prop,
            optional: member_opt,
        } = &callee_u.kind
        {
            // `super.m(...)`.
            if matches!(&obj.unparen().kind, ExprKind::Ident(n) if n == "super") {
                let sp = env::lookup(scope, "%superproto%").unwrap_or(Value::Undefined);
                let this = env::this_value(scope);
                let m = match prop {
                    MemberProp::Static(n) => self.get_property(sp, n, None)?,
                    MemberProp::Computed(k) => {
                        let kv = self.eval_expr(k, scope)?;
                        let key = self.to_string_value(&kv);
                        self.get_property(sp, &key, None)?
                    }
                };
                let argv = self.eval_args(args, scope)?;
                return self.call_value(m, this, &argv, call_site);
            }

            let base = self.eval_expr(obj, scope)?;
            if (*member_opt || optional) && base.is_nullish() {
                return Ok(Value::Undefined);
            }
            let f = self.eval_member_read(callee_u, &base, prop, scope)?;
            if optional && f.is_nullish() {
                return Ok(Value::Undefined);
            }
            let argv = self.eval_args(args, scope)?;
            return self.call_value(f, base, &argv, call_site);
        }

        let f = self.eval_expr(callee, scope)?;
        if optional && f.is_nullish() {
            return Ok(Value::Undefined);
        }
        let argv = self.eval_args(args, scope)?;
        // Plain calls receive `undefined` as `this` (module-style sloppy
        // code expecting the global object still works because the global
        // scope's `this` is the global object and `this_value` walks up).
        self.call_value(f, Value::Undefined, &argv, call_site)
    }

    /// Reads `base[prop]` / `base.prop`, recording dynamic-read events for
    /// computed properties (the paper's read hints).
    pub(crate) fn eval_member_read(
        &mut self,
        member: &Expr,
        base: &Value,
        prop: &MemberProp,
        scope: &ScopeRef,
    ) -> Result<Value, JsError> {
        match prop {
            MemberProp::Static(name) => {
                if self.opts.observe_props {
                    let site = self.static_loc(member.span);
                    self.observe_prop_access(site, base, name);
                }
                self.get_property(base.clone(), name, None)
            }
            MemberProp::Computed(kexpr) => {
                let kv = self.eval_expr(kexpr, scope)?;
                let op_loc = self.static_loc(member.span);
                self.computed_member_read(base, kv, op_loc)
            }
        }
    }

    /// Reads `base[kv]` once the key expression has been evaluated —
    /// shared by the tree-walker and the bytecode VM. Emits the dynamic
    /// read hint (and the proxy-base hint of the §6 extension) when the
    /// access has a static location.
    pub(crate) fn computed_member_read(
        &mut self,
        base: &Value,
        kv: Value,
        op_loc: Option<aji_ast::Loc>,
    ) -> Result<Value, JsError> {
        if self.heap.is_proxy(&kv) {
            // Unknown key: in approx mode the result is unknown.
            if self.opts.approx {
                return Ok(self.proxy_value());
            }
        }
        let key = self.to_string_value(&kv);
        if self.heap.is_proxy(base) {
            // §6 extension: unknown base, known key.
            if let Some(op_loc) = op_loc {
                if matches!(kv, Value::Str(_)) {
                    self.tracer.on_proxy_base_read(op_loc, &key);
                }
            }
        }
        if self.opts.observe_props && matches!(kv, Value::Str(_)) {
            self.observe_prop_access(op_loc, base, &key);
        }
        let result = self.get_property(base.clone(), &key, op_loc)?;
        if let Some(op_loc) = op_loc {
            let result_loc = self.loc_of(&result);
            self.tracer.on_dynamic_read(op_loc, &result, result_loc);
        }
        Ok(result)
    }

    /// Writes `base[kv] = v` once the key expression has been evaluated —
    /// shared by the tree-walker and the bytecode VM. Proxy keys skip the
    /// write (and the hint) entirely.
    pub(crate) fn computed_member_write(
        &mut self,
        base: &Value,
        kv: Value,
        v: Value,
        op_loc: Option<aji_ast::Loc>,
    ) -> Result<(), JsError> {
        if self.heap.is_proxy(&kv) {
            // Unknown key: skip the write (and the hint).
            return Ok(());
        }
        let key = self.to_string_value(&kv);
        let obj_loc = self.loc_of(base);
        let val_loc = self.loc_of(&v);
        self.tracer
            .on_dynamic_write(op_loc, obj_loc, &key, val_loc, &v);
        self.set_property(base, &key, v)
    }

    /// Assigns `v` to an assignment target.
    pub(crate) fn assign_to_target(
        &mut self,
        target: &AssignTarget,
        v: Value,
        scope: &ScopeRef,
    ) -> Result<(), JsError> {
        match target {
            AssignTarget::Ident { name, .. } => {
                env::assign(scope, name, v);
                Ok(())
            }
            AssignTarget::Member(m) => self.assign_to_expr(m, v, scope),
            AssignTarget::Pattern(p) => self.bind_pattern(p, v, scope, false),
        }
    }

    /// Assigns `v` to an lvalue expression (identifier or member).
    pub(crate) fn assign_to_expr(
        &mut self,
        target: &Expr,
        v: Value,
        scope: &ScopeRef,
    ) -> Result<(), JsError> {
        match &target.unparen().kind {
            ExprKind::Ident(name) => {
                env::assign(scope, name, v);
                Ok(())
            }
            ExprKind::Member { obj, prop, .. } => {
                let base = self.eval_expr(obj, scope)?;
                match prop {
                    MemberProp::Static(name) => {
                        // Static property write: the approximate
                        // interpreter's `this`-map is maintained through
                        // this tracer event.
                        self.tracer.on_static_write(&base, name, &v);
                        self.set_property(&base, name, v)
                    }
                    MemberProp::Computed(kexpr) => {
                        let kv = self.eval_expr(kexpr, scope)?;
                        let op_loc = self.static_loc(target.span);
                        self.computed_member_write(&base, kv, v, op_loc)
                    }
                }
            }
            _ => Err(JsError::Internal("invalid assignment target".into())),
        }
    }

    /// Binds a destructuring pattern. With `declare` the names are created
    /// in `scope`; otherwise they are assigned through the scope chain.
    pub(crate) fn bind_pattern(
        &mut self,
        pat: &Pattern,
        v: Value,
        scope: &ScopeRef,
        declare: bool,
    ) -> Result<(), JsError> {
        match &pat.kind {
            PatternKind::Ident(name) => {
                if declare {
                    scope.borrow_mut().declare(name.as_str(), v);
                } else {
                    env::assign(scope, name, v);
                }
                Ok(())
            }
            PatternKind::Assign { pat, default } => {
                let v = if matches!(v, Value::Undefined) {
                    self.eval_expr(default, scope)?
                } else {
                    v
                };
                self.bind_pattern(pat, v, scope, declare)
            }
            PatternKind::Array { elems, rest } => {
                let values = self.iterate_values(&v)?;
                for (i, el) in elems.iter().enumerate() {
                    if let Some(el) = el {
                        let item = values.get(i).cloned().unwrap_or(Value::Undefined);
                        self.bind_pattern(el, item, scope, declare)?;
                    }
                }
                if let Some(r) = rest {
                    let tail: Vec<Value> = values
                        .iter()
                        .skip(elems.len())
                        .cloned()
                        .collect();
                    let arr = self.heap.alloc(ObjKind::Array(tail));
                    self.heap.get_mut(arr).proto = Some(self.protos.array);
                    self.bind_pattern(r, Value::Obj(arr), scope, declare)?;
                }
                Ok(())
            }
            PatternKind::Object { props, rest } => {
                let mut taken: Vec<String> = Vec::new();
                for pr in props {
                    let key = match &pr.key {
                        PropName::Computed(kexpr) => {
                            let kv = self.eval_expr(kexpr, scope)?;
                            self.to_string_value(&kv)
                        }
                        other => other.static_name().unwrap_or_default(),
                    };
                    let item = if v.is_nullish() {
                        if self.opts.approx {
                            self.proxy_value()
                        } else {
                            return Err(self.throw_error(
                                "TypeError",
                                "cannot destructure nullish value",
                            ));
                        }
                    } else {
                        self.get_property(v.clone(), &key, None)?
                    };
                    taken.push(key);
                    self.bind_pattern(&pr.value, item, scope, declare)?;
                }
                if let Some(r) = rest {
                    let obj = self.heap.alloc_plain(Some(self.protos.object), None);
                    if let Some(src) = v.as_obj() {
                        if !matches!(self.heap.get(src).kind, ObjKind::Proxy) {
                            for k in self.heap.own_enumerable_keys(src) {
                                if !taken.iter().any(|t| t.as_str() == &*k) {
                                    let pv = self.get_property(v.clone(), &k, None)?;
                                    self.heap.set_prop(obj, &k, pv);
                                }
                            }
                        }
                    }
                    self.bind_pattern(r, Value::Obj(obj), scope, declare)?;
                }
                Ok(())
            }
        }
    }

    /// Evaluates a class declaration/expression to its constructor value.
    pub(crate) fn eval_class(&mut self, c: &Class, scope: &ScopeRef) -> Result<Value, JsError> {
        let super_ctor = match &c.super_class {
            Some(e) => Some(self.eval_expr(e, scope)?),
            None => None,
        };

        // Find the explicit constructor, if any.
        let ctor_func = c.members.iter().find_map(|m| match &m.kind {
            ClassMemberKind::Constructor(f) => Some(f.clone()),
            _ => None,
        });

        // Build the constructor function object.
        let ctor_def: Rc<Function> = match &ctor_func {
            Some(f) => self
                .registry
                .get(f.id)
                .unwrap_or_else(|| Rc::new((**f).clone())),
            None => {
                // Synthesize an empty constructor attributed to the class.
                let f = Function {
                    id: self.ids.fresh(),
                    span: c.span,
                    name: c.name.clone(),
                    params: Vec::new(),
                    rest: None,
                    body: FuncBody::Block(Vec::new()),
                    is_arrow: false,
                    is_async: false,
                    is_generator: false,
                };
                let rc = Rc::new(f);
                self.registry
                    .add_dynamic(rc.clone(), self.static_loc(c.span));
                rc
            }
        };
        let born_at = self.static_loc(c.span);
        let is_default_ctor = ctor_func.is_none();
        let fid = self.heap.alloc(ObjKind::Function(Box::new(FuncData {
            def: ctor_def.clone(),
            env: scope.clone(),
            bound_this: None,
            bound_args: Vec::new(),
            super_ctor: super_ctor.clone().map(Box::new),
            home_proto: None,
        })));
        {
            let obj = self.heap.get_mut(fid);
            obj.proto = Some(self.protos.function);
            obj.born_at = born_at;
            obj.func_def = Some(ctor_def.id);
        }
        self.tracer
            .on_function_def(ctor_def.id, born_at, &Value::Obj(fid));

        // Prototype object, linked to the superclass prototype.
        let proto = self.function_prototype(fid);
        if let Some(sc) = &super_ctor {
            if let Some(scid) = sc.as_obj() {
                let sproto = self.function_prototype(scid);
                self.heap.get_mut(proto).proto = Some(sproto);
                // Static inheritance.
                self.heap.get_mut(fid).proto = Some(scid);
            }
        }
        // A derived class's default constructor forwards to super; model
        // by marking super_ctor and calling it in construct via the
        // synthesized empty body — we emulate by wrapping: store a flag on
        // the function object.
        if is_default_ctor && super_ctor.is_some() {
            self.heap
                .set_prop(fid, "__default_derived_ctor__", Value::Bool(true));
            if let Some(p) = self.heap.get_mut(fid).props.get_mut("__default_derived_ctor__") {
                p.enumerable = false;
            }
        }

        // Members.
        let mut instance_fields: Vec<(&ClassMember, &Option<Expr>)> = Vec::new();
        for m in &c.members {
            match &m.kind {
                ClassMemberKind::Constructor(_) => {}
                ClassMemberKind::Method { kind, func } => {
                    let fval = self.make_closure(func, scope);
                    // Wire up `super` support for the method.
                    if let Some(mid) = fval.as_obj() {
                        if let ObjKind::Function(data) = &mut self.heap.get_mut(mid).kind {
                            data.home_proto = Some(if m.is_static { fid } else { proto });
                            if let Some(sc) = &super_ctor {
                                data.super_ctor = Some(Box::new(sc.clone()));
                            }
                        }
                    }
                    let key = match &m.key {
                        PropName::Computed(kexpr) => {
                            let kv = self.eval_expr(kexpr, scope)?;
                            self.to_string_value(&kv)
                        }
                        other => other.static_name().unwrap_or_default(),
                    };
                    let target = if m.is_static { fid } else { proto };
                    match kind {
                        MethodKind::Method => {
                            let tv = Value::Obj(target);
                            self.tracer.on_static_write(&tv, &key, &fval);
                            self.heap.set_prop(target, &key, fval);
                            if let Some(p) = self.heap.get_mut(target).props.get_mut(&key) {
                                p.enumerable = false;
                            }
                        }
                        MethodKind::Get | MethodKind::Set => {
                            let existing = self.heap.get(target).props.get(&key).cloned();
                            let (mut get, mut set) = match existing {
                                Some(Prop {
                                    value: PropValue::Accessor { get, set },
                                    ..
                                }) => (get, set),
                                _ => (None, None),
                            };
                            if *kind == MethodKind::Get {
                                get = Some(fval);
                            } else {
                                set = Some(fval);
                            }
                            self.heap.get_mut(target).props.insert(
                                Rc::from(key.as_str()),
                                Prop {
                                    value: PropValue::Accessor { get, set },
                                    enumerable: false,
                                },
                            );
                        }
                    }
                }
                ClassMemberKind::Field(init) => {
                    if m.is_static {
                        let key = m.key.static_name().unwrap_or_default();
                        let v = match init {
                            Some(e) => self.eval_expr(e, scope)?,
                            None => Value::Undefined,
                        };
                        self.heap.set_prop(fid, &key, v);
                    } else {
                        instance_fields.push((m, init));
                    }
                }
            }
        }
        // Instance fields are evaluated per construction; store their
        // initializer thunks as hidden closures on the prototype so the
        // constructor path can run them.
        if !instance_fields.is_empty() {
            // Represent as a hidden array of [name, initFn] pairs.
            let mut pairs = Vec::new();
            for (m, init) in instance_fields {
                let key = m.key.static_name().unwrap_or_default();
                let init_v = match init {
                    Some(e) => {
                        // Wrap the initializer in a synthetic thunk so it
                        // evaluates with `this` bound at construction time.
                        let f = Function {
                            id: self.ids.fresh(),
                            span: m.span,
                            name: None,
                            params: Vec::new(),
                            rest: None,
                            body: FuncBody::Expr(Box::new(e.clone())),
                            is_arrow: false,
                            is_async: false,
                            is_generator: false,
                        };
                        let rc = Rc::new(f);
                        self.registry.add_dynamic(rc.clone(), None);
                        let thunk = self.heap.alloc(ObjKind::Function(Box::new(FuncData {
                            def: rc,
                            env: scope.clone(),
                            bound_this: None,
                            bound_args: Vec::new(),
                            super_ctor: None,
                            home_proto: None,
                        })));
                        self.heap.get_mut(thunk).proto = Some(self.protos.function);
                        Value::Obj(thunk)
                    }
                    None => Value::Undefined,
                };
                let pair = self
                    .heap
                    .alloc(ObjKind::Array(vec![Value::str(&key), init_v]));
                self.heap.get_mut(pair).proto = Some(self.protos.array);
                pairs.push(Value::Obj(pair));
            }
            let arr = self.heap.alloc(ObjKind::Array(pairs));
            self.heap.get_mut(arr).proto = Some(self.protos.array);
            self.heap.get_mut(fid).props.insert(
                Rc::from("__instance_fields__"),
                Prop::hidden(Value::Obj(arr)),
            );
        }
        Ok(Value::Obj(fid))
    }

    /// Runs dynamically generated code (`eval`) in the given scope.
    /// Allocation-site recording is disabled while inside (§3).
    pub(crate) fn run_eval(&mut self, code: &str, scope: &ScopeRef) -> Result<Value, JsError> {
        let file = self
            .source_map
            .add_file(format!("<eval:{}>", self.source_map.len()), code);
        let module = match aji_parser::parse_module(code, file, &mut self.ids) {
            Ok(m) => m,
            Err(e) => {
                return Err(self.throw_error("SyntaxError", e.to_string()));
            }
        };
        self.eval_depth += 1;
        let result = (|| -> Result<Value, JsError> {
            self.hoist(&module.body, scope)?;
            let mut completion = Value::Undefined;
            for s in &module.body {
                if let StmtKind::Expr(e) = &s.kind {
                    completion = self.eval_expr(e, scope)?;
                } else {
                    match self.exec_stmt(s, scope)? {
                        crate::error::Flow::Normal => {}
                        _ => break,
                    }
                }
            }
            Ok(completion)
        })();
        self.eval_depth -= 1;
        result
    }

    /// Constructs a new object honoring `__default_derived_ctor__` and
    /// `__instance_fields__` set by [`Self::eval_class`]. Called from the
    /// generic `construct` path via closures — exposed for the builtins.
    pub(crate) fn run_instance_fields(
        &mut self,
        ctor: ObjId,
        this: &Value,
    ) -> Result<(), JsError> {
        let fields = match self.heap.own_prop(ctor, "__instance_fields__") {
            Some(Prop {
                value: PropValue::Data(Value::Obj(arr)),
                ..
            }) => arr,
            _ => return Ok(()),
        };
        let pairs = match &self.heap.get(fields).kind {
            ObjKind::Array(elems) => elems.clone(),
            _ => return Ok(()),
        };
        for pair in pairs {
            let Some(pid) = pair.as_obj() else { continue };
            let (name, init) = match &self.heap.get(pid).kind {
                ObjKind::Array(elems) if elems.len() == 2 => {
                    (elems[0].clone(), elems[1].clone())
                }
                _ => continue,
            };
            let key = self.to_string_value(&name);
            let v = if self.heap.is_callable(&init) {
                self.call_value(init, this.clone(), &[], None)?
            } else {
                Value::Undefined
            };
            self.set_property(this, &key, v)?;
        }
        Ok(())
    }
}
