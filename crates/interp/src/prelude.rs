//! Node.js core modules implemented as embedded JavaScript, executed by
//! the interpreter itself. Modules that only shuffle data (`events`,
//! `util`, `path`, `assert`, `querystring`, `url`) get real semantics;
//! modules that touch the outside world (`fs`, `http`, ...) are replaced
//! by sandbox mocks (see `builtins::make_mock`), as §3 of the paper
//! prescribes.

/// JavaScript source of a core module, if we model it with real code.
pub fn source(name: &str) -> Option<&'static str> {
    Some(match name {
        "events" | "node:events" => EVENTS,
        "util" | "node:util" => UTIL,
        "path" | "node:path" => PATH,
        "assert" | "node:assert" => ASSERT,
        "querystring" | "node:querystring" => QUERYSTRING,
        "url" | "node:url" => URL,
        _ => return None,
    })
}

/// Whether the name is a Node.js core module we replace with a sandbox
/// mock.
pub fn is_mocked(name: &str) -> bool {
    let name = name.strip_prefix("node:").unwrap_or(name);
    matches!(
        name,
        "fs" | "http"
            | "https"
            | "net"
            | "os"
            | "crypto"
            | "child_process"
            | "stream"
            | "zlib"
            | "cluster"
            | "dns"
            | "tls"
            | "readline"
            | "worker_threads"
            | "tty"
            | "dgram"
            | "vm"
            | "buffer"
            | "string_decoder"
            | "timers"
            | "constants"
            | "module"
            | "v8"
            | "perf_hooks"
            | "http2"
            | "repl"
            | "inspector"
            | "async_hooks"
            | "domain"
            | "punycode"
            | "fs/promises"
            | "dns/promises"
            | "timers/promises"
    )
}

const EVENTS: &str = r#"
function EventEmitter() {
  this._events = {};
}

EventEmitter.prototype.on = function(type, listener) {
  if (!this._events) this._events = {};
  var list = this._events[type];
  if (!list) {
    list = [];
    this._events[type] = list;
  }
  list.push(listener);
  return this;
};
EventEmitter.prototype.addListener = EventEmitter.prototype.on;
EventEmitter.prototype.prependListener = EventEmitter.prototype.on;
EventEmitter.prototype.once = function(type, listener) {
  return this.on(type, listener);
};
EventEmitter.prototype.emit = function(type) {
  if (!this._events) return false;
  var list = this._events[type];
  if (!list || list.length === 0) return false;
  var args = Array.prototype.slice.call(arguments, 1);
  for (var i = 0; i < list.length; i++) {
    list[i].apply(this, args);
  }
  return true;
};
EventEmitter.prototype.removeListener = function(type, listener) {
  if (!this._events) return this;
  var list = this._events[type];
  if (!list) return this;
  var idx = list.indexOf(listener);
  if (idx >= 0) list.splice(idx, 1);
  return this;
};
EventEmitter.prototype.off = EventEmitter.prototype.removeListener;
EventEmitter.prototype.removeAllListeners = function(type) {
  if (!this._events) return this;
  if (type === undefined) {
    this._events = {};
  } else {
    this._events[type] = [];
  }
  return this;
};
EventEmitter.prototype.listeners = function(type) {
  return (this._events && this._events[type]) || [];
};
EventEmitter.prototype.listenerCount = function(type) {
  return this.listeners(type).length;
};
EventEmitter.prototype.setMaxListeners = function() { return this; };
EventEmitter.prototype.getMaxListeners = function() { return 10; };
EventEmitter.prototype.eventNames = function() {
  return this._events ? Object.keys(this._events) : [];
};

module.exports = EventEmitter;
module.exports.EventEmitter = EventEmitter;
module.exports.defaultMaxListeners = 10;
"#;

const UTIL: &str = r#"
exports.inherits = function(ctor, superCtor) {
  ctor.super_ = superCtor;
  ctor.prototype = Object.create(superCtor.prototype, {
    constructor: { value: ctor, enumerable: false, writable: true, configurable: true }
  });
};
exports.format = function(f) {
  var parts = [];
  for (var i = 0; i < arguments.length; i++) {
    parts.push(String(arguments[i]));
  }
  return parts.join(' ');
};
exports.isArray = Array.isArray;
exports.isFunction = function(x) { return typeof x === 'function'; };
exports.isObject = function(x) { return typeof x === 'object' && x !== null; };
exports.isString = function(x) { return typeof x === 'string'; };
exports.isNumber = function(x) { return typeof x === 'number'; };
exports.isUndefined = function(x) { return x === undefined; };
exports.isNullOrUndefined = function(x) { return x === null || x === undefined; };
exports.deprecate = function(fn) { return fn; };
exports.promisify = function(fn) { return fn; };
exports.inspect = function(x) { return String(x); };
exports._extend = function(target, source) {
  if (!source || typeof source !== 'object') return target;
  var keys = Object.keys(source);
  for (var i = 0; i < keys.length; i++) {
    target[keys[i]] = source[keys[i]];
  }
  return target;
};
"#;

const PATH: &str = r#"
function normalizeParts(path) {
  var segs = path.split('/');
  var out = [];
  for (var i = 0; i < segs.length; i++) {
    var s = segs[i];
    if (s === '' || s === '.') continue;
    if (s === '..') {
      out.pop();
    } else {
      out.push(s);
    }
  }
  return out;
}

exports.sep = '/';
exports.delimiter = ':';
exports.normalize = function(p) {
  var abs = p.charAt(0) === '/';
  var n = normalizeParts(p).join('/');
  return abs ? '/' + n : (n || '.');
};
exports.join = function() {
  var parts = [];
  for (var i = 0; i < arguments.length; i++) {
    var a = arguments[i];
    if (a !== undefined && a !== null && a !== '') parts.push(String(a));
  }
  return exports.normalize(parts.join('/'));
};
exports.resolve = function() {
  var resolved = '';
  for (var i = 0; i < arguments.length; i++) {
    var a = String(arguments[i]);
    if (a.charAt(0) === '/') {
      resolved = a;
    } else {
      resolved = resolved === '' ? a : resolved + '/' + a;
    }
  }
  if (resolved.charAt(0) !== '/') resolved = '/' + resolved;
  return '/' + normalizeParts(resolved).join('/');
};
exports.dirname = function(p) {
  var idx = p.lastIndexOf('/');
  if (idx < 0) return '.';
  if (idx === 0) return '/';
  return p.slice(0, idx);
};
exports.basename = function(p, ext) {
  var idx = p.lastIndexOf('/');
  var base = idx < 0 ? p : p.slice(idx + 1);
  if (ext && base.endsWith(ext)) {
    base = base.slice(0, base.length - ext.length);
  }
  return base;
};
exports.extname = function(p) {
  var base = exports.basename(p);
  var idx = base.lastIndexOf('.');
  return idx <= 0 ? '' : base.slice(idx);
};
exports.isAbsolute = function(p) { return p.charAt(0) === '/'; };
exports.relative = function(from, to) { return to; };
exports.parse = function(p) {
  return {
    root: exports.isAbsolute(p) ? '/' : '',
    dir: exports.dirname(p),
    base: exports.basename(p),
    ext: exports.extname(p),
    name: exports.basename(p, exports.extname(p))
  };
};
exports.posix = exports;
"#;

const ASSERT: &str = r#"
function AssertionError(message) {
  var e = new Error(message);
  e.name = 'AssertionError';
  return e;
}

function assert(value, message) {
  if (!value) throw AssertionError(message || 'assertion failed');
}

assert.ok = assert;
assert.equal = function(actual, expected, message) {
  if (actual != expected) {
    throw AssertionError(message || (actual + ' != ' + expected));
  }
};
assert.notEqual = function(actual, expected, message) {
  if (actual == expected) {
    throw AssertionError(message || (actual + ' == ' + expected));
  }
};
assert.strictEqual = function(actual, expected, message) {
  if (actual !== expected) {
    throw AssertionError(message || (actual + ' !== ' + expected));
  }
};
assert.notStrictEqual = function(actual, expected, message) {
  if (actual === expected) {
    throw AssertionError(message || (actual + ' === ' + expected));
  }
};
assert.deepEqual = function(actual, expected, message) {
  if (JSON.stringify(actual) !== JSON.stringify(expected)) {
    throw AssertionError(message || 'deepEqual failed');
  }
};
assert.deepStrictEqual = assert.deepEqual;
assert.throws = function(fn, message) {
  try {
    fn();
  } catch (e) {
    return;
  }
  throw AssertionError(message || 'missing expected exception');
};
assert.doesNotThrow = function(fn) { fn(); };
assert.fail = function(message) {
  throw AssertionError(message || 'failed');
};
assert.AssertionError = AssertionError;

module.exports = assert;
"#;

const QUERYSTRING: &str = r#"
exports.parse = function(qs) {
  var out = {};
  if (!qs) return out;
  var pairs = String(qs).split('&');
  for (var i = 0; i < pairs.length; i++) {
    var idx = pairs[i].indexOf('=');
    if (idx < 0) {
      out[pairs[i]] = '';
    } else {
      out[pairs[i].slice(0, idx)] = pairs[i].slice(idx + 1);
    }
  }
  return out;
};
exports.stringify = function(obj) {
  var keys = Object.keys(obj || {});
  var parts = [];
  for (var i = 0; i < keys.length; i++) {
    parts.push(keys[i] + '=' + String(obj[keys[i]]));
  }
  return parts.join('&');
};
exports.decode = exports.parse;
exports.encode = exports.stringify;
"#;

const URL: &str = r#"
function parseUrl(u) {
  u = String(u);
  var protocol = '';
  var rest = u;
  var idx = u.indexOf('://');
  if (idx >= 0) {
    protocol = u.slice(0, idx + 1);
    rest = u.slice(idx + 3);
  }
  var hash = '';
  var h = rest.indexOf('#');
  if (h >= 0) {
    hash = rest.slice(h);
    rest = rest.slice(0, h);
  }
  var search = '';
  var q = rest.indexOf('?');
  if (q >= 0) {
    search = rest.slice(q);
    rest = rest.slice(0, q);
  }
  var host = '';
  var pathname = rest;
  if (protocol) {
    var slash = rest.indexOf('/');
    if (slash >= 0) {
      host = rest.slice(0, slash);
      pathname = rest.slice(slash);
    } else {
      host = rest;
      pathname = '/';
    }
  }
  return {
    href: u,
    protocol: protocol,
    host: host,
    hostname: host.split(':')[0],
    pathname: pathname,
    search: search,
    query: search ? search.slice(1) : '',
    hash: hash
  };
}

exports.parse = parseUrl;
exports.format = function(o) { return (o && o.href) || ''; };
exports.resolve = function(from, to) { return to; };
exports.URL = function URL(u) {
  var p = parseUrl(u);
  this.href = p.href;
  this.protocol = p.protocol;
  this.host = p.host;
  this.hostname = p.hostname;
  this.pathname = p.pathname;
  this.search = p.search;
  this.hash = p.hash;
};
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_lookup() {
        assert!(source("events").is_some());
        assert!(source("node:path").is_some());
        assert!(source("fs").is_none());
        assert!(is_mocked("fs"));
        assert!(is_mocked("node:http"));
        assert!(!is_mocked("events"));
        assert!(!is_mocked("express"));
    }
}
