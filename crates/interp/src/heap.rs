//! The object heap: insertion-ordered property maps, prototype links,
//! array/function/native/proxy exotic objects, and per-object allocation
//! sites (the `loc` map of the paper).

use crate::env::ScopeRef;
use crate::value::{ObjId, Value};
use aji_ast::ast::Function;
use aji_ast::{Loc, NodeId};
use std::collections::HashMap;
use std::rc::Rc;

/// A property slot.
#[derive(Debug, Clone)]
pub struct Prop {
    /// Data value or accessor pair.
    pub value: PropValue,
    /// Whether the property shows up in `for-in` /
    /// `Object.keys`-style enumeration.
    pub enumerable: bool,
}

impl Prop {
    /// A plain enumerable data property.
    pub fn data(v: Value) -> Prop {
        Prop {
            value: PropValue::Data(v),
            enumerable: true,
        }
    }

    /// A non-enumerable data property.
    pub fn hidden(v: Value) -> Prop {
        Prop {
            value: PropValue::Data(v),
            enumerable: false,
        }
    }
}

/// Data or accessor payload of a property.
#[derive(Debug, Clone)]
pub enum PropValue {
    /// Ordinary data property.
    Data(Value),
    /// Getter/setter pair (values are function objects).
    Accessor {
        /// Getter, if any.
        get: Option<Value>,
        /// Setter, if any.
        set: Option<Value>,
    },
}

/// Insertion-ordered string-keyed map used for object properties.
///
/// JavaScript enumeration order matters to the analyses (e.g. the order in
/// which `Object.getOwnPropertyNames` yields methods drives the order of
/// recorded hints), so a plain `HashMap` is not enough.
#[derive(Debug, Clone, Default)]
pub struct OrderedMap {
    index: HashMap<Rc<str>, usize>,
    entries: Vec<(Rc<str>, Option<Prop>)>,
    live: usize,
}

impl OrderedMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        OrderedMap::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Looks up a property.
    pub fn get(&self, key: &str) -> Option<&Prop> {
        let i = *self.index.get(key)?;
        self.entries[i].1.as_ref()
    }

    /// Looks up a property mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Prop> {
        let i = *self.index.get(key)?;
        self.entries[i].1.as_mut()
    }

    /// Inserts or replaces a property, preserving the original insertion
    /// position on replacement (as JavaScript does).
    pub fn insert(&mut self, key: Rc<str>, prop: Prop) {
        if let Some(&i) = self.index.get(&*key) {
            if self.entries[i].1.is_none() {
                self.live += 1;
            }
            self.entries[i].1 = Some(prop);
        } else {
            self.index.insert(key.clone(), self.entries.len());
            self.entries.push((key, Some(prop)));
            self.live += 1;
        }
    }

    /// Deletes a property. Returns whether it existed.
    pub fn remove(&mut self, key: &str) -> bool {
        if let Some(&i) = self.index.get(key) {
            if self.entries[i].1.is_some() {
                self.entries[i].1 = None;
                self.index.remove(key);
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Whether a live property with this key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates live `(key, prop)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rc<str>, &Prop)> {
        self.entries
            .iter()
            .filter_map(|(k, p)| p.as_ref().map(|p| (k, p)))
    }

    /// Live keys in insertion order.
    pub fn keys(&self) -> Vec<Rc<str>> {
        self.iter().map(|(k, _)| k.clone()).collect()
    }

    // ---- inline-cache support -----------------------------------------
    //
    // The bytecode VM caches (object, entry index) pairs per access site.
    // Entry indices are stable: `insert` replaces in place, `remove`
    // tombstones without shifting. A cached index is revalidated against
    // the key (and liveness) on every hit, so a tombstoned or reshuffled
    // entry simply misses.

    /// The live entry at `slot`, if any (inline-cache validation).
    pub fn entry_at(&self, slot: usize) -> Option<(&Rc<str>, &Prop)> {
        self.entries
            .get(slot)
            .and_then(|(k, p)| p.as_ref().map(|p| (k, p)))
    }

    /// The entry index and live property for `key` (inline-cache fill).
    pub fn slot_and_prop(&self, key: &str) -> Option<(usize, &Prop)> {
        let i = *self.index.get(key)?;
        self.entries[i].1.as_ref().map(|p| (i, p))
    }

    /// Replaces the live data property at `slot` with `Prop::data(v)` iff
    /// the entry is live, keyed `key`, and currently a data property —
    /// exactly what `insert` would do for an existing key (enumerability
    /// resets to `true`). Returns whether the fast path applied; a `false`
    /// return leaves the map untouched.
    pub fn replace_data_at(&mut self, slot: usize, key: &str, v: Value) -> bool {
        match self.entries.get_mut(slot) {
            Some((k, Some(p))) if &**k == key && matches!(p.value, PropValue::Data(_)) => {
                *p = Prop::data(v);
                true
            }
            _ => false,
        }
    }
}

/// Closure data of a user-defined function object.
#[derive(Debug, Clone)]
pub struct FuncData {
    /// The function definition (shared with the registry).
    pub def: Rc<Function>,
    /// Captured defining scope.
    pub env: ScopeRef,
    /// Bound `this` (from `Function.prototype.bind` or class semantics).
    pub bound_this: Option<Box<Value>>,
    /// Bound leading arguments (from `bind`).
    pub bound_args: Vec<Value>,
    /// If this function is a class constructor, the superclass constructor.
    pub super_ctor: Option<Box<Value>>,
    /// Home prototype object for `super.m()` resolution in methods.
    pub home_proto: Option<ObjId>,
}

/// What kind of object this is.
#[derive(Debug, Clone)]
pub enum ObjKind {
    /// Ordinary object.
    Plain,
    /// Array exotic object; dense elements live in the vector, sparse and
    /// named properties in the ordinary map.
    Array(Vec<Value>),
    /// User-defined function (closure).
    Function(Box<FuncData>),
    /// Built-in function, identified by an index into the native registry.
    Native(u32),
    /// The approximate-interpretation proxy `p*` (or a wrapper delegating
    /// to it): all operations succeed and yield the proxy again.
    Proxy,
}

impl ObjKind {
    /// Whether this object can be called.
    pub fn is_callable(&self) -> bool {
        matches!(
            self,
            ObjKind::Function(_) | ObjKind::Native(_) | ObjKind::Proxy
        )
    }
}

/// A heap object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Exotic behavior.
    pub kind: ObjKind,
    /// Named properties (insertion-ordered).
    pub props: OrderedMap,
    /// Prototype link.
    pub proto: Option<ObjId>,
    /// Allocation site, if the object was created by statically known code
    /// (the paper's `loc` map; `None` inside `eval`'d code).
    pub born_at: Option<Loc>,
    /// For function objects: the `NodeId` of the function definition.
    pub func_def: Option<NodeId>,
}

impl Object {
    fn new(kind: ObjKind) -> Object {
        Object {
            kind,
            props: OrderedMap::new(),
            proto: None,
            born_at: None,
            func_def: None,
        }
    }
}

/// The garbage-free object heap (objects live for the whole analysis run,
/// which is what the analyses want: allocation sites must stay addressable).
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an object of the given kind.
    pub fn alloc(&mut self, kind: ObjKind) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object::new(kind));
        id
    }

    /// Allocates a plain object with a prototype and allocation site.
    pub fn alloc_plain(&mut self, proto: Option<ObjId>, born_at: Option<Loc>) -> ObjId {
        let id = self.alloc(ObjKind::Plain);
        self.objects[id.index()].proto = proto;
        self.objects[id.index()].born_at = born_at;
        id
    }

    /// Shared view of an object.
    pub fn get(&self, id: ObjId) -> &Object {
        &self.objects[id.index()]
    }

    /// Mutable view of an object.
    pub fn get_mut(&mut self, id: ObjId) -> &mut Object {
        &mut self.objects[id.index()]
    }

    /// Whether the value is a callable object.
    pub fn is_callable(&self, v: &Value) -> bool {
        v.as_obj().map(|id| self.get(id).kind.is_callable()) == Some(true)
    }

    /// Whether the value is the proxy (or a proxy-delegating wrapper).
    pub fn is_proxy(&self, v: &Value) -> bool {
        v.as_obj()
            .map(|id| matches!(self.get(id).kind, ObjKind::Proxy))
            == Some(true)
    }

    /// Looks up an own property, taking array elements into account.
    pub fn own_prop(&self, id: ObjId, key: &str) -> Option<Prop> {
        let obj = self.get(id);
        if let ObjKind::Array(elems) = &obj.kind {
            if key == "length" {
                return Some(Prop::hidden(Value::Num(elems.len() as f64)));
            }
            if let Some(idx) = array_index(key) {
                if idx < elems.len() {
                    return Some(Prop::data(elems[idx].clone()));
                }
            }
        }
        obj.props.get(key).cloned()
    }

    /// Looks up a property along the prototype chain. Returns the property
    /// and the object that owns it.
    pub fn lookup(&self, id: ObjId, key: &str) -> Option<(Prop, ObjId)> {
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(o) = cur {
            if let Some(p) = self.own_prop(o, key) {
                return Some((p, o));
            }
            cur = self.get(o).proto;
            hops += 1;
            if hops > 64 {
                break; // cyclic prototype chain guard
            }
        }
        None
    }

    /// Sets a data property directly on the object (no setter dispatch;
    /// callers that need setters go through the interpreter).
    pub fn set_prop(&mut self, id: ObjId, key: &str, v: Value) {
        let obj = self.get_mut(id);
        if let ObjKind::Array(elems) = &mut obj.kind {
            if key == "length" {
                if let Value::Num(n) = v {
                    let n = n.max(0.0) as usize;
                    elems.resize(n, Value::Undefined);
                }
                return;
            }
            if let Some(idx) = array_index(key) {
                if idx < elems.len() {
                    elems[idx] = v;
                } else if idx <= elems.len() + 1024 {
                    elems.resize(idx + 1, Value::Undefined);
                    elems[idx] = v;
                } else {
                    // Excessively sparse write: store as a named property.
                    obj.props.insert(Rc::from(key), Prop::data(v));
                }
                return;
            }
        }
        obj.props.insert(Rc::from(key), Prop::data(v));
    }

    /// Deletes an own property. Returns whether it existed.
    pub fn delete_prop(&mut self, id: ObjId, key: &str) -> bool {
        let obj = self.get_mut(id);
        if let ObjKind::Array(elems) = &mut obj.kind {
            if let Some(idx) = array_index(key) {
                if idx < elems.len() {
                    elems[idx] = Value::Undefined;
                    return true;
                }
            }
        }
        obj.props.remove(key)
    }

    /// Own enumerable property names, arrays first listing their indices.
    pub fn own_enumerable_keys(&self, id: ObjId) -> Vec<Rc<str>> {
        let obj = self.get(id);
        let mut keys = Vec::new();
        if let ObjKind::Array(elems) = &obj.kind {
            for i in 0..elems.len() {
                keys.push(Rc::from(i.to_string().as_str()));
            }
        }
        for (k, p) in obj.props.iter() {
            if p.enumerable {
                keys.push(k.clone());
            }
        }
        keys
    }

    /// All own property names (enumerable or not), like
    /// `Object.getOwnPropertyNames` minus `length`-style synthetics.
    pub fn own_keys(&self, id: ObjId) -> Vec<Rc<str>> {
        let obj = self.get(id);
        let mut keys = Vec::new();
        if let ObjKind::Array(elems) = &obj.kind {
            for i in 0..elems.len() {
                keys.push(Rc::from(i.to_string().as_str()));
            }
        }
        for (k, _) in obj.props.iter() {
            keys.push(k.clone());
        }
        keys
    }
}

/// Parses a canonical array index from a property key.
pub fn array_index(key: &str) -> Option<usize> {
    if key.is_empty() || key.len() > 10 {
        return None;
    }
    if key == "0" {
        return Some(0);
    }
    if key.starts_with('0') {
        return None;
    }
    if !key.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    key.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_insertion_order() {
        let mut m = OrderedMap::new();
        m.insert(Rc::from("b"), Prop::data(Value::Num(1.0)));
        m.insert(Rc::from("a"), Prop::data(Value::Num(2.0)));
        m.insert(Rc::from("c"), Prop::data(Value::Num(3.0)));
        // Replacement keeps position.
        m.insert(Rc::from("a"), Prop::data(Value::Num(9.0)));
        let keys: Vec<String> = m.keys().iter().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn ordered_map_remove_and_reinsert() {
        let mut m = OrderedMap::new();
        m.insert(Rc::from("x"), Prop::data(Value::Num(1.0)));
        assert!(m.remove("x"));
        assert!(!m.remove("x"));
        assert!(!m.contains("x"));
        assert_eq!(m.len(), 0);
        m.insert(Rc::from("x"), Prop::data(Value::Num(2.0)));
        assert!(m.contains("x"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn array_element_access() {
        let mut h = Heap::new();
        let a = h.alloc(ObjKind::Array(vec![Value::Num(10.0), Value::Num(20.0)]));
        let p = h.own_prop(a, "1").unwrap();
        assert!(matches!(p.value, PropValue::Data(Value::Num(n)) if n == 20.0));
        let len = h.own_prop(a, "length").unwrap();
        assert!(matches!(len.value, PropValue::Data(Value::Num(n)) if n == 2.0));
        h.set_prop(a, "5", Value::Num(50.0));
        let len = h.own_prop(a, "length").unwrap();
        assert!(matches!(len.value, PropValue::Data(Value::Num(n)) if n == 6.0));
    }

    #[test]
    fn array_length_truncation() {
        let mut h = Heap::new();
        let a = h.alloc(ObjKind::Array(vec![
            Value::Num(1.0),
            Value::Num(2.0),
            Value::Num(3.0),
        ]));
        h.set_prop(a, "length", Value::Num(1.0));
        let len = h.own_prop(a, "length").unwrap();
        assert!(matches!(len.value, PropValue::Data(Value::Num(n)) if n == 1.0));
    }

    #[test]
    fn prototype_chain_lookup() {
        let mut h = Heap::new();
        let proto = h.alloc_plain(None, None);
        h.set_prop(proto, "shared", Value::Num(42.0));
        let obj = h.alloc_plain(Some(proto), None);
        let (p, owner) = h.lookup(obj, "shared").unwrap();
        assert_eq!(owner, proto);
        assert!(matches!(p.value, PropValue::Data(Value::Num(n)) if n == 42.0));
        assert!(h.lookup(obj, "missing").is_none());
    }

    #[test]
    fn cyclic_prototype_chain_does_not_hang() {
        let mut h = Heap::new();
        let a = h.alloc_plain(None, None);
        let b = h.alloc_plain(Some(a), None);
        h.get_mut(a).proto = Some(b);
        assert!(h.lookup(a, "nope").is_none());
    }

    #[test]
    fn array_index_parsing() {
        assert_eq!(array_index("0"), Some(0));
        assert_eq!(array_index("42"), Some(42));
        assert_eq!(array_index("01"), None);
        assert_eq!(array_index("-1"), None);
        assert_eq!(array_index("abc"), None);
        assert_eq!(array_index(""), None);
        assert_eq!(array_index("99999999999999999"), None);
    }

    #[test]
    fn delete_props() {
        let mut h = Heap::new();
        let o = h.alloc_plain(None, None);
        h.set_prop(o, "k", Value::Num(1.0));
        assert!(h.delete_prop(o, "k"));
        assert!(h.own_prop(o, "k").is_none());
    }

    #[test]
    fn enumerable_keys_skip_hidden() {
        let mut h = Heap::new();
        let o = h.alloc_plain(None, None);
        h.set_prop(o, "a", Value::Num(1.0));
        h.get_mut(o)
            .props
            .insert(Rc::from("secret"), Prop::hidden(Value::Num(2.0)));
        let keys: Vec<String> = h
            .own_enumerable_keys(o)
            .iter()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(keys, vec!["a"]);
        let all: Vec<String> = h.own_keys(o).iter().map(|k| k.to_string()).collect();
        assert_eq!(all, vec!["a", "secret"]);
    }
}
