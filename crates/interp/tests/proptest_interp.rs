//! Property-based interpreter tests: arithmetic agrees with a Rust
//! reference evaluator, the heap's ordered map matches a model, and
//! integer conversions behave like JavaScript's.

use aji_ast::Project;
use aji_interp::{Interp, Value};
use proptest::prelude::*;

/// An arithmetic expression with both its JS source and its expected
/// value, generated together so the test needs no separate JS oracle.
#[derive(Debug, Clone)]
struct ArithCase {
    src: String,
    expected: i128,
}

fn arith() -> impl Strategy<Value = ArithCase> {
    let leaf = (-1000i128..1000).prop_map(|n| ArithCase {
        src: if n < 0 {
            format!("({n})")
        } else {
            n.to_string()
        },
        expected: n,
    });
    leaf.prop_recursive(5, 32, 2, |inner| {
        (inner.clone(), inner, 0u8..3).prop_map(|(a, b, op)| match op {
            0 => ArithCase {
                src: format!("({} + {})", a.src, b.src),
                expected: a.expected + b.expected,
            },
            1 => ArithCase {
                src: format!("({} - {})", a.src, b.src),
                expected: a.expected - b.expected,
            },
            _ => ArithCase {
                src: format!("({} * {})", a.src, b.src),
                expected: a.expected * b.expected,
            },
        })
    })
    // Keep magnitudes within the exact f64 integer range (i128 math never
    // overflows for these sizes: 5 levels of ±1000 leaves ample headroom).
    .prop_filter("magnitude", |c| c.expected.unsigned_abs() < (1u128 << 52))
}

fn run_expr(src: &str) -> Value {
    let mut p = Project::new("prop");
    p.add_file("index.js", format!("exports.result = {src};"));
    let mut interp = Interp::new(&p).expect("parse");
    let exports = interp.run_module("index.js").expect("run");
    interp
        .get_property_public(&exports, "result")
        .expect("result")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arithmetic_matches_reference(case in arith()) {
        let v = run_expr(&case.src);
        match v {
            Value::Num(n) => prop_assert_eq!(n, case.expected as f64, "src: {}", case.src),
            other => prop_assert!(false, "non-number {other:?} for {}", case.src),
        }
    }

    #[test]
    fn string_concat_associates(a in "[a-z]{0,6}", b in "[a-z]{0,6}", c in "[a-z]{0,6}") {
        let v = run_expr(&format!("('{a}' + '{b}') + '{c}'"));
        let w = run_expr(&format!("'{a}' + ('{b}' + '{c}')"));
        prop_assert!(v.strict_eq(&w));
        match v {
            Value::Str(s) => prop_assert_eq!(&*s, format!("{a}{b}{c}")),
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn comparison_trichotomy(a in -100i64..100, b in -100i64..100) {
        let lt = run_expr(&format!("{a} < {b}"));
        let eq = run_expr(&format!("{a} === {b}"));
        let gt = run_expr(&format!("{a} > {b}"));
        let truthy =
            [&lt, &eq, &gt].iter().filter(|v| matches!(v, Value::Bool(true))).count();
        prop_assert_eq!(truthy, 1);
    }

    #[test]
    fn json_roundtrip_strings(s in "[a-zA-Z0-9 _\\-\\.\\n\\t\"\\\\]{0,24}") {
        let mut p = Project::new("prop");
        p.add_file(
            "index.js",
            "exports.check = function(s) { return JSON.parse(JSON.stringify(s)) === s; };",
        );
        let mut interp = Interp::new(&p).unwrap();
        let exports = interp.run_module("index.js").unwrap();
        let f = interp.get_property_public(&exports, "check").unwrap();
        let r = interp
            .call_function(f, Value::Undefined, &[Value::str(&s)])
            .unwrap();
        prop_assert!(matches!(r, Value::Bool(true)), "string {s:?} did not round-trip");
    }

    #[test]
    fn array_push_then_join(xs in proptest::collection::vec(0u32..100, 0..8)) {
        let pushes: String = xs
            .iter()
            .map(|x| format!("a.push({x});"))
            .collect::<Vec<_>>()
            .join(" ");
        let v = run_expr(&format!(
            "(function() {{ var a = []; {pushes} return a.join(','); }})()"
        ));
        let expected = xs
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        match v {
            Value::Str(s) => prop_assert_eq!(&*s, expected),
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn object_keys_preserve_insertion_order(keys in proptest::collection::btree_set("[a-z]{1,4}", 1..6)) {
        let keys: Vec<String> = keys.into_iter().collect();
        let assignments: String = keys
            .iter()
            .enumerate()
            .map(|(i, k)| format!("o.{k} = {i};"))
            .collect::<Vec<_>>()
            .join(" ");
        let v = run_expr(&format!(
            "(function() {{ var o = {{}}; {assignments} return Object.keys(o).join(','); }})()"
        ));
        match v {
            Value::Str(s) => prop_assert_eq!(&*s, keys.join(",")),
            _ => prop_assert!(false),
        }
    }
}
