//! Property-based interpreter tests (ported from proptest to the in-tree
//! `aji-support` check harness): arithmetic agrees with a Rust reference
//! evaluator, strings and arrays behave like JavaScript's, and JSON
//! round-trips.

use aji_ast::Project;
use aji_interp::{Interp, Value};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq};
use std::collections::BTreeSet;

/// An arithmetic expression with both its JS source and its expected
/// value, generated together so the test needs no separate JS oracle.
#[derive(Debug, Clone)]
struct ArithCase {
    src: String,
    expected: i128,
}

fn arith(tc: &mut TestCase, depth: u32) -> ArithCase {
    if depth == 0 || tc.ratio(1, 3) {
        let n = tc.int_in(-1000i128..1000);
        return ArithCase {
            src: if n < 0 {
                format!("({n})")
            } else {
                n.to_string()
            },
            expected: n,
        };
    }
    let a = arith(tc, depth - 1);
    let b = arith(tc, depth - 1);
    match tc.int_in(0u8..3) {
        0 => ArithCase {
            src: format!("({} + {})", a.src, b.src),
            expected: a.expected + b.expected,
        },
        1 => ArithCase {
            src: format!("({} - {})", a.src, b.src),
            expected: a.expected - b.expected,
        },
        _ => ArithCase {
            src: format!("({} * {})", a.src, b.src),
            expected: a.expected * b.expected,
        },
    }
}

fn run_expr(src: &str) -> Value {
    let mut p = Project::new("prop");
    p.add_file("index.js", format!("exports.result = {src};"));
    let mut interp = Interp::new(&p).expect("parse");
    let exports = interp.run_module("index.js").expect("run");
    interp
        .get_property_public(&exports, "result")
        .expect("result")
}

#[test]
fn arithmetic_matches_reference() {
    property("arithmetic_matches_reference").cases(192).run(|tc| {
        let case = arith(tc, 5);
        // Keep magnitudes within the exact f64 integer range, where the
        // i128 reference and JS's f64 arithmetic must agree exactly
        // (i128 math never overflows for these sizes: 5 levels of ±1000
        // leaves ample headroom).
        if case.expected.unsigned_abs() >= 1u128 << 52 {
            return Ok(());
        }
        let v = run_expr(&case.src);
        match v {
            Value::Num(n) => prop_assert_eq!(n, case.expected as f64, "src: {}", case.src),
            other => prop_assert!(false, "non-number {other:?} for {}", case.src),
        }
        Ok(())
    });
}

/// The case proptest once recorded in `proptest_interp.proptest-regressions`:
/// a product chain whose i128 value (~-9.23e18) overflowed the original
/// i64 reference evaluator, recording the wrapped value `i64::MIN`. Kept
/// as an explicit regression test: the i128 reference must get the exact
/// value, the magnitude filter must exclude it from the exact-equality
/// property, and the interpreter must still evaluate it to the correctly
/// rounded f64 product without panicking.
#[test]
fn regression_arith_overflow_case() {
    let src = "((((-39) * (-477)) * (-993)) * (((502 * (-871)) * (-942)) * (800 + 413)))";
    let left: i128 = ((-39) * (-477)) * (-993);
    let right: i128 = ((502 * (-871)) * (-942)) * (800 + 413);
    let expected: i128 = left * right;
    assert_eq!(left, -18_472_779);
    assert_eq!(right, 499_612_822_332);
    // Exceeds the filter bound (and would have wrapped i64 arithmetic).
    assert!(expected.unsigned_abs() >= 1u128 << 52);
    assert!(expected < i64::MIN as i128 || expected.unsigned_abs() > i64::MAX as u128);
    // Every intermediate is exactly representable in f64 (< 2^53), so the
    // interpreter's result is the once-rounded product — which equals the
    // i128 value rounded to the nearest f64.
    match run_expr(src) {
        Value::Num(n) => {
            assert_eq!(n, left as f64 * right as f64);
            assert_eq!(n, expected as f64);
        }
        other => panic!("non-number {other:?}"),
    }
}

#[test]
fn string_concat_associates() {
    const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
    property("string_concat_associates").cases(192).run(|tc| {
        let a = tc.string_of(LOWER, 0..7);
        let b = tc.string_of(LOWER, 0..7);
        let c = tc.string_of(LOWER, 0..7);
        let v = run_expr(&format!("('{a}' + '{b}') + '{c}'"));
        let w = run_expr(&format!("'{a}' + ('{b}' + '{c}')"));
        prop_assert!(v.strict_eq(&w));
        match v {
            Value::Str(s) => prop_assert_eq!(&*s, format!("{a}{b}{c}")),
            _ => prop_assert!(false),
        }
        Ok(())
    });
}

#[test]
fn comparison_trichotomy() {
    property("comparison_trichotomy").cases(192).run(|tc| {
        let a = tc.int_in(-100i64..100);
        let b = tc.int_in(-100i64..100);
        let lt = run_expr(&format!("{a} < {b}"));
        let eq = run_expr(&format!("{a} === {b}"));
        let gt = run_expr(&format!("{a} > {b}"));
        let truthy = [&lt, &eq, &gt]
            .iter()
            .filter(|v| matches!(v, Value::Bool(true)))
            .count();
        prop_assert_eq!(truthy, 1, "a = {}, b = {}", a, b);
        Ok(())
    });
}

#[test]
fn json_roundtrip_strings() {
    const CHARSET: &str =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-.\n\t\"\\";
    property("json_roundtrip_strings").cases(192).run(|tc| {
        let s = tc.string_of(CHARSET, 0..25);
        let mut p = Project::new("prop");
        p.add_file(
            "index.js",
            "exports.check = function(s) { return JSON.parse(JSON.stringify(s)) === s; };",
        );
        let mut interp = Interp::new(&p).unwrap();
        let exports = interp.run_module("index.js").unwrap();
        let f = interp.get_property_public(&exports, "check").unwrap();
        let r = interp
            .call_function(f, Value::Undefined, &[Value::str(&s)])
            .unwrap();
        prop_assert!(matches!(r, Value::Bool(true)), "string {s:?} did not round-trip");
        Ok(())
    });
}

#[test]
fn array_push_then_join() {
    property("array_push_then_join").cases(192).run(|tc| {
        let xs = tc.vec_of(0..8, |t| t.int_in(0u32..100));
        let pushes: String = xs
            .iter()
            .map(|x| format!("a.push({x});"))
            .collect::<Vec<_>>()
            .join(" ");
        let v = run_expr(&format!(
            "(function() {{ var a = []; {pushes} return a.join(','); }})()"
        ));
        let expected = xs
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        match v {
            Value::Str(s) => prop_assert_eq!(&*s, expected),
            _ => prop_assert!(false),
        }
        Ok(())
    });
}

#[test]
fn object_keys_preserve_insertion_order() {
    const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
    property("object_keys_preserve_insertion_order")
        .cases(192)
        .run(|tc| {
            // A set of 1-5 distinct short keys, in sorted order like the
            // original btree_set strategy produced.
            let keys: BTreeSet<String> =
                tc.vec_of(1..6, |t| t.string_of(LOWER, 1..5)).into_iter().collect();
            let keys: Vec<String> = keys.into_iter().collect();
            let assignments: String = keys
                .iter()
                .enumerate()
                .map(|(i, k)| format!("o.{k} = {i};"))
                .collect::<Vec<_>>()
                .join(" ");
            let v = run_expr(&format!(
                "(function() {{ var o = {{}}; {assignments} return Object.keys(o).join(','); }})()"
            ));
            match v {
                Value::Str(s) => prop_assert_eq!(&*s, keys.join(",")),
                _ => prop_assert!(false),
            }
            Ok(())
        });
}
