//! Focused tests for the standard-library models: `Object` statics,
//! array and string methods, JSON, numbers, promises, errors, prototypes
//! and the Node core-module implementations.

use aji_ast::Project;
use aji_interp::Interp;

fn run(src: &str) -> String {
    let mut p = Project::new("t");
    p.add_file("index.js", src);
    let mut interp = Interp::new(&p).expect("parse");
    let exports = interp.run_module("index.js").unwrap_or_else(|e| {
        panic!("run failed: {e}\nsource:\n{src}")
    });
    let r = interp
        .get_property_public(&exports, "result")
        .expect("result");
    interp.to_string_public(&r)
}

// ----- Object statics -----

#[test]
fn object_entries_and_values() {
    assert_eq!(
        run("exports.result = Object.entries({ a: 1, b: 2 }).map(e => e[0] + e[1]).join('|');"),
        "a1|b2"
    );
}

#[test]
fn object_define_property_getter_setter() {
    assert_eq!(
        run("var o = { _x: 3 };\n\
             Object.defineProperty(o, 'x', {\n\
             get: function() { return this._x * 2; },\n\
             set: function(v) { this._x = v; }\n\
             });\n\
             o.x = 10;\n\
             exports.result = o.x;"),
        "20"
    );
}

#[test]
fn object_define_properties_bulk() {
    assert_eq!(
        run("var o = {};\n\
             Object.defineProperties(o, { a: { value: 1 }, b: { value: 2 } });\n\
             exports.result = o.a + o.b;"),
        "3"
    );
}

#[test]
fn object_get_own_property_names_vs_keys() {
    assert_eq!(
        run("var o = { vis: 1 };\n\
             Object.defineProperty(o, 'hidden', { value: 2, enumerable: false });\n\
             exports.result = Object.keys(o).length + ':' + Object.getOwnPropertyNames(o).length;"),
        "1:2"
    );
}

#[test]
fn object_create_with_descriptor_map() {
    assert_eq!(
        run("var base = { greet: function() { return 'hi ' + this.name; } };\n\
             var o = Object.create(base, { name: { value: 'ada', enumerable: true } });\n\
             exports.result = o.greet();"),
        "hi ada"
    );
}

#[test]
fn object_assign_returns_target_and_overwrites() {
    assert_eq!(
        run("var t = { a: 1 };\n\
             var r = Object.assign(t, { a: 2, b: 3 });\n\
             exports.result = (r === t) + ':' + t.a + t.b;"),
        "true:23"
    );
}

#[test]
fn get_set_prototype_of() {
    assert_eq!(
        run("var proto = { kind: 'p' };\n\
             var o = {};\n\
             Object.setPrototypeOf(o, proto);\n\
             exports.result = (Object.getPrototypeOf(o) === proto) + ':' + o.kind;"),
        "true:p"
    );
}

#[test]
fn has_own_property_and_is_prototype_of() {
    assert_eq!(
        run("var proto = { shared: 1 };\n\
             var o = Object.create(proto);\n\
             o.own = 2;\n\
             exports.result = o.hasOwnProperty('own') + ':' + o.hasOwnProperty('shared') + ':' + proto.isPrototypeOf(o);"),
        "true:false:true"
    );
}

// ----- arrays -----

#[test]
fn array_higher_order_chain() {
    assert_eq!(
        run("exports.result = [1,2,3,4,5].filter(x => x % 2).map(x => x * 10).reduce((a,b) => a + b, 0);"),
        "90"
    );
}

#[test]
fn array_find_and_find_index() {
    assert_eq!(run("exports.result = [5, 12, 8].find(x => x > 9);"), "12");
    assert_eq!(run("exports.result = [5, 12, 8].findIndex(x => x > 9);"), "1");
    assert_eq!(run("exports.result = [5].find(x => x > 9);"), "undefined");
}

#[test]
fn array_sort_with_comparator() {
    assert_eq!(
        run("exports.result = [5, 1, 4, 2].sort(function(a, b) { return a - b; }).join('');"),
        "1245"
    );
    assert_eq!(
        run("exports.result = [5, 1, 4, 2].sort(function(a, b) { return b - a; }).join('');"),
        "5421"
    );
}

#[test]
fn array_splice_inserts() {
    assert_eq!(
        run("var a = [1, 4]; a.splice(1, 0, 2, 3); exports.result = a.join('');"),
        "1234"
    );
    assert_eq!(
        run("var a = [1, 2, 3]; var r = a.splice(0, 2); exports.result = r.join('') + ':' + a.join('');"),
        "12:3"
    );
}

#[test]
fn array_shift_unshift() {
    assert_eq!(
        run("var a = [2, 3]; a.unshift(1); var x = a.shift(); exports.result = x + ':' + a.join('');"),
        "1:23"
    );
}

#[test]
fn array_reverse_and_fill() {
    assert_eq!(run("exports.result = [1,2,3].reverse().join('');"), "321");
    assert_eq!(run("exports.result = [1,2,3].fill(0).join('');"), "000");
}

#[test]
fn array_like_arguments_slice() {
    assert_eq!(
        run("function f() { return Array.prototype.slice.call(arguments, 1).join('-'); }\n\
             exports.result = f('skip', 'a', 'b');"),
        "a-b"
    );
}

#[test]
fn array_reduce_right() {
    assert_eq!(
        run("exports.result = ['a','b','c'].reduceRight(function(acc, x) { return acc + x; }, '');"),
        "cba"
    );
}

#[test]
fn spread_in_calls_and_arrays() {
    assert_eq!(
        run("function add3(a, b, c) { return a + b + c; }\n\
             var args = [1, 2, 3];\n\
             exports.result = add3(...args) + ':' + [0, ...args, 4].join('');"),
        "6:01234"
    );
}

// ----- strings -----

#[test]
fn string_split_edge_cases() {
    assert_eq!(run("exports.result = ''.split(',').length;"), "1");
    assert_eq!(run("exports.result = 'abc'.split('').join('|');"), "a|b|c");
    assert_eq!(run("exports.result = 'a,b,c'.split(',', 2).join('|');"), "a|b");
}

#[test]
fn string_search_methods() {
    assert_eq!(run("exports.result = 'hello'.lastIndexOf('l');"), "3");
    assert_eq!(run("exports.result = 'hello'.includes('ell');"), "true");
    assert_eq!(run("exports.result = 'hello'.substring(1, 3);"), "el");
    assert_eq!(run("exports.result = 'hello'.substr(1, 3);"), "ell");
}

#[test]
fn string_replace_with_function() {
    assert_eq!(
        run("exports.result = 'abc'.replace('b', function(m) { return m.toUpperCase(); });"),
        "aBc"
    );
}

#[test]
fn unicode_string_handling() {
    assert_eq!(run("exports.result = 'héllo'.length;"), "5");
    assert_eq!(run("exports.result = 'héllo'.charAt(1);"), "é");
    assert_eq!(run("exports.result = '😀x'.charAt(1);"), "x");
}

// ----- numbers -----

#[test]
fn number_formatting() {
    assert_eq!(run("exports.result = (3.14159).toFixed(3);"), "3.142");
    assert_eq!(run("exports.result = (10).toString(2);"), "1010");
    assert_eq!(run("exports.result = (-255).toString(16);"), "-ff");
    assert_eq!(run("exports.result = Number('12.5');"), "12.5");
    assert_eq!(run("exports.result = Number.isInteger(4) + ':' + Number.isInteger(4.5);"), "true:false");
}

#[test]
fn parse_int_radices() {
    assert_eq!(run("exports.result = parseInt('0x1A');"), "26");
    assert_eq!(run("exports.result = parseInt('101', 2);"), "5");
    assert_eq!(run("exports.result = parseInt('  -42  ');"), "-42");
    assert_eq!(run("exports.result = isNaN(parseInt('zz'));"), "true");
}

// ----- JSON -----

#[test]
fn json_stringify_skips_functions_and_undefined() {
    assert_eq!(
        run("exports.result = JSON.stringify({ a: 1, f: function() {}, u: undefined });"),
        "{\"a\":1}"
    );
    assert_eq!(
        run("exports.result = JSON.stringify([1, undefined, function() {}]);"),
        "[1,null,null]"
    );
}

#[test]
fn json_parse_nested() {
    assert_eq!(
        run("var o = JSON.parse('{\"a\": {\"b\": [1, {\"c\": true}]}}');\n\
             exports.result = o.a.b[1].c;"),
        "true"
    );
}

#[test]
fn json_parse_escapes() {
    assert_eq!(
        run(r#"exports.result = JSON.parse('"a\\nb\\u0041"');"#),
        "a\nbA"
    );
}

#[test]
fn json_parse_invalid_throws() {
    assert_eq!(
        run("var r = 'no'; try { JSON.parse('{bad'); } catch (e) { r = e.name; } exports.result = r;"),
        "SyntaxError"
    );
}

// ----- errors and prototypes -----

#[test]
fn error_subtype_instanceof_chain() {
    assert_eq!(
        run("var e = new TypeError('t');\n\
             exports.result = (e instanceof TypeError) + ':' + (e instanceof Error) + ':' + e.name + ':' + e.message;"),
        "true:true:TypeError:t"
    );
}

#[test]
fn error_to_string() {
    assert_eq!(
        run("exports.result = new RangeError('out of range').toString();"),
        "RangeError: out of range"
    );
}

#[test]
fn constructor_property() {
    assert_eq!(
        run("function F() {}\nvar o = new F();\nexports.result = o.constructor === F;"),
        "true"
    );
}

#[test]
fn prototype_shadowing() {
    assert_eq!(
        run("function F() {}\n\
             F.prototype.m = function() { return 'proto'; };\n\
             var o = new F();\n\
             o.m = function() { return 'own'; };\n\
             var p = new F();\n\
             exports.result = o.m() + ':' + p.m();"),
        "own:proto"
    );
}

// ----- promises and timers -----

#[test]
fn promise_chaining() {
    assert_eq!(
        run("var r;\n\
             Promise.resolve(1).then(v => v + 1).then(v => { r = v * 10; });\n\
             exports.result = r;"),
        "20"
    );
}

#[test]
fn promise_catch_path() {
    assert_eq!(
        run("var r = 'none';\n\
             Promise.reject('boom').catch(function(e) { r = 'caught:' + e; });\n\
             exports.result = r;"),
        "caught:boom"
    );
}

#[test]
fn promise_all_collects() {
    assert_eq!(
        run("var r;\n\
             Promise.all([Promise.resolve(1), Promise.resolve(2)]).then(function(vs) { r = vs.join('+'); });\n\
             exports.result = r;"),
        "1+2"
    );
}

#[test]
fn set_timeout_passes_args() {
    assert_eq!(
        run("var r; setTimeout(function(a, b) { r = a + b; }, 0, 'x', 'y'); exports.result = r;"),
        "xy"
    );
}

// ----- Node core modules -----

#[test]
fn events_once_and_remove() {
    assert_eq!(
        run("var EventEmitter = require('events');\n\
             var e = new EventEmitter();\n\
             var n = 0;\n\
             function inc() { n++; }\n\
             e.on('t', inc);\n\
             e.emit('t');\n\
             e.removeListener('t', inc);\n\
             e.emit('t');\n\
             exports.result = n;"),
        "1"
    );
}

#[test]
fn events_listener_count() {
    assert_eq!(
        run("var EventEmitter = require('events').EventEmitter;\n\
             var e = new EventEmitter();\n\
             e.on('x', function() {});\n\
             e.on('x', function() {});\n\
             exports.result = e.listenerCount('x');"),
        "2"
    );
}

#[test]
fn util_format_and_predicates() {
    assert_eq!(
        run("var util = require('util');\n\
             exports.result = util.isArray([]) + ':' + util.isFunction(util.format) + ':' + util.isString('x');"),
        "true:true:true"
    );
}

#[test]
fn path_parse_components() {
    assert_eq!(
        run("var path = require('path');\n\
             var p = path.parse('/a/b/file.txt');\n\
             exports.result = p.dir + '|' + p.base + '|' + p.ext + '|' + p.name;"),
        "/a/b|file.txt|.txt|file"
    );
}

#[test]
fn path_resolve_and_normalize() {
    assert_eq!(
        run("var path = require('path');\n\
             exports.result = path.resolve('/a', 'b', '../c');"),
        "/a/c"
    );
    assert_eq!(
        run("var path = require('path'); exports.result = path.normalize('a//b/./c/../d');"),
        "a/b/d"
    );
}

#[test]
fn querystring_roundtrip() {
    assert_eq!(
        run("var qs = require('querystring');\n\
             var o = qs.parse('a=1&b=two');\n\
             exports.result = qs.stringify(o);"),
        "a=1&b=two"
    );
}

#[test]
fn url_parse_components() {
    assert_eq!(
        run("var url = require('url');\n\
             var u = url.parse('https://example.com:8080/path/x?q=1#frag');\n\
             exports.result = u.hostname + '|' + u.pathname + '|' + u.search + '|' + u.hash;"),
        "example.com|/path/x|?q=1|#frag"
    );
}

#[test]
fn assert_deep_equal() {
    assert_eq!(
        run("var assert = require('assert');\n\
             assert.deepEqual({ a: [1, 2] }, { a: [1, 2] });\n\
             var r = 'no';\n\
             try { assert.deepEqual({ a: 1 }, { a: 2 }); } catch (e) { r = 'threw'; }\n\
             exports.result = r;"),
        "threw"
    );
}

#[test]
fn process_and_globals() {
    assert_eq!(run("exports.result = typeof process.env;"), "object");
    assert_eq!(run("exports.result = process.platform;"), "linux");
    assert_eq!(run("exports.result = global === globalThis;"), "true");
}

#[test]
fn date_is_deterministic_and_monotone() {
    assert_eq!(
        run("var a = Date.now(); var b = Date.now(); exports.result = b >= a;"),
        "true"
    );
    assert_eq!(
        run("var d = new Date(); exports.result = typeof d.getTime();"),
        "number"
    );
}

#[test]
fn math_random_in_range_and_varies() {
    let out = run(
        "var seen = {};\n\
         var distinct = 0;\n\
         for (var i = 0; i < 20; i++) {\n\
         var r = Math.random();\n\
         if (r < 0 || r >= 1) { distinct = -999; break; }\n\
         var k = '' + r;\n\
         if (!seen[k]) { seen[k] = true; distinct++; }\n\
         }\n\
         exports.result = distinct;",
    );
    assert_eq!(out, "20");
}

#[test]
fn function_to_string_is_opaque() {
    assert_eq!(
        run("function f() {} exports.result = (typeof f.toString()) + ':' + (f.toString().indexOf('native') >= 0);"),
        "string:true"
    );
}

#[test]
fn getter_on_literal_with_define_property_interplay() {
    assert_eq!(
        run("var src = { get v() { return 41; } };\n\
             var d = Object.getOwnPropertyDescriptor(src, 'v');\n\
             var dst = {};\n\
             Object.defineProperty(dst, 'v', d);\n\
             exports.result = dst.v + 1;"),
        "42"
    );
}

#[test]
fn mixin_copies_accessors() {
    // The merge-descriptors idiom preserves getters.
    assert_eq!(
        run("function merge(dest, src) {\n\
             Object.getOwnPropertyNames(src).forEach(function(name) {\n\
             var d = Object.getOwnPropertyDescriptor(src, name);\n\
             Object.defineProperty(dest, name, d);\n\
             });\n\
             return dest;\n\
             }\n\
             var api = merge({}, { get version() { return '1.0'; }, go: function() { return 'went'; } });\n\
             exports.result = api.version + ':' + api.go();"),
        "1.0:went"
    );
}
