//! End-to-end interpreter tests: language semantics, modules, builtins,
//! and the instrumentation events the analyses rely on.

use aji_ast::Project;
use aji_interp::{Interp, InterpOptions, NoopTracer, Value};

/// Runs `src` as index.js and returns `module.exports.result` as a string.
fn run(src: &str) -> String {
    let mut p = Project::new("t");
    p.add_file("index.js", src);
    let mut interp = Interp::new(&p).expect("parse");
    let exports = interp.run_module("index.js").unwrap_or_else(|e| {
        panic!("run failed: {e}\nsource:\n{src}\nconsole:\n{:?}", interp.console)
    });
    let r = interp
        .get_property_public(&exports, "result")
        .expect("read result");
    interp.to_string_public(&r)
}

/// Runs a multi-file project and returns exports.result of `main`.
fn run_project(files: &[(&str, &str)], main: &str) -> String {
    let mut p = Project::new("t");
    for (path, src) in files {
        p.add_file(*path, *src);
    }
    let mut interp = Interp::new(&p).expect("parse");
    let exports = interp
        .run_module(main)
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    let r = interp
        .get_property_public(&exports, "result")
        .expect("read result");
    interp.to_string_public(&r)
}

// ----- arithmetic, operators -----

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("exports.result = 1 + 2 * 3;"), "7");
    assert_eq!(run("exports.result = (1 + 2) * 3;"), "9");
    assert_eq!(run("exports.result = 10 % 3;"), "1");
    assert_eq!(run("exports.result = 2 ** 10;"), "1024");
    assert_eq!(run("exports.result = 7 / 2;"), "3.5");
}

#[test]
fn string_concatenation() {
    assert_eq!(run("exports.result = 'a' + 'b' + 1;"), "ab1");
    assert_eq!(run("exports.result = 1 + 2 + 'x';"), "3x");
    assert_eq!(run("exports.result = 'n=' + null + ',' + undefined;"), "n=null,undefined");
}

#[test]
fn comparisons_and_equality() {
    assert_eq!(run("exports.result = 1 < 2;"), "true");
    assert_eq!(run("exports.result = 'a' < 'b';"), "true");
    assert_eq!(run("exports.result = '10' == 10;"), "true");
    assert_eq!(run("exports.result = '10' === 10;"), "false");
    assert_eq!(run("exports.result = null == undefined;"), "true");
    assert_eq!(run("exports.result = null === undefined;"), "false");
    assert_eq!(run("exports.result = NaN === NaN;"), "false");
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(run("exports.result = 5 & 3;"), "1");
    assert_eq!(run("exports.result = 5 | 3;"), "7");
    assert_eq!(run("exports.result = 5 ^ 3;"), "6");
    assert_eq!(run("exports.result = ~5;"), "-6");
    assert_eq!(run("exports.result = 1 << 4;"), "16");
    assert_eq!(run("exports.result = -8 >> 1;"), "-4");
    assert_eq!(run("exports.result = -8 >>> 28;"), "15");
}

#[test]
fn logical_operators_short_circuit() {
    assert_eq!(run("var n = 0; function f() { n++; return true; } var x = false && f(); exports.result = n;"), "0");
    assert_eq!(run("exports.result = null ?? 'fallback';"), "fallback");
    assert_eq!(run("exports.result = 0 ?? 'fallback';"), "0");
    assert_eq!(run("exports.result = 0 || 'fallback';"), "fallback");
}

#[test]
fn typeof_operator() {
    assert_eq!(run("exports.result = typeof 1;"), "number");
    assert_eq!(run("exports.result = typeof 'x';"), "string");
    assert_eq!(run("exports.result = typeof {};"), "object");
    assert_eq!(run("exports.result = typeof function(){};"), "function");
    assert_eq!(run("exports.result = typeof undefined;"), "undefined");
    assert_eq!(run("exports.result = typeof notDeclared;"), "undefined");
    assert_eq!(run("exports.result = typeof null;"), "object");
}

// ----- control flow -----

#[test]
fn loops_and_break_continue() {
    assert_eq!(
        run("var s = 0; for (var i = 1; i <= 10; i++) { if (i % 2) continue; s += i; } exports.result = s;"),
        "30"
    );
    assert_eq!(
        run("var i = 0; while (true) { i++; if (i >= 5) break; } exports.result = i;"),
        "5"
    );
    assert_eq!(
        run("var i = 0; do { i++; } while (i < 3); exports.result = i;"),
        "3"
    );
}

#[test]
fn labeled_loops() {
    assert_eq!(
        run(
            "var c = 0; outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 1) continue outer; c++; } } exports.result = c;"
        ),
        "3"
    );
    assert_eq!(
        run(
            "var c = 0; outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { c++; if (c == 4) break outer; } } exports.result = c;"
        ),
        "4"
    );
}

#[test]
fn for_in_enumerates_keys() {
    assert_eq!(
        run("var o = { a: 1, b: 2, c: 3 }; var ks = []; for (var k in o) ks.push(k); exports.result = ks.join('');"),
        "abc"
    );
}

#[test]
fn for_of_iterates_arrays_and_strings() {
    assert_eq!(
        run("var s = 0; for (var x of [1, 2, 3]) s += x; exports.result = s;"),
        "6"
    );
    assert_eq!(
        run("var out = ''; for (const c of 'abc') out += c + '.'; exports.result = out;"),
        "a.b.c."
    );
}

#[test]
fn switch_with_fallthrough() {
    assert_eq!(
        run("var r = ''; switch (2) { case 1: r += 'a'; case 2: r += 'b'; case 3: r += 'c'; break; default: r += 'd'; } exports.result = r;"),
        "bc"
    );
    assert_eq!(
        run("var r = ''; switch (9) { case 1: r = 'a'; break; default: r = 'dflt'; } exports.result = r;"),
        "dflt"
    );
}

#[test]
fn try_catch_finally_flow() {
    assert_eq!(
        run("var r = ''; try { throw new Error('x'); } catch (e) { r += 'c' + e.message; } finally { r += 'f'; } exports.result = r;"),
        "cxf"
    );
    assert_eq!(
        run("function f() { try { return 'try'; } finally { } } exports.result = f();"),
        "try"
    );
    assert_eq!(
        run("var r = 'no'; try { null.x; } catch (e) { r = 'caught'; } exports.result = r;"),
        "caught"
    );
}

// ----- functions and closures -----

#[test]
fn closures_capture_environment() {
    assert_eq!(
        run("function counter() { var n = 0; return function() { return ++n; }; } var c = counter(); c(); c(); exports.result = c();"),
        "3"
    );
}

#[test]
fn hoisting_of_functions_and_vars() {
    assert_eq!(run("exports.result = f(); function f() { return 'hoisted'; }"), "hoisted");
    assert_eq!(run("exports.result = typeof x; var x = 1;"), "undefined");
}

#[test]
fn arguments_object() {
    assert_eq!(
        run("function f() { return arguments.length + ':' + arguments[1]; } exports.result = f('a', 'b', 'c');"),
        "3:b"
    );
}

#[test]
fn default_and_rest_params() {
    assert_eq!(run("function f(a, b = 10) { return a + b; } exports.result = f(1);"), "11");
    assert_eq!(
        run("function f(a, ...rest) { return rest.join('-'); } exports.result = f(1, 2, 3, 4);"),
        "2-3-4"
    );
}

#[test]
fn arrow_functions_inherit_this() {
    assert_eq!(
        run("var o = { x: 42, get: function() { var f = () => this.x; return f(); } }; exports.result = o.get();"),
        "42"
    );
}

#[test]
fn this_binding_in_method_calls() {
    assert_eq!(
        run("var o = { name: 'obj', who: function() { return this.name; } }; exports.result = o.who();"),
        "obj"
    );
}

#[test]
fn call_apply_bind() {
    assert_eq!(
        run("function who() { return this.name; } exports.result = who.call({ name: 'c' });"),
        "c"
    );
    assert_eq!(
        run("function add(a, b) { return a + b; } exports.result = add.apply(null, [3, 4]);"),
        "7"
    );
    assert_eq!(
        run("function who(greet) { return greet + ' ' + this.name; } var b = who.bind({ name: 'b' }, 'hi'); exports.result = b();"),
        "hi b"
    );
}

#[test]
fn named_function_expression_self_reference() {
    assert_eq!(
        run("var fac = function f(n) { return n <= 1 ? 1 : n * f(n - 1); }; exports.result = fac(5);"),
        "120"
    );
}

#[test]
fn iife() {
    assert_eq!(run("exports.result = (function() { return 'iife'; })();"), "iife");
}

// ----- objects -----

#[test]
fn object_literals_and_member_access() {
    assert_eq!(run("var o = { a: { b: { c: 'deep' } } }; exports.result = o.a.b.c;"), "deep");
    assert_eq!(run("var o = { 'key with space': 1 }; exports.result = o['key with space'];"), "1");
    assert_eq!(run("var k = 'dyn'; var o = {}; o[k] = 'v'; exports.result = o.dyn;"), "v");
    assert_eq!(run("var k = 'a'; var o = { [k + 'b']: 'computed' }; exports.result = o.ab;"), "computed");
}

#[test]
fn shorthand_and_spread_properties() {
    assert_eq!(run("var x = 1, y = 2; var o = { x, y }; exports.result = o.x + o.y;"), "3");
    assert_eq!(
        run("var base = { a: 1, b: 2 }; var o = { ...base, b: 3 }; exports.result = o.a + o.b;"),
        "4"
    );
}

#[test]
fn getters_and_setters() {
    assert_eq!(
        run("var o = { _v: 1, get v() { return this._v * 10; }, set v(x) { this._v = x; } }; o.v = 5; exports.result = o.v;"),
        "50"
    );
}

#[test]
fn delete_and_in_operators() {
    assert_eq!(run("var o = { a: 1 }; delete o.a; exports.result = 'a' in o;"), "false");
    assert_eq!(run("var o = { a: 1 }; exports.result = 'a' in o;"), "true");
    assert_eq!(run("var o = {}; exports.result = 'toString' in o;"), "true");
}

#[test]
fn prototype_inheritance_via_functions() {
    assert_eq!(
        run("function Animal(name) { this.name = name; } Animal.prototype.speak = function() { return this.name + ' speaks'; }; var a = new Animal('rex'); exports.result = a.speak();"),
        "rex speaks"
    );
}

#[test]
fn new_returns_object_override() {
    assert_eq!(
        run("function F() { return { custom: true }; } var o = new F(); exports.result = o.custom;"),
        "true"
    );
    assert_eq!(
        run("function F() { this.x = 1; return 42; } var o = new F(); exports.result = o.x;"),
        "1"
    );
}

#[test]
fn instanceof_checks() {
    assert_eq!(run("function F() {} exports.result = new F() instanceof F;"), "true");
    assert_eq!(run("function F() {} function G() {} exports.result = new F() instanceof G;"), "false");
    assert_eq!(run("exports.result = new TypeError('x') instanceof Error;"), "true");
}

// ----- destructuring -----

#[test]
fn destructuring_declarations_and_params() {
    assert_eq!(run("var { a, b: { c } } = { a: 1, b: { c: 2 } }; exports.result = a + c;"), "3");
    assert_eq!(run("var [x, , z = 9] = [1, 2]; exports.result = x + z;"), "10");
    assert_eq!(
        run("function f({ name, age = 30 }) { return name + age; } exports.result = f({ name: 'x' });"),
        "x30"
    );
    assert_eq!(run("var [a, ...rest] = [1, 2, 3, 4]; exports.result = rest.length;"), "3");
    assert_eq!(
        run("var { a, ...others } = { a: 1, b: 2, c: 3 }; exports.result = Object.keys(others).join('');"),
        "bc"
    );
}

#[test]
fn destructuring_assignment_expressions() {
    assert_eq!(run("var a, b; [a, b] = [5, 6]; exports.result = a * b;"), "30");
}

// ----- classes -----

#[test]
fn class_basics() {
    assert_eq!(
        run("class P { constructor(n) { this.n = n; } get() { return this.n; } } exports.result = new P(7).get();"),
        "7"
    );
}

#[test]
fn class_inheritance_and_super() {
    assert_eq!(
        run("class A { constructor(x) { this.x = x; } who() { return 'A' + this.x; } } class B extends A { constructor() { super(9); } who() { return 'B->' + super.who(); } } exports.result = new B().who();"),
        "B->A9"
    );
}

#[test]
fn class_default_derived_constructor() {
    assert_eq!(
        run("class A { constructor(x) { this.x = x; } } class B extends A {} exports.result = new B(4).x;"),
        "4"
    );
}

#[test]
fn class_static_members_and_fields() {
    assert_eq!(
        run("class C { static make() { return new C(); } tag = 'field'; } exports.result = C.make().tag;"),
        "field"
    );
    assert_eq!(run("class C { static VERSION = 3; } exports.result = C.VERSION;"), "3");
}

#[test]
fn class_getters() {
    assert_eq!(
        run("class T { constructor() { this._x = 2; } get x() { return this._x * 50; } } exports.result = new T().x;"),
        "100"
    );
}

// ----- builtins -----

#[test]
fn array_methods() {
    assert_eq!(run("exports.result = [1, 2, 3].map(function(x) { return x * 2; }).join(',');"), "2,4,6");
    assert_eq!(run("exports.result = [1, 2, 3, 4].filter(x => x % 2 === 0).length;"), "2");
    assert_eq!(run("exports.result = [1, 2, 3].reduce((a, b) => a + b, 10);"), "16");
    assert_eq!(run("exports.result = [3, 1, 2].sort().join('');"), "123");
    assert_eq!(run("exports.result = [1, 2, 3].indexOf(2);"), "1");
    assert_eq!(run("exports.result = [1, [2, 3]].flat().length;"), "3");
    assert_eq!(run("var a = [1, 2]; a.push(3, 4); exports.result = a.length;"), "4");
    assert_eq!(run("exports.result = [1, 2, 3, 4, 5].slice(1, -1).join('');"), "234");
    assert_eq!(run("var a = [1, 2, 3]; a.splice(1, 1); exports.result = a.join('');"), "13");
    assert_eq!(run("exports.result = Array.isArray([]) + ':' + Array.isArray({});"), "true:false");
    assert_eq!(run("exports.result = Array.from('ab').join('-');"), "a-b");
    assert_eq!(run("exports.result = [5, 6].concat([7], 8).join('');"), "5678");
    assert_eq!(run("exports.result = [1,2,3].find(x => x > 1);"), "2");
    assert_eq!(run("exports.result = [1,2,3].some(x => x > 2) && [1,2,3].every(x => x > 0);"), "true");
}

#[test]
fn string_methods() {
    assert_eq!(run("exports.result = 'hello'.toUpperCase();"), "HELLO");
    assert_eq!(run("exports.result = 'a,b,c'.split(',').length;"), "3");
    assert_eq!(run("exports.result = 'hello world'.indexOf('world');"), "6");
    assert_eq!(run("exports.result = 'abcdef'.slice(1, 3);"), "bc");
    assert_eq!(run("exports.result = '  pad  '.trim();"), "pad");
    assert_eq!(run("exports.result = 'aaa'.replace('a', 'b');"), "baa");
    assert_eq!(run("exports.result = 'aaa'.replaceAll('a', 'b');"), "bbb");
    assert_eq!(run("exports.result = 'ab'.repeat(3);"), "ababab");
    assert_eq!(run("exports.result = 'abc'.charAt(1);"), "b");
    assert_eq!(run("exports.result = 'abc'.charCodeAt(0);"), "97");
    assert_eq!(run("exports.result = String.fromCharCode(104, 105);"), "hi");
    assert_eq!(run("exports.result = 'x'.padStart(3, '0');"), "00x");
    assert_eq!(run("exports.result = 'hello'.startsWith('he') && 'hello'.endsWith('lo');"), "true");
    assert_eq!(run("exports.result = 'abc'.length;"), "3");
    assert_eq!(run("exports.result = 'abc'[1];"), "b");
}

#[test]
fn object_statics() {
    assert_eq!(run("exports.result = Object.keys({ a: 1, b: 2 }).join('');"), "ab");
    assert_eq!(run("exports.result = Object.values({ a: 1, b: 2 }).join('');"), "12");
    assert_eq!(
        run("var t = {}; Object.assign(t, { x: 1 }, { y: 2 }); exports.result = t.x + t.y;"),
        "3"
    );
    assert_eq!(
        run("var proto = { greet: function() { return 'hi'; } }; var o = Object.create(proto); exports.result = o.greet();"),
        "hi"
    );
    assert_eq!(
        run("var o = {}; Object.defineProperty(o, 'x', { value: 5, enumerable: false }); exports.result = o.x + ':' + Object.keys(o).length;"),
        "5:0"
    );
    assert_eq!(
        run("var o = { m: 1, n: 2 }; exports.result = Object.getOwnPropertyNames(o).join('');"),
        "mn"
    );
    assert_eq!(
        run("var o = { v: 7 }; var d = Object.getOwnPropertyDescriptor(o, 'v'); exports.result = d.value;"),
        "7"
    );
}

#[test]
fn math_and_number() {
    assert_eq!(run("exports.result = Math.max(1, 5, 3);"), "5");
    assert_eq!(run("exports.result = Math.floor(2.9) + Math.ceil(2.1);"), "5");
    assert_eq!(run("exports.result = Math.abs(-4);"), "4");
    assert_eq!(run("exports.result = parseInt('42abc');"), "42");
    assert_eq!(run("exports.result = parseInt('ff', 16);"), "255");
    assert_eq!(run("exports.result = parseFloat('3.5x');"), "3.5");
    assert_eq!(run("exports.result = isNaN('abc');"), "true");
    assert_eq!(run("exports.result = (255).toString(16);"), "ff");
    assert_eq!(run("exports.result = (1.23456).toFixed(2);"), "1.23");
    assert_eq!(run("var r1 = Math.random(); var r2 = Math.random(); exports.result = r1 !== r2 && r1 >= 0 && r1 < 1;"), "true");
}

#[test]
fn json_roundtrip() {
    assert_eq!(
        run("exports.result = JSON.stringify({ a: 1, b: [true, null, 'x'] });"),
        "{\"a\":1,\"b\":[true,null,\"x\"]}"
    );
    assert_eq!(
        run("var o = JSON.parse('{\"n\": 42, \"arr\": [1, 2]}'); exports.result = o.n + o.arr.length;"),
        "44"
    );
}

#[test]
fn console_capture() {
    let mut p = Project::new("t");
    p.add_file("index.js", "console.log('hello', 42);");
    let mut interp = Interp::new(&p).unwrap();
    interp.run_module("index.js").unwrap();
    assert_eq!(interp.console, vec!["hello 42"]);
}

#[test]
fn timers_run_immediately() {
    assert_eq!(
        run("var r = 'no'; setTimeout(function() { r = 'ran'; }, 100); exports.result = r;"),
        "ran"
    );
}

#[test]
fn promise_then_synchronous_model() {
    assert_eq!(
        run("var r; Promise.resolve(5).then(function(v) { r = v * 2; }); exports.result = r;"),
        "10"
    );
    assert_eq!(
        run("var r; new Promise(function(resolve) { resolve('ok'); }).then(function(v) { r = v; }); exports.result = r;"),
        "ok"
    );
}

#[test]
fn async_functions_run_synchronously() {
    assert_eq!(
        run("async function f() { return 21; } var v = f(); exports.result = v;"),
        "21"
    );
    assert_eq!(
        run("async function g() { return 2; } async function f() { var x = await g(); return x + 1; } exports.result = f();"),
        "3"
    );
}

// ----- eval and Function -----

#[test]
fn direct_eval_in_caller_scope() {
    assert_eq!(run("var x = 10; exports.result = eval('x + 5');"), "15");
    assert_eq!(run("var o = {}; eval(\"o.fromEval = 'yes'\"); exports.result = o.fromEval;"), "yes");
}

#[test]
fn function_constructor() {
    assert_eq!(run("var f = new Function('a', 'b', 'return a * b;'); exports.result = f(6, 7);"), "42");
}

// ----- modules -----

#[test]
fn require_relative_modules() {
    assert_eq!(
        run_project(
            &[
                ("index.js", "var lib = require('./lib/math'); exports.result = lib.add(2, 3);"),
                ("lib/math.js", "exports.add = function(a, b) { return a + b; };"),
            ],
            "index.js"
        ),
        "5"
    );
}

#[test]
fn require_node_modules_package() {
    assert_eq!(
        run_project(
            &[
                ("index.js", "var dep = require('leftpad'); exports.result = dep('x', 3);"),
                (
                    "node_modules/leftpad/index.js",
                    "module.exports = function(s, n) { while (s.length < n) s = '0' + s; return s; };"
                ),
            ],
            "index.js"
        ),
        "00x"
    );
}

#[test]
fn module_exports_rebinding() {
    assert_eq!(
        run_project(
            &[
                ("index.js", "var f = require('./f'); exports.result = f();"),
                ("f.js", "module.exports = function() { return 'rebound'; };"),
            ],
            "index.js"
        ),
        "rebound"
    );
}

#[test]
fn module_cache_shares_state() {
    assert_eq!(
        run_project(
            &[
                ("index.js", "var a = require('./state'); var b = require('./state'); a.n = 5; exports.result = b.n;"),
                ("state.js", "exports.n = 0;"),
            ],
            "index.js"
        ),
        "5"
    );
}

#[test]
fn cyclic_requires() {
    assert_eq!(
        run_project(
            &[
                ("index.js", "exports.result = require('./a').fromA;"),
                ("a.js", "exports.early = 'e'; var b = require('./b'); exports.fromA = 'a' + b.fromB;"),
                ("b.js", "var a = require('./a'); exports.fromB = 'b' + a.early;"),
            ],
            "index.js"
        ),
        "abe"
    );
}

#[test]
fn missing_module_is_error() {
    let mut p = Project::new("t");
    p.add_file("index.js", "require('./nope');");
    let mut interp = Interp::new(&p).unwrap();
    assert!(interp.run_module("index.js").is_err());
}

#[test]
fn builtin_events_module() {
    assert_eq!(
        run(
            "var EventEmitter = require('events');\n\
             var e = new EventEmitter();\n\
             var got = [];\n\
             e.on('data', function(x) { got.push(x); });\n\
             e.on('data', function(x) { got.push(x * 2); });\n\
             e.emit('data', 21);\n\
             exports.result = got.join(',');"
        ),
        "21,42"
    );
}

#[test]
fn builtin_util_inherits() {
    assert_eq!(
        run(
            "var util = require('util');\n\
             function Base() {} Base.prototype.hi = function() { return 'base'; };\n\
             function Child() {} util.inherits(Child, Base);\n\
             exports.result = new Child().hi();"
        ),
        "base"
    );
}

#[test]
fn builtin_path_module() {
    assert_eq!(run("var path = require('path'); exports.result = path.join('a', 'b', '..', 'c.js');"), "a/c.js");
    assert_eq!(run("var path = require('path'); exports.result = path.basename('/x/y/file.txt');"), "file.txt");
    assert_eq!(run("var path = require('path'); exports.result = path.extname('file.tar.gz');"), ".gz");
    assert_eq!(run("var path = require('path'); exports.result = path.dirname('/a/b/c');"), "/a/b");
}

#[test]
fn builtin_assert_module() {
    assert_eq!(
        run("var assert = require('assert'); assert.ok(true); assert.equal(1, '1'); assert.strictEqual(2, 2); exports.result = 'passed';"),
        "passed"
    );
    assert_eq!(
        run("var assert = require('assert'); var r = 'none'; try { assert.strictEqual(1, 2); } catch (e) { r = e.name; } exports.result = r;"),
        "AssertionError"
    );
}

#[test]
fn mocked_node_modules_invoke_callbacks() {
    assert_eq!(
        run(
            "var fs = require('fs');\n\
             var called = false;\n\
             fs.readFile('whatever.txt', function(err, data) { called = true; });\n\
             exports.result = called;"
        ),
        "true"
    );
    // Chained mock usage does not crash.
    assert_eq!(
        run(
            "var http = require('http');\n\
             var hit = false;\n\
             var server = http.createServer(function(req, res) { hit = true; });\n\
             server.listen(8080);\n\
             exports.result = hit;"
        ),
        "true"
    );
}

// ----- budgets -----

#[test]
fn infinite_loop_hits_budget() {
    let mut p = Project::new("t");
    p.add_file("index.js", "while (true) {}");
    let opts = InterpOptions {
        max_loop_iters: 1000,
        ..InterpOptions::default()
    };
    let mut interp = Interp::with_options(&p, opts, Box::new(NoopTracer)).unwrap();
    let err = interp.run_module("index.js").unwrap_err();
    assert!(matches!(err, aji_interp::JsError::Budget(_)));
}

#[test]
fn deep_recursion_hits_stack_budget() {
    let mut p = Project::new("t");
    p.add_file("index.js", "function f() { return f(); } f();");
    let mut interp = Interp::new(&p).unwrap();
    let err = interp.run_module("index.js").unwrap_err();
    assert!(matches!(err, aji_interp::JsError::Budget(_)));
}

#[test]
fn budget_not_catchable_by_try() {
    let mut p = Project::new("t");
    p.add_file(
        "index.js",
        "try { while (true) {} } catch (e) { exports.result = 'caught'; }",
    );
    let opts = InterpOptions {
        max_loop_iters: 100,
        ..InterpOptions::default()
    };
    let mut interp = Interp::with_options(&p, opts, Box::new(NoopTracer)).unwrap();
    assert!(interp.run_module("index.js").is_err());
}

#[test]
fn budget_exhaustion_counts_once_per_run() {
    // A `finally` block keeps executing — and stepping — after the
    // uncatchable step-budget error, so the counter used to re-increment
    // on every post-exhaustion step. One exhausted run must count exactly
    // once, however many budget errors surface while it unwinds.
    let mut p = Project::new("t");
    p.add_file(
        "index.js",
        "try { while (true) { var x = 1; } } finally { var a = 1; var b = 2; var c = 3; }",
    );
    let opts = InterpOptions {
        max_steps: 500,
        max_loop_iters: 1_000_000,
        ..InterpOptions::default()
    };
    let reg = std::sync::Arc::new(aji_obs::Registry::new());
    aji_obs::scoped(&reg, || {
        let mut interp = Interp::with_options(&p, opts.clone(), Box::new(NoopTracer)).unwrap();
        assert!(matches!(
            interp.run_module("index.js").unwrap_err(),
            aji_interp::JsError::Budget(_)
        ));
    });
    assert_eq!(
        reg.report().counter("interp.budget_exhaustions"),
        Some(1),
        "one exhausted run must count exactly once"
    );
}

#[test]
fn budget_exhaustion_counts_each_exhausted_run() {
    // Two independent runs that each exhaust count twice; a run that
    // stays within budget after an exhausted one does not inherit the
    // earlier trip (the flag re-arms at the public entry points).
    let mut p = Project::new("t");
    p.add_file("loop.js", "while (true) {}");
    p.add_file("ok.js", "exports.result = 1;");
    let opts = InterpOptions {
        max_loop_iters: 100,
        ..InterpOptions::default()
    };
    let reg = std::sync::Arc::new(aji_obs::Registry::new());
    aji_obs::scoped(&reg, || {
        let mut interp = Interp::with_options(&p, opts.clone(), Box::new(NoopTracer)).unwrap();
        assert!(interp.run_module("loop.js").is_err());
        assert!(interp.run_module("ok.js").is_ok());
        // Re-running the cached exhausted module returns the partial
        // exports without re-executing, so it cannot trip again.
        assert!(interp.run_module("ok.js").is_ok());
    });
    assert_eq!(reg.report().counter("interp.budget_exhaustions"), Some(1));

    let reg2 = std::sync::Arc::new(aji_obs::Registry::new());
    aji_obs::scoped(&reg2, || {
        let mut interp = Interp::with_options(&p, opts.clone(), Box::new(NoopTracer)).unwrap();
        assert!(interp.run_module("loop.js").is_err());
        let mut interp2 = Interp::with_options(&p, opts.clone(), Box::new(NoopTracer)).unwrap();
        assert!(interp2.run_module("loop.js").is_err());
    });
    assert_eq!(reg2.report().counter("interp.budget_exhaustions"), Some(2));
}

// ----- the paper's motivating example (Figure 1) -----

fn express_like_project() -> Project {
    let mut p = Project::new("hello-express");
    p.add_file(
        "index.js",
        r#"
const express = require('express');
const app = express();
app.get('/', function(req, res) {
  res.send('Hello world!');
});
var server = app.listen(8080);
exports.result = typeof app.get === 'function' && typeof app.listen === 'function';
"#,
    );
    p.add_file(
        "node_modules/express/index.js",
        r#"
var mixin = require('merge-descriptors');
var EventEmitter = require('events');
var proto = require('./application');
exports = module.exports = createApplication;
function createApplication() {
  var app = function(req, res, next) {
    app.handle(req, res, next);
  };
  mixin(app, EventEmitter.prototype, false);
  mixin(app, proto, false);
  return app;
}
"#,
    );
    p.add_file(
        "node_modules/merge-descriptors/index.js",
        r#"
module.exports = merge;
function merge(dest, src, redefine) {
  Object.getOwnPropertyNames(src).forEach(function forOwnPropertyName(name) {
    var descriptor = Object.getOwnPropertyDescriptor(src, name);
    Object.defineProperty(dest, name, descriptor);
  });
  return dest;
}
"#,
    );
    p.add_file(
        "node_modules/express/application.js",
        r#"
var methods = require('methods');
var http = require('http');
var Router = require('./router');
var app = exports = module.exports = {};
app.lazyrouter = function() {
  if (!this._router) {
    this._router = new Router();
  }
};
methods.forEach(function(method) {
  app[method] = function(path) {
    this.lazyrouter();
    var route = this._router.route(path);
    route[method].apply(route, Array.prototype.slice.call(arguments, 1));
    return this;
  };
});
app.handle = function(req, res, next) {
  this.lazyrouter();
  this._router.handle(req, res, next);
};
app.listen = function listen() {
  var server = http.createServer(this);
  return server.listen.apply(server, arguments);
};
"#,
    );
    p.add_file(
        "node_modules/express/router.js",
        r#"
var methods = require('methods');

module.exports = Router;

function Router() {
  this.stack = [];
}

Router.prototype.route = function(path) {
  var route = new Route(path);
  this.stack.push(route);
  return route;
};

Router.prototype.handle = function(req, res, next) {
  for (var i = 0; i < this.stack.length; i++) {
    this.stack[i].dispatch(req, res);
  }
};

function Route(path) {
  this.path = path;
  this.handlers = [];
}

methods.forEach(function(method) {
  Route.prototype[method] = function() {
    for (var i = 0; i < arguments.length; i++) {
      this.handlers.push({ method: method, fn: arguments[i] });
    }
    return this;
  };
});

Route.prototype.dispatch = function(req, res) {
  for (var i = 0; i < this.handlers.length; i++) {
    this.handlers[i].fn(req, res);
  }
};
"#,
    );
    p.add_file(
        "node_modules/methods/index.js",
        r#"
module.exports = ['get', 'post', 'put', 'delete', 'head', 'options'].map(function(m) {
  return m.toLowerCase();
});
"#,
    );
    p
}

#[test]
fn motivating_example_runs_concretely() {
    let mut interp = Interp::new(&express_like_project()).unwrap();
    let exports = interp.run_module("index.js").unwrap();
    let r = interp.get_property_public(&exports, "result").unwrap();
    assert!(matches!(r, Value::Bool(true)));
}

#[test]
fn motivating_example_app_get_dispatches() {
    // Calling app.get('/', handler) must reach the dynamically-installed
    // method from application.js.
    let mut p = express_like_project();
    p.add_file(
        "check.js",
        r#"
const express = require('express');
const app = express();
var hits = [];
app.get('/users', function(req, res) { hits.push('users:' + req.url); });
app.post('/items', function(req, res) { hits.push('items'); });
app.handle({ url: '/x' }, {});
exports.result = hits.join(',');
"#,
    );
    let mut interp = Interp::new(&p).unwrap();
    let exports = interp.run_module("check.js").unwrap();
    let r = interp.get_property_public(&exports, "result").unwrap();
    let s = interp.to_string_public(&r);
    assert_eq!(s, "users:/x,items");
}
