//! Recursive-descent / precedence-climbing parser.
//!
//! Supports the JavaScript subset described in `aji-ast`: ES5 plus the
//! ES2015+ features that dominate real-world Node.js code (arrow functions,
//! classes, template literals, destructuring, default/rest parameters,
//! spread, optional chaining, nullish coalescing, `let`/`const`,
//! `for-of`, getters/setters). Automatic semicolon insertion follows the
//! newline flags produced by the lexer.

use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Kw, Tok, Token, P};
use aji_ast::ast::*;
use aji_ast::{FileId, NodeIdGen, Span};

/// Parses one file into a [`Module`].
///
/// `ids` must be shared across the files of a project so node ids are
/// project-unique.
///
/// # Errors
///
/// Returns the first lex or parse error encountered.
pub fn parse_module(
    src: &str,
    file: FileId,
    ids: &mut NodeIdGen,
) -> Result<Module, ParseError> {
    let tokens = lex(src)?;
    aji_obs::counter_add("parser.tokens", tokens.len() as u64);
    let mut p = Parser {
        tokens,
        idx: 0,
        file,
        ids,
        no_in: false,
        depth: 0,
    };
    let lo = 0u32;
    let mut body = Vec::new();
    while !p.at_eof() {
        body.push(p.stmt()?);
    }
    let hi = src.len() as u32;
    Ok(Module {
        id: p.ids.fresh(),
        span: Span::new(file, lo, hi),
        body,
    })
}

/// Parses a string as a single expression (used by tests and by `eval`
/// handling when the code is an expression).
///
/// # Errors
///
/// Returns the first lex or parse error encountered.
pub fn parse_expr(
    src: &str,
    file: FileId,
    ids: &mut NodeIdGen,
) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    aji_obs::counter_add("parser.tokens", tokens.len() as u64);
    let mut p = Parser {
        tokens,
        idx: 0,
        file,
        ids,
        no_in: false,
        depth: 0,
    };
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.unexpected("end of input"));
    }
    Ok(e)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    idx: usize,
    file: FileId,
    ids: &'a mut NodeIdGen,
    /// Set while parsing the init of a C-style `for` head: the `in`
    /// operator is not allowed there.
    no_in: bool,
    /// Current recursion depth, bounded by [`MAX_DEPTH`].
    depth: u32,
}

/// Maximum nesting depth of statements/expressions before the parser bails
/// out with an error instead of overflowing the stack.
const MAX_DEPTH: u32 = 100;

impl<'a> Parser<'a> {
    // ----- token helpers -----

    fn cur(&self) -> &Tok {
        &self.tokens[self.idx].kind
    }

    fn cur_token(&self) -> &Token {
        &self.tokens[self.idx]
    }

    fn peek_kind(&self, n: usize) -> &Tok {
        let i = (self.idx + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.cur(), Tok::Eof)
    }

    fn at(&self, p: P) -> bool {
        matches!(self.cur(), Tok::P(q) if *q == p)
    }

    fn at_kw(&self, k: Kw) -> bool {
        matches!(self.cur(), Tok::Kw(q) if *q == k)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.cur(), Tok::Ident(s) if s == name)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, p: P) -> bool {
        if self.at(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: P) -> Result<(), ParseError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{:?}`", p)))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            format!("expected {}, found {}", wanted, self.cur()),
            self.tokens[self.idx].lo,
        )
    }

    fn enter(&mut self) -> Result<DepthGuard, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::new(
                "expression or statement nesting too deep",
                self.tokens[self.idx].lo,
            ));
        }
        Ok(DepthGuard)
    }

    fn leave(&mut self, _g: DepthGuard) {
        self.depth -= 1;
    }

    fn lo(&self) -> u32 {
        self.tokens[self.idx].lo
    }

    fn prev_hi(&self) -> u32 {
        if self.idx == 0 {
            0
        } else {
            self.tokens[self.idx - 1].hi
        }
    }

    fn span_from(&self, lo: u32) -> Span {
        Span::new(self.file, lo, self.prev_hi())
    }

    fn fresh(&mut self) -> NodeId {
        self.ids.fresh()
    }

    fn ident_name(&mut self) -> Result<String, ParseError> {
        match self.cur().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Keywords usable as plain identifiers in limited positions
            // (e.g. variable named `let` is rejected, but allow a few that
            // commonly appear as ES5 identifiers).
            _ => Err(self.unexpected("identifier")),
        }
    }

    /// Accepts identifiers *and* keywords as property names after `.`.
    fn prop_ident(&mut self) -> Result<String, ParseError> {
        match self.cur().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Kw(k) => {
                self.bump();
                Ok(k.as_str().to_string())
            }
            _ => Err(self.unexpected("property name")),
        }
    }

    /// Consumes a statement-terminating semicolon, applying ASI.
    fn semi(&mut self) -> Result<(), ParseError> {
        if self.eat(P::Semi) {
            return Ok(());
        }
        if self.at(P::RBrace) || self.at_eof() || self.cur_token().newline_before {
            return Ok(());
        }
        Err(self.unexpected("`;`"))
    }

    // ----- statements -----

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let g = self.enter()?;
        let r = self.stmt_inner();
        self.leave(g);
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.lo();
        match self.cur().clone() {
            Tok::P(P::LBrace) => {
                self.bump();
                let mut body = Vec::new();
                while !self.at(P::RBrace) && !self.at_eof() {
                    body.push(self.stmt()?);
                }
                self.expect(P::RBrace)?;
                Ok(self.mk_stmt(lo, StmtKind::Block(body)))
            }
            Tok::P(P::Semi) => {
                self.bump();
                Ok(self.mk_stmt(lo, StmtKind::Empty))
            }
            Tok::Kw(Kw::Var) | Tok::Kw(Kw::Let) | Tok::Kw(Kw::Const) => {
                let d = self.var_decl()?;
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::VarDecl(d)))
            }
            Tok::Kw(Kw::Function) => {
                let f = self.function(true, false)?;
                Ok(self.mk_stmt(lo, StmtKind::FuncDecl(Box::new(f))))
            }
            Tok::Ident(ref s)
                if s == "async"
                    && matches!(self.peek_kind(1), Tok::Kw(Kw::Function))
                    && !self.tokens[self.idx + 1].newline_before =>
            {
                self.bump(); // async
                let mut f = self.function(true, false)?;
                f.is_async = true;
                Ok(self.mk_stmt(lo, StmtKind::FuncDecl(Box::new(f))))
            }
            Tok::Kw(Kw::Class) => {
                let c = self.class()?;
                Ok(self.mk_stmt(lo, StmtKind::ClassDecl(Box::new(c))))
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let arg = if self.at(P::Semi)
                    || self.at(P::RBrace)
                    || self.at_eof()
                    || self.cur_token().newline_before
                {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Return(arg)))
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect(P::LParen)?;
                let test = self.expr()?;
                self.expect(P::RParen)?;
                let cons = Box::new(self.stmt()?);
                let alt = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(self.mk_stmt(lo, StmtKind::If { test, cons, alt }))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect(P::LParen)?;
                let test = self.expr()?;
                self.expect(P::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(self.mk_stmt(lo, StmtKind::While { test, body }))
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.unexpected("`while`"));
                }
                self.expect(P::LParen)?;
                let test = self.expr()?;
                self.expect(P::RParen)?;
                self.eat(P::Semi);
                Ok(self.mk_stmt(lo, StmtKind::DoWhile { body, test }))
            }
            Tok::Kw(Kw::For) => self.for_stmt(lo),
            Tok::Kw(Kw::Break) => {
                self.bump();
                let label = self.optional_label();
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Break(label)))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                let label = self.optional_label();
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Continue(label)))
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                self.expect(P::LParen)?;
                let disc = self.expr()?;
                self.expect(P::RParen)?;
                self.expect(P::LBrace)?;
                let mut cases = Vec::new();
                while !self.at(P::RBrace) && !self.at_eof() {
                    let clo = self.lo();
                    let test = if self.eat_kw(Kw::Case) {
                        let t = self.expr()?;
                        self.expect(P::Colon)?;
                        Some(t)
                    } else if self.eat_kw(Kw::Default) {
                        self.expect(P::Colon)?;
                        None
                    } else {
                        return Err(self.unexpected("`case` or `default`"));
                    };
                    let mut body = Vec::new();
                    while !self.at(P::RBrace)
                        && !self.at_kw(Kw::Case)
                        && !self.at_kw(Kw::Default)
                        && !self.at_eof()
                    {
                        body.push(self.stmt()?);
                    }
                    cases.push(SwitchCase {
                        span: self.span_from(clo),
                        test,
                        body,
                    });
                }
                self.expect(P::RBrace)?;
                Ok(self.mk_stmt(lo, StmtKind::Switch { disc, cases }))
            }
            Tok::Kw(Kw::Throw) => {
                self.bump();
                if self.cur_token().newline_before {
                    return Err(self.unexpected("expression after `throw`"));
                }
                let e = self.expr()?;
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Throw(e)))
            }
            Tok::Kw(Kw::Try) => {
                self.bump();
                self.expect(P::LBrace)?;
                let mut block = Vec::new();
                while !self.at(P::RBrace) && !self.at_eof() {
                    block.push(self.stmt()?);
                }
                self.expect(P::RBrace)?;
                let catch = if self.eat_kw(Kw::Catch) {
                    let param = if self.eat(P::LParen) {
                        let p = self.pattern()?;
                        self.expect(P::RParen)?;
                        Some(p)
                    } else {
                        None
                    };
                    self.expect(P::LBrace)?;
                    let mut body = Vec::new();
                    while !self.at(P::RBrace) && !self.at_eof() {
                        body.push(self.stmt()?);
                    }
                    self.expect(P::RBrace)?;
                    Some(CatchClause { param, body })
                } else {
                    None
                };
                let finally = if self.eat_kw(Kw::Finally) {
                    self.expect(P::LBrace)?;
                    let mut body = Vec::new();
                    while !self.at(P::RBrace) && !self.at_eof() {
                        body.push(self.stmt()?);
                    }
                    self.expect(P::RBrace)?;
                    Some(body)
                } else {
                    None
                };
                if catch.is_none() && finally.is_none() {
                    return Err(self.unexpected("`catch` or `finally`"));
                }
                Ok(self.mk_stmt(
                    lo,
                    StmtKind::Try {
                        block,
                        catch,
                        finally,
                    },
                ))
            }
            Tok::Kw(Kw::Debugger) => {
                self.bump();
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Debugger))
            }
            // Labeled statement: `ident :`.
            Tok::Ident(ref name) if matches!(self.peek_kind(1), Tok::P(P::Colon)) => {
                let label = name.clone();
                self.bump();
                self.bump();
                let body = Box::new(self.stmt()?);
                Ok(self.mk_stmt(lo, StmtKind::Labeled { label, body }))
            }
            _ => {
                let e = self.expr()?;
                self.semi()?;
                Ok(self.mk_stmt(lo, StmtKind::Expr(e)))
            }
        }
    }

    fn optional_label(&mut self) -> Option<String> {
        if self.cur_token().newline_before {
            return None;
        }
        if let Tok::Ident(s) = self.cur().clone() {
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    fn mk_stmt(&mut self, lo: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.fresh(),
            span: self.span_from(lo),
            kind,
        }
    }

    fn var_decl(&mut self) -> Result<VarDecl, ParseError> {
        let kind = match self.cur() {
            Tok::Kw(Kw::Var) => VarKind::Var,
            Tok::Kw(Kw::Let) => VarKind::Let,
            Tok::Kw(Kw::Const) => VarKind::Const,
            _ => return Err(self.unexpected("`var`, `let` or `const`")),
        };
        self.bump();
        let mut decls = Vec::new();
        loop {
            let dlo = self.lo();
            let name = self.pattern()?;
            let init = if self.eat(P::Eq) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            decls.push(VarDeclarator {
                span: self.span_from(dlo),
                name,
                init,
            });
            if !self.eat(P::Comma) {
                break;
            }
        }
        Ok(VarDecl { kind, decls })
    }

    fn for_stmt(&mut self, lo: u32) -> Result<Stmt, ParseError> {
        self.bump(); // for
        self.expect(P::LParen)?;

        // Empty init.
        if self.eat(P::Semi) {
            return self.for_rest(lo, None);
        }

        if self.at_kw(Kw::Var) || self.at_kw(Kw::Let) || self.at_kw(Kw::Const) {
            let kind = match self.cur() {
                Tok::Kw(Kw::Var) => VarKind::Var,
                Tok::Kw(Kw::Let) => VarKind::Let,
                _ => VarKind::Const,
            };
            self.bump();
            let pat = self.pattern()?;
            if self.eat_kw(Kw::In) {
                let obj = self.expr()?;
                self.expect(P::RParen)?;
                let body = Box::new(self.stmt()?);
                return Ok(self.mk_stmt(
                    lo,
                    StmtKind::ForIn {
                        head: ForHead::VarDecl { kind, pat },
                        obj,
                        body,
                    },
                ));
            }
            if self.at_ident("of") {
                self.bump();
                let iter = self.assign_expr()?;
                self.expect(P::RParen)?;
                let body = Box::new(self.stmt()?);
                return Ok(self.mk_stmt(
                    lo,
                    StmtKind::ForOf {
                        head: ForHead::VarDecl { kind, pat },
                        iter,
                        body,
                    },
                ));
            }
            // C-style: finish the declarator list.
            let dlo = self.lo();
            let init = if self.eat(P::Eq) {
                self.no_in = true;
                let e = self.assign_expr();
                self.no_in = false;
                Some(e?)
            } else {
                None
            };
            let mut decls = vec![VarDeclarator {
                span: self.span_from(dlo),
                name: pat,
                init,
            }];
            while self.eat(P::Comma) {
                let dlo = self.lo();
                let name = self.pattern()?;
                let init = if self.eat(P::Eq) {
                    self.no_in = true;
                    let e = self.assign_expr();
                    self.no_in = false;
                    Some(e?)
                } else {
                    None
                };
                decls.push(VarDeclarator {
                    span: self.span_from(dlo),
                    name,
                    init,
                });
            }
            self.expect(P::Semi)?;
            return self.for_rest(lo, Some(ForInit::VarDecl(VarDecl { kind, decls })));
        }

        // Expression init.
        self.no_in = true;
        let e = self.expr();
        self.no_in = false;
        let e = e?;
        if self.eat_kw(Kw::In) {
            let obj = self.expr()?;
            self.expect(P::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(self.mk_stmt(
                lo,
                StmtKind::ForIn {
                    head: ForHead::Target(Box::new(e)),
                    obj,
                    body,
                },
            ));
        }
        if self.at_ident("of") {
            self.bump();
            let iter = self.assign_expr()?;
            self.expect(P::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(self.mk_stmt(
                lo,
                StmtKind::ForOf {
                    head: ForHead::Target(Box::new(e)),
                    iter,
                    body,
                },
            ));
        }
        self.expect(P::Semi)?;
        self.for_rest(lo, Some(ForInit::Expr(e)))
    }

    fn for_rest(&mut self, lo: u32, init: Option<ForInit>) -> Result<Stmt, ParseError> {
        let test = if self.at(P::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(P::Semi)?;
        let update = if self.at(P::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(P::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(self.mk_stmt(
            lo,
            StmtKind::For {
                init,
                test,
                update,
                body,
            },
        ))
    }

    // ----- patterns -----

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let lo = self.lo();
        let kind = match self.cur().clone() {
            Tok::Ident(name) => {
                self.bump();
                PatternKind::Ident(name)
            }
            Tok::P(P::LBracket) => {
                self.bump();
                let mut elems = Vec::new();
                let mut rest = None;
                while !self.at(P::RBracket) {
                    if self.at(P::Comma) {
                        self.bump();
                        elems.push(None);
                        continue;
                    }
                    if self.eat(P::DotDotDot) {
                        rest = Some(Box::new(self.pattern()?));
                        break;
                    }
                    let p = self.pattern_with_default()?;
                    elems.push(Some(p));
                    if !self.eat(P::Comma) {
                        break;
                    }
                }
                self.expect(P::RBracket)?;
                PatternKind::Array { elems, rest }
            }
            Tok::P(P::LBrace) => {
                self.bump();
                let mut props = Vec::new();
                let mut rest = None;
                while !self.at(P::RBrace) {
                    if self.eat(P::DotDotDot) {
                        rest = Some(Box::new(self.pattern()?));
                        break;
                    }
                    let key = self.prop_name()?;
                    let value = if self.eat(P::Colon) {
                        self.pattern_with_default()?
                    } else {
                        // Shorthand `{x}` or `{x = default}`.
                        let name = match &key {
                            PropName::Ident(s) => s.clone(),
                            _ => return Err(self.unexpected("`:` after pattern key")),
                        };
                        let ilo = self.prev_hi();
                        let base = Pattern {
                            id: self.fresh(),
                            span: self.span_from(ilo),
                            kind: PatternKind::Ident(name),
                        };
                        if self.eat(P::Eq) {
                            let default = self.assign_expr()?;
                            Pattern {
                                id: self.fresh(),
                                span: self.span_from(ilo),
                                kind: PatternKind::Assign {
                                    pat: Box::new(base),
                                    default: Box::new(default),
                                },
                            }
                        } else {
                            base
                        }
                    };
                    props.push(ObjectPatProp { key, value });
                    if !self.eat(P::Comma) {
                        break;
                    }
                }
                self.expect(P::RBrace)?;
                PatternKind::Object { props, rest }
            }
            _ => return Err(self.unexpected("binding pattern")),
        };
        Ok(Pattern {
            id: self.fresh(),
            span: self.span_from(lo),
            kind,
        })
    }

    fn pattern_with_default(&mut self) -> Result<Pattern, ParseError> {
        let lo = self.lo();
        let pat = self.pattern()?;
        if self.eat(P::Eq) {
            let default = self.assign_expr()?;
            Ok(Pattern {
                id: self.fresh(),
                span: self.span_from(lo),
                kind: PatternKind::Assign {
                    pat: Box::new(pat),
                    default: Box::new(default),
                },
            })
        } else {
            Ok(pat)
        }
    }

    // ----- functions and classes -----

    /// Parses `function name? (params) { body }`. When `require_name` the
    /// function is a declaration.
    fn function(&mut self, require_name: bool, _method: bool) -> Result<Function, ParseError> {
        let lo = self.lo();
        if !self.eat_kw(Kw::Function) {
            return Err(self.unexpected("`function`"));
        }
        let is_generator = self.eat(P::Star);
        let name = if let Tok::Ident(s) = self.cur().clone() {
            self.bump();
            Some(s)
        } else {
            if require_name {
                return Err(self.unexpected("function name"));
            }
            None
        };
        let (params, rest) = self.param_list()?;
        let body = self.func_block_body()?;
        Ok(Function {
            id: self.fresh(),
            span: self.span_from(lo),
            name,
            params,
            rest,
            body,
            is_arrow: false,
            is_async: false,
            is_generator,
        })
    }

    fn param_list(&mut self) -> Result<(Vec<Param>, Option<Pattern>), ParseError> {
        self.expect(P::LParen)?;
        let mut params = Vec::new();
        let mut rest = None;
        while !self.at(P::RParen) {
            if self.eat(P::DotDotDot) {
                rest = Some(self.pattern()?);
                break;
            }
            let pat = self.pattern()?;
            let default = if self.eat(P::Eq) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            params.push(Param { pat, default });
            if !self.eat(P::Comma) {
                break;
            }
        }
        self.expect(P::RParen)?;
        Ok((params, rest))
    }

    fn func_block_body(&mut self) -> Result<FuncBody, ParseError> {
        self.expect(P::LBrace)?;
        let mut body = Vec::new();
        while !self.at(P::RBrace) && !self.at_eof() {
            body.push(self.stmt()?);
        }
        self.expect(P::RBrace)?;
        Ok(FuncBody::Block(body))
    }

    fn class(&mut self) -> Result<Class, ParseError> {
        let lo = self.lo();
        if !self.eat_kw(Kw::Class) {
            return Err(self.unexpected("`class`"));
        }
        let name = if let Tok::Ident(s) = self.cur().clone() {
            self.bump();
            Some(s)
        } else {
            None
        };
        let super_class = if self.eat_kw(Kw::Extends) {
            Some(Box::new(self.lhs_expr()?))
        } else {
            None
        };
        self.expect(P::LBrace)?;
        let mut members = Vec::new();
        while !self.at(P::RBrace) && !self.at_eof() {
            if self.eat(P::Semi) {
                continue;
            }
            members.push(self.class_member()?);
        }
        self.expect(P::RBrace)?;
        Ok(Class {
            id: self.fresh(),
            span: self.span_from(lo),
            name,
            super_class,
            members,
        })
    }

    fn class_member(&mut self) -> Result<ClassMember, ParseError> {
        let lo = self.lo();
        let mut is_static = false;
        if self.at_ident("static")
            && !matches!(
                self.peek_kind(1),
                Tok::P(P::LParen) | Tok::P(P::Eq) | Tok::P(P::Semi)
            )
        {
            self.bump();
            is_static = true;
        }
        let mut is_async = false;
        if self.at_ident("async")
            && !matches!(
                self.peek_kind(1),
                Tok::P(P::LParen) | Tok::P(P::Eq) | Tok::P(P::Semi)
            )
            && !self.tokens[self.idx + 1].newline_before
        {
            self.bump();
            is_async = true;
        }
        let is_generator = self.eat(P::Star);
        // Getter / setter?
        let accessor = if (self.at_ident("get") || self.at_ident("set"))
            && !matches!(
                self.peek_kind(1),
                Tok::P(P::LParen) | Tok::P(P::Eq) | Tok::P(P::Semi) | Tok::P(P::RBrace)
            ) {
            let kind = if self.at_ident("get") {
                MethodKind::Get
            } else {
                MethodKind::Set
            };
            self.bump();
            Some(kind)
        } else {
            None
        };
        let key = self.prop_name()?;
        if self.at(P::LParen) {
            let flo = self.lo();
            let (params, rest) = self.param_list()?;
            let body = self.func_block_body()?;
            let func = Box::new(Function {
                id: self.fresh(),
                span: self.span_from(flo),
                name: key.static_name(),
                params,
                rest,
                body,
                is_arrow: false,
                is_async,
                is_generator,
            });
            let is_ctor =
                !is_static && accessor.is_none() && key.static_name().as_deref() == Some("constructor");
            let kind = if is_ctor {
                ClassMemberKind::Constructor(func)
            } else {
                ClassMemberKind::Method {
                    kind: accessor.unwrap_or(MethodKind::Method),
                    func,
                }
            };
            Ok(ClassMember {
                span: self.span_from(lo),
                key,
                kind,
                is_static,
            })
        } else {
            // Field.
            let init = if self.eat(P::Eq) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            self.semi()?;
            Ok(ClassMember {
                span: self.span_from(lo),
                key,
                kind: ClassMemberKind::Field(init),
                is_static,
            })
        }
    }

    fn prop_name(&mut self) -> Result<PropName, ParseError> {
        match self.cur().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(PropName::Ident(s))
            }
            Tok::Kw(k) => {
                self.bump();
                Ok(PropName::Ident(k.as_str().to_string()))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(PropName::Str(s))
            }
            Tok::Num(n) => {
                self.bump();
                Ok(PropName::Num(n))
            }
            Tok::P(P::LBracket) => {
                self.bump();
                let e = self.assign_expr()?;
                self.expect(P::RBracket)?;
                Ok(PropName::Computed(Box::new(e)))
            }
            _ => Err(self.unexpected("property name")),
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        let first = self.assign_expr()?;
        if !self.at(P::Comma) {
            return Ok(first);
        }
        let mut exprs = vec![first];
        while self.eat(P::Comma) {
            exprs.push(self.assign_expr()?);
        }
        Ok(self.mk_expr(lo, ExprKind::Seq(exprs)))
    }

    fn mk_expr(&mut self, lo: u32, kind: ExprKind) -> Expr {
        Expr {
            id: self.fresh(),
            span: self.span_from(lo),
            kind,
        }
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.assign_expr_inner();
        self.leave(g);
        r
    }

    fn assign_expr_inner(&mut self) -> Result<Expr, ParseError> {
        // Arrow functions first (they parse like nothing else).
        if let Some(arrow) = self.try_arrow()? {
            return Ok(arrow);
        }
        let lo = self.lo();
        let left = self.cond_expr()?;
        let op = match self.cur() {
            Tok::P(P::Eq) => AssignOp::Assign,
            Tok::P(P::PlusEq) => AssignOp::Add,
            Tok::P(P::MinusEq) => AssignOp::Sub,
            Tok::P(P::StarEq) => AssignOp::Mul,
            Tok::P(P::SlashEq) => AssignOp::Div,
            Tok::P(P::PercentEq) => AssignOp::Rem,
            Tok::P(P::StarStarEq) => AssignOp::Exp,
            Tok::P(P::ShlEq) => AssignOp::Shl,
            Tok::P(P::ShrEq) => AssignOp::Shr,
            Tok::P(P::UShrEq) => AssignOp::UShr,
            Tok::P(P::AmpEq) => AssignOp::BitAnd,
            Tok::P(P::PipeEq) => AssignOp::BitOr,
            Tok::P(P::CaretEq) => AssignOp::BitXor,
            Tok::P(P::AmpAmpEq) => AssignOp::And,
            Tok::P(P::PipePipeEq) => AssignOp::Or,
            Tok::P(P::QuestionQuestionEq) => AssignOp::Nullish,
            _ => return Ok(left),
        };
        self.bump();
        let target = self.expr_to_assign_target(left)?;
        let value = Box::new(self.assign_expr()?);
        Ok(self.mk_expr(lo, ExprKind::Assign { op, target, value }))
    }

    fn expr_to_assign_target(&mut self, e: Expr) -> Result<AssignTarget, ParseError> {
        match e.kind {
            ExprKind::Ident(name) => Ok(AssignTarget::Ident {
                id: e.id,
                span: e.span,
                name,
            }),
            ExprKind::Member { .. } => Ok(AssignTarget::Member(Box::new(e))),
            ExprKind::Paren(inner) => self.expr_to_assign_target(*inner),
            ExprKind::Array(_) | ExprKind::Object(_) => {
                let pat = self.expr_to_pattern(e)?;
                Ok(AssignTarget::Pattern(Box::new(pat)))
            }
            _ => Err(ParseError::new(
                "invalid assignment target",
                e.span.lo,
            )),
        }
    }

    /// Converts an already-parsed expression to a destructuring pattern
    /// (for `[a, b] = ..` style assignments).
    fn expr_to_pattern(&mut self, e: Expr) -> Result<Pattern, ParseError> {
        let span = e.span;
        let kind = match e.kind {
            ExprKind::Ident(name) => PatternKind::Ident(name),
            ExprKind::Paren(inner) => return self.expr_to_pattern(*inner),
            ExprKind::Assign {
                op: AssignOp::Assign,
                target,
                value,
            } => {
                let pat = match target {
                    AssignTarget::Ident { id, span, name } => Pattern {
                        id,
                        span,
                        kind: PatternKind::Ident(name),
                    },
                    AssignTarget::Pattern(p) => *p,
                    AssignTarget::Member(m) => {
                        return Err(ParseError::new(
                            "member expressions in destructuring are not supported",
                            m.span.lo,
                        ))
                    }
                };
                PatternKind::Assign {
                    pat: Box::new(pat),
                    default: value,
                }
            }
            ExprKind::Array(elems) => {
                let mut pelems = Vec::new();
                let mut rest = None;
                let n = elems.len();
                for (i, el) in elems.into_iter().enumerate() {
                    match el {
                        None => pelems.push(None),
                        Some(ExprOrSpread { spread: true, expr }) => {
                            if i + 1 != n {
                                return Err(ParseError::new(
                                    "rest element must be last",
                                    expr.span.lo,
                                ));
                            }
                            rest = Some(Box::new(self.expr_to_pattern(expr)?));
                        }
                        Some(ExprOrSpread { expr, .. }) => {
                            pelems.push(Some(self.expr_to_pattern(expr)?));
                        }
                    }
                }
                PatternKind::Array { elems: pelems, rest }
            }
            ExprKind::Object(props) => {
                let mut pprops = Vec::new();
                let mut rest = None;
                for p in props {
                    match p {
                        Property::KeyValue { key, value } => {
                            pprops.push(ObjectPatProp {
                                key,
                                value: self.expr_to_pattern(value)?,
                            });
                        }
                        Property::Spread(e) => {
                            rest = Some(Box::new(self.expr_to_pattern(e)?));
                        }
                        Property::Method { key, .. } => {
                            return Err(ParseError::new(
                                "method in destructuring pattern",
                                match key {
                                    PropName::Computed(e) => e.span.lo,
                                    _ => span.lo,
                                },
                            ))
                        }
                    }
                }
                PatternKind::Object { props: pprops, rest }
            }
            _ => {
                return Err(ParseError::new(
                    "invalid destructuring pattern",
                    span.lo,
                ))
            }
        };
        Ok(Pattern {
            id: self.fresh(),
            span,
            kind,
        })
    }

    /// Detects and parses an arrow function at the current position.
    fn try_arrow(&mut self) -> Result<Option<Expr>, ParseError> {
        let lo = self.lo();
        // `async` prefix?
        let (is_async, start) = if self.at_ident("async")
            && !self.tokens[self.idx + 1].newline_before
            && matches!(self.peek_kind(1), Tok::Ident(_) | Tok::P(P::LParen))
            && !matches!(self.peek_kind(1), Tok::Ident(s) if s == "async")
        {
            (true, self.idx + 1)
        } else {
            (false, self.idx)
        };

        let tokens_ahead = &self.tokens[start..];
        let arrow_at = match &tokens_ahead[0].kind {
            // `x => ...`
            Tok::Ident(_) => {
                if matches!(tokens_ahead.get(1).map(|t| &t.kind), Some(Tok::P(P::Arrow))) {
                    Some(start + 2)
                } else {
                    None
                }
            }
            // `(params) => ...`
            Tok::P(P::LParen) => {
                let mut depth = 0usize;
                let mut i = 0usize;
                loop {
                    match tokens_ahead.get(i).map(|t| &t.kind) {
                        Some(Tok::P(P::LParen)) => depth += 1,
                        Some(Tok::P(P::RParen)) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(Tok::Eof) | None => return Ok(None),
                        _ => {}
                    }
                    i += 1;
                }
                if matches!(
                    tokens_ahead.get(i + 1).map(|t| &t.kind),
                    Some(Tok::P(P::Arrow))
                ) {
                    Some(start) // params parsed below from `(`
                } else {
                    None
                }
            }
            _ => None,
        };

        let Some(pos) = arrow_at else {
            return Ok(None);
        };

        if is_async {
            self.bump(); // async
        }

        // Parse params.
        let (params, rest) = if self.at(P::LParen) {
            self.param_list()?
        } else {
            // Single identifier param; `pos` marks the token after `=>`.
            let _ = pos;
            let plo = self.lo();
            let name = self.ident_name()?;
            let pat = Pattern {
                id: self.fresh(),
                span: self.span_from(plo),
                kind: PatternKind::Ident(name),
            };
            (
                vec![Param {
                    pat,
                    default: None,
                }],
                None,
            )
        };
        self.expect(P::Arrow)?;
        let body = if self.at(P::LBrace) {
            self.func_block_body()?
        } else {
            FuncBody::Expr(Box::new(self.assign_expr()?))
        };
        let f = Function {
            id: self.fresh(),
            span: self.span_from(lo),
            name: None,
            params,
            rest,
            body,
            is_arrow: true,
            is_async,
            is_generator: false,
        };
        Ok(Some(self.mk_expr(lo, ExprKind::Arrow(Box::new(f)))))
    }

    fn cond_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        let test = self.binary_expr(0)?;
        if !self.eat(P::Question) {
            return Ok(test);
        }
        let cons = Box::new(self.assign_expr()?);
        self.expect(P::Colon)?;
        let alt = Box::new(self.assign_expr()?);
        Ok(self.mk_expr(
            lo,
            ExprKind::Cond {
                test: Box::new(test),
                cons,
                alt,
            },
        ))
    }

    /// Precedence-climbing parser for binary and logical operators.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let lo = self.lo();
        let mut left = self.unary_expr()?;
        loop {
            let (prec, right_assoc, op) = match self.cur() {
                Tok::P(P::QuestionQuestion) => (1, false, BinOrLogical::Logical(LogicalOp::Nullish)),
                Tok::P(P::PipePipe) => (2, false, BinOrLogical::Logical(LogicalOp::Or)),
                Tok::P(P::AmpAmp) => (3, false, BinOrLogical::Logical(LogicalOp::And)),
                Tok::P(P::Pipe) => (4, false, BinOrLogical::Binary(BinaryOp::BitOr)),
                Tok::P(P::Caret) => (5, false, BinOrLogical::Binary(BinaryOp::BitXor)),
                Tok::P(P::Amp) => (6, false, BinOrLogical::Binary(BinaryOp::BitAnd)),
                Tok::P(P::EqEq) => (7, false, BinOrLogical::Binary(BinaryOp::EqLoose)),
                Tok::P(P::NotEq) => (7, false, BinOrLogical::Binary(BinaryOp::NeqLoose)),
                Tok::P(P::EqEqEq) => (7, false, BinOrLogical::Binary(BinaryOp::EqStrict)),
                Tok::P(P::NotEqEq) => (7, false, BinOrLogical::Binary(BinaryOp::NeqStrict)),
                Tok::P(P::Lt) => (8, false, BinOrLogical::Binary(BinaryOp::Lt)),
                Tok::P(P::Le) => (8, false, BinOrLogical::Binary(BinaryOp::Le)),
                Tok::P(P::Gt) => (8, false, BinOrLogical::Binary(BinaryOp::Gt)),
                Tok::P(P::Ge) => (8, false, BinOrLogical::Binary(BinaryOp::Ge)),
                Tok::Kw(Kw::In) if !self.no_in => (8, false, BinOrLogical::Binary(BinaryOp::In)),
                Tok::Kw(Kw::InstanceOf) => (8, false, BinOrLogical::Binary(BinaryOp::InstanceOf)),
                Tok::P(P::Shl) => (9, false, BinOrLogical::Binary(BinaryOp::Shl)),
                Tok::P(P::Shr) => (9, false, BinOrLogical::Binary(BinaryOp::Shr)),
                Tok::P(P::UShr) => (9, false, BinOrLogical::Binary(BinaryOp::UShr)),
                Tok::P(P::Plus) => (10, false, BinOrLogical::Binary(BinaryOp::Add)),
                Tok::P(P::Minus) => (10, false, BinOrLogical::Binary(BinaryOp::Sub)),
                Tok::P(P::Star) => (11, false, BinOrLogical::Binary(BinaryOp::Mul)),
                Tok::P(P::Slash) => (11, false, BinOrLogical::Binary(BinaryOp::Div)),
                Tok::P(P::Percent) => (11, false, BinOrLogical::Binary(BinaryOp::Rem)),
                Tok::P(P::StarStar) => (12, true, BinOrLogical::Binary(BinaryOp::Exp)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let next_min = if right_assoc { prec } else { prec + 1 };
            let right = self.binary_expr(next_min)?;
            left = self.mk_expr(
                lo,
                match op {
                    BinOrLogical::Binary(op) => ExprKind::Binary {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    BinOrLogical::Logical(op) => ExprKind::Logical {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                },
            );
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let g = self.enter()?;
        let r = self.unary_expr_inner();
        self.leave(g);
        r
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        let op = match self.cur() {
            Tok::P(P::Minus) => Some(UnaryOp::Neg),
            Tok::P(P::Plus) => Some(UnaryOp::Pos),
            Tok::P(P::Bang) => Some(UnaryOp::Not),
            Tok::P(P::Tilde) => Some(UnaryOp::BitNot),
            Tok::Kw(Kw::TypeOf) => Some(UnaryOp::TypeOf),
            Tok::Kw(Kw::Void) => Some(UnaryOp::Void),
            Tok::Kw(Kw::Delete) => Some(UnaryOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = Box::new(self.unary_expr()?);
            return Ok(self.mk_expr(lo, ExprKind::Unary { op, expr }));
        }
        if self.at(P::PlusPlus) || self.at(P::MinusMinus) {
            let op = if self.at(P::PlusPlus) {
                UpdateOp::Inc
            } else {
                UpdateOp::Dec
            };
            self.bump();
            let expr = Box::new(self.unary_expr()?);
            return Ok(self.mk_expr(
                lo,
                ExprKind::Update {
                    op,
                    prefix: true,
                    expr,
                },
            ));
        }
        // `await e` — evaluate the operand synchronously.
        if self.at_ident("await") && !matches!(self.peek_kind(1), Tok::P(P::Semi) | Tok::P(P::RParen) | Tok::P(P::Comma) | Tok::P(P::RBrace) | Tok::Eof | Tok::P(P::Dot) | Tok::P(P::Arrow) | Tok::P(P::Colon) | Tok::P(P::Eq)) {
            self.bump();
            return self.unary_expr();
        }
        // `yield e?` — treat as its operand (or undefined-ish void 0).
        if self.at_ident("yield") {
            if matches!(
                self.peek_kind(1),
                Tok::P(P::Semi) | Tok::P(P::RParen) | Tok::P(P::RBrace) | Tok::P(P::RBracket) | Tok::P(P::Comma) | Tok::Eof
            ) || self.tokens[self.idx + 1].newline_before
            {
                self.bump();
                let zero = self.mk_expr(lo, ExprKind::Num(0.0));
                return Ok(self.mk_expr(
                    lo,
                    ExprKind::Unary {
                        op: UnaryOp::Void,
                        expr: Box::new(zero),
                    },
                ));
            }
            self.bump();
            self.eat(P::Star);
            return self.assign_expr();
        }
        let mut e = self.lhs_expr()?;
        // Postfix update (no newline allowed before the operator).
        if (self.at(P::PlusPlus) || self.at(P::MinusMinus)) && !self.cur_token().newline_before {
            let op = if self.at(P::PlusPlus) {
                UpdateOp::Inc
            } else {
                UpdateOp::Dec
            };
            self.bump();
            e = self.mk_expr(
                lo,
                ExprKind::Update {
                    op,
                    prefix: false,
                    expr: Box::new(e),
                },
            );
        }
        Ok(e)
    }

    /// Parses `new`-expressions, calls and member accesses.
    fn lhs_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        let mut e = if self.at_kw(Kw::New) {
            self.parse_new()?
        } else {
            self.primary()?
        };
        // Member / call chain.
        loop {
            if self.at(P::Dot) {
                self.bump();
                let name = self.prop_ident()?;
                e = self.mk_expr(
                    lo,
                    ExprKind::Member {
                        obj: Box::new(e),
                        prop: MemberProp::Static(name),
                        optional: false,
                    },
                );
            } else if self.at(P::QuestionDot) {
                self.bump();
                if self.at(P::LParen) {
                    let args = self.call_args()?;
                    e = self.mk_expr(
                        lo,
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                            optional: true,
                        },
                    );
                } else if self.at(P::LBracket) {
                    self.bump();
                    let prop = self.expr()?;
                    self.expect(P::RBracket)?;
                    e = self.mk_expr(
                        lo,
                        ExprKind::Member {
                            obj: Box::new(e),
                            prop: MemberProp::Computed(Box::new(prop)),
                            optional: true,
                        },
                    );
                } else {
                    let name = self.prop_ident()?;
                    e = self.mk_expr(
                        lo,
                        ExprKind::Member {
                            obj: Box::new(e),
                            prop: MemberProp::Static(name),
                            optional: true,
                        },
                    );
                }
            } else if self.at(P::LBracket) {
                self.bump();
                let saved_no_in = self.no_in;
                self.no_in = false;
                let prop = self.expr();
                self.no_in = saved_no_in;
                let prop = prop?;
                self.expect(P::RBracket)?;
                e = self.mk_expr(
                    lo,
                    ExprKind::Member {
                        obj: Box::new(e),
                        prop: MemberProp::Computed(Box::new(prop)),
                        optional: false,
                    },
                );
            } else if self.at(P::LParen) {
                let args = self.call_args()?;
                e = self.mk_expr(
                    lo,
                    ExprKind::Call {
                        callee: Box::new(e),
                        args,
                        optional: false,
                    },
                );
            } else if matches!(self.cur(), Tok::TemplateNoSub(_) | Tok::TemplateHead(_)) {
                // Tagged template: desugar to a call with the template as
                // the single argument.
                let tpl = self.template_expr()?;
                e = self.mk_expr(
                    lo,
                    ExprKind::Call {
                        callee: Box::new(e),
                        args: vec![ExprOrSpread {
                            spread: false,
                            expr: tpl,
                        }],
                        optional: false,
                    },
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_new(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        self.bump(); // new
        if self.at(P::Dot) {
            // `new.target` — model as undefined-ish identifier.
            self.bump();
            let _ = self.prop_ident()?;
            return Ok(self.mk_expr(lo, ExprKind::Ident("undefined".into())));
        }
        // Callee: a member expression without call arguments.
        let mut callee = if self.at_kw(Kw::New) {
            self.parse_new()?
        } else {
            self.primary()?
        };
        loop {
            if self.at(P::Dot) {
                self.bump();
                let name = self.prop_ident()?;
                callee = self.mk_expr(
                    lo,
                    ExprKind::Member {
                        obj: Box::new(callee),
                        prop: MemberProp::Static(name),
                        optional: false,
                    },
                );
            } else if self.at(P::LBracket) {
                self.bump();
                let prop = self.expr()?;
                self.expect(P::RBracket)?;
                callee = self.mk_expr(
                    lo,
                    ExprKind::Member {
                        obj: Box::new(callee),
                        prop: MemberProp::Computed(Box::new(prop)),
                        optional: false,
                    },
                );
            } else {
                break;
            }
        }
        let args = if self.at(P::LParen) {
            self.call_args()?
        } else {
            Vec::new()
        };
        Ok(self.mk_expr(
            lo,
            ExprKind::New {
                callee: Box::new(callee),
                args,
            },
        ))
    }

    fn call_args(&mut self) -> Result<Vec<ExprOrSpread>, ParseError> {
        self.expect(P::LParen)?;
        let saved_no_in = self.no_in;
        self.no_in = false;
        let mut args = Vec::new();
        while !self.at(P::RParen) {
            let spread = self.eat(P::DotDotDot);
            let expr = self.assign_expr()?;
            args.push(ExprOrSpread { spread, expr });
            if !self.eat(P::Comma) {
                break;
            }
        }
        self.no_in = saved_no_in;
        self.expect(P::RParen)?;
        Ok(args)
    }

    fn template_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        match self.cur().clone() {
            Tok::TemplateNoSub(s) => {
                self.bump();
                Ok(self.mk_expr(
                    lo,
                    ExprKind::Template {
                        quasis: vec![s],
                        exprs: vec![],
                    },
                ))
            }
            Tok::TemplateHead(s) => {
                self.bump();
                let mut quasis = vec![s];
                let mut exprs = Vec::new();
                loop {
                    exprs.push(self.expr()?);
                    match self.cur().clone() {
                        Tok::TemplateMiddle(s) => {
                            self.bump();
                            quasis.push(s);
                        }
                        Tok::TemplateTail(s) => {
                            self.bump();
                            quasis.push(s);
                            break;
                        }
                        _ => return Err(self.unexpected("template continuation")),
                    }
                }
                Ok(self.mk_expr(lo, ExprKind::Template { quasis, exprs }))
            }
            _ => Err(self.unexpected("template literal")),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let lo = self.lo();
        match self.cur().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Num(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Str(s)))
            }
            Tok::TemplateNoSub(_) | Tok::TemplateHead(_) => self.template_expr(),
            Tok::Regex { pattern, flags } => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Regex { pattern, flags }))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Bool(true)))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Bool(false)))
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Null))
            }
            Tok::Kw(Kw::This) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::This))
            }
            Tok::Kw(Kw::Super) => {
                // Model `super` as a plain identifier; the interpreter
                // resolves it through the class runtime.
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Ident("super".into())))
            }
            Tok::Kw(Kw::Function) => {
                let f = self.function(false, false)?;
                Ok(self.mk_expr(lo, ExprKind::Function(Box::new(f))))
            }
            Tok::Ident(ref s)
                if s == "async"
                    && matches!(self.peek_kind(1), Tok::Kw(Kw::Function))
                    && !self.tokens[self.idx + 1].newline_before =>
            {
                self.bump();
                let mut f = self.function(false, false)?;
                f.is_async = true;
                Ok(self.mk_expr(lo, ExprKind::Function(Box::new(f))))
            }
            Tok::Kw(Kw::Class) => {
                let c = self.class()?;
                Ok(self.mk_expr(lo, ExprKind::Class(Box::new(c))))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(self.mk_expr(lo, ExprKind::Ident(name)))
            }
            Tok::P(P::LParen) => {
                self.bump();
                let saved_no_in = self.no_in;
                self.no_in = false;
                let inner = self.expr();
                self.no_in = saved_no_in;
                let inner = inner?;
                self.expect(P::RParen)?;
                Ok(self.mk_expr(lo, ExprKind::Paren(Box::new(inner))))
            }
            Tok::P(P::LBracket) => {
                self.bump();
                let mut elems = Vec::new();
                loop {
                    if self.at(P::RBracket) {
                        break;
                    }
                    if self.at(P::Comma) {
                        self.bump();
                        elems.push(None);
                        continue;
                    }
                    let spread = self.eat(P::DotDotDot);
                    let expr = self.assign_expr()?;
                    elems.push(Some(ExprOrSpread { spread, expr }));
                    if !self.eat(P::Comma) {
                        break;
                    }
                }
                self.expect(P::RBracket)?;
                Ok(self.mk_expr(lo, ExprKind::Array(elems)))
            }
            Tok::P(P::LBrace) => {
                self.bump();
                let mut props = Vec::new();
                while !self.at(P::RBrace) {
                    props.push(self.object_prop()?);
                    if !self.eat(P::Comma) {
                        break;
                    }
                }
                self.expect(P::RBrace)?;
                Ok(self.mk_expr(lo, ExprKind::Object(props)))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn object_prop(&mut self) -> Result<Property, ParseError> {
        // Spread.
        if self.eat(P::DotDotDot) {
            let e = self.assign_expr()?;
            return Ok(Property::Spread(e));
        }
        // Getter / setter: `get name() {}` where `get` is not itself the key.
        if (self.at_ident("get") || self.at_ident("set"))
            && !matches!(
                self.peek_kind(1),
                Tok::P(P::Colon) | Tok::P(P::Comma) | Tok::P(P::RBrace) | Tok::P(P::LParen)
            )
        {
            let kind = if self.at_ident("get") {
                MethodKind::Get
            } else {
                MethodKind::Set
            };
            self.bump();
            let key = self.prop_name()?;
            let flo = self.lo();
            let (params, rest) = self.param_list()?;
            let body = self.func_block_body()?;
            let func = Box::new(Function {
                id: self.fresh(),
                span: self.span_from(flo),
                name: key.static_name(),
                params,
                rest,
                body,
                is_arrow: false,
                is_async: false,
                is_generator: false,
            });
            return Ok(Property::Method { key, kind, func });
        }
        // Async / generator method prefixes.
        let mut is_async = false;
        if self.at_ident("async")
            && !matches!(
                self.peek_kind(1),
                Tok::P(P::Colon) | Tok::P(P::Comma) | Tok::P(P::RBrace) | Tok::P(P::LParen)
            )
            && !self.tokens[self.idx + 1].newline_before
        {
            self.bump();
            is_async = true;
        }
        let is_generator = self.eat(P::Star);

        let key = self.prop_name()?;
        if self.at(P::LParen) {
            // Method.
            let flo = self.lo();
            let (params, rest) = self.param_list()?;
            let body = self.func_block_body()?;
            let func = Box::new(Function {
                id: self.fresh(),
                span: self.span_from(flo),
                name: key.static_name(),
                params,
                rest,
                body,
                is_arrow: false,
                is_async,
                is_generator,
            });
            return Ok(Property::Method {
                key,
                kind: MethodKind::Method,
                func,
            });
        }
        if self.eat(P::Colon) {
            let value = self.assign_expr()?;
            return Ok(Property::KeyValue { key, value });
        }
        // Shorthand `{x}`.
        match &key {
            PropName::Ident(name) => {
                let lo = self.prev_hi();
                let name = name.clone();
                let value = self.mk_expr(lo, ExprKind::Ident(name));
                Ok(Property::KeyValue { key, value })
            }
            _ => Err(self.unexpected("`:` after property key")),
        }
    }
}

enum BinOrLogical {
    Binary(BinaryOp),
    Logical(LogicalOp),
}

/// Marker returned by [`Parser::enter`]; must be passed back to
/// [`Parser::leave`] so depths stay balanced.
struct DepthGuard;
