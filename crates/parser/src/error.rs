//! Parser error type.

use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing a file.
///
/// Carries the byte offset within the file; callers that hold the
/// [`aji_ast::SourceMap`] can convert it to a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
    offset: u32,
    path: Option<String>,
}

impl ParseError {
    /// Creates an error at a byte offset.
    pub fn new(msg: impl Into<String>, offset: u32) -> Self {
        ParseError {
            msg: msg.into(),
            offset,
            path: None,
        }
    }

    /// Attaches the path of the file being parsed.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Byte offset of the error within the file.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Path of the file, if attached.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "{} at {}@{}", self.msg, p, self.offset),
            None => write!(f, "{} at offset {}", self.msg, self.offset),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_path() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "unexpected token at offset 17");
        let e = e.with_path("lib/a.js");
        assert_eq!(e.to_string(), "unexpected token at lib/a.js@17");
        assert_eq!(e.offset(), 17);
        assert_eq!(e.path(), Some("lib/a.js"));
    }
}
