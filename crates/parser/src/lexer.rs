//! Hand-written JavaScript lexer.
//!
//! Produces a full token vector in one pass. Handles string escapes,
//! template literals (via a brace/template stack so `}` resumes the right
//! template), regex-vs-division disambiguation via the previous significant
//! token, comments, and the newline flags required for automatic semicolon
//! insertion.

use crate::error::ParseError;
use crate::token::{Kw, Tok, Token, P};

/// Lexes an entire source file into tokens (ending with [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings/templates/comments and
/// malformed numbers or escapes.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    newline_before: bool,
    tokens: Vec<Token>,
    /// Stack of brace depths at which an interpolated template is waiting
    /// for its `}`.
    template_stack: Vec<u32>,
    brace_depth: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            newline_before: false,
            tokens: Vec::new(),
            template_stack: Vec::new(),
            brace_depth: 0,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos as u32)
    }

    fn push(&mut self, kind: Tok, lo: usize) {
        self.tokens.push(Token {
            kind,
            lo: lo as u32,
            hi: self.pos as u32,
            newline_before: self.newline_before,
        });
        self.newline_before = false;
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        loop {
            self.skip_trivia()?;
            let lo = self.pos;
            if self.pos >= self.src.len() {
                self.push(Tok::Eof, lo);
                return Ok(self.tokens);
            }
            let c = self.peek();
            match c {
                b'0'..=b'9' => self.number(lo)?,
                b'.' if self.peek2().is_ascii_digit() => self.number(lo)?,
                b'"' | b'\'' => self.string(lo)?,
                b'`' => self.template(lo, true)?,
                b'/' => {
                    if self.regex_allowed() {
                        self.regex(lo)?;
                    } else {
                        self.bump();
                        if self.eat(b'=') {
                            self.push(Tok::P(P::SlashEq), lo);
                        } else {
                            self.push(Tok::P(P::Slash), lo);
                        }
                    }
                }
                c if is_ident_start(c) => self.ident(lo),
                _ => self.punct(lo)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | 0x0b | 0x0c => {
                    self.pos += 1;
                }
                b'\n' => {
                    self.pos += 1;
                    self.newline_before = true;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(ParseError::new(
                                "unterminated block comment",
                                start as u32,
                            ));
                        }
                        if self.peek() == b'\n' {
                            self.newline_before = true;
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // UTF-8 non-breaking space and friends: skip any non-ASCII
                // whitespace conservatively (0xc2 0xa0).
                0xc2 if self.peek2() == 0xa0 => {
                    self.pos += 2;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Whether a `/` at the current position starts a regex rather than a
    /// division, judged by the previous significant token.
    fn regex_allowed(&self) -> bool {
        match self.tokens.last().map(|t| &t.kind) {
            None => true,
            Some(Tok::Num(_))
            | Some(Tok::Str(_))
            | Some(Tok::Regex { .. })
            | Some(Tok::TemplateNoSub(_))
            | Some(Tok::TemplateTail(_)) => false,
            Some(Tok::Ident(_)) => false,
            Some(Tok::Kw(k)) => !matches!(
                k,
                Kw::This | Kw::Null | Kw::True | Kw::False | Kw::Super
            ),
            Some(Tok::P(p)) => !matches!(
                p,
                P::RParen | P::RBracket | P::PlusPlus | P::MinusMinus
            ),
            _ => true,
        }
    }

    fn ident(&mut self, lo: usize) {
        while is_ident_continue(self.peek()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos])
            .unwrap_or("")
            .to_string();
        match Kw::from_str(&text) {
            Some(k) => self.push(Tok::Kw(k), lo),
            None => self.push(Tok::Ident(text), lo),
        }
    }

    fn number(&mut self, lo: usize) -> Result<(), ParseError> {
        if self.peek() == b'0' && matches!(self.peek2(), b'x' | b'X') {
            self.pos += 2;
            let start = self.pos;
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                self.pos += 1;
            }
            let text: String = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .replace('_', "");
            let v = u64::from_str_radix(&text, 16)
                .map_err(|_| self.error("invalid hex literal"))?;
            self.push(Tok::Num(v as f64), lo);
            return Ok(());
        }
        if self.peek() == b'0' && matches!(self.peek2(), b'o' | b'O') {
            self.pos += 2;
            let start = self.pos;
            while matches!(self.peek(), b'0'..=b'7' | b'_') {
                self.pos += 1;
            }
            let text: String = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .replace('_', "");
            let v = u64::from_str_radix(&text, 8)
                .map_err(|_| self.error("invalid octal literal"))?;
            self.push(Tok::Num(v as f64), lo);
            return Ok(());
        }
        if self.peek() == b'0' && matches!(self.peek2(), b'b' | b'B') {
            self.pos += 2;
            let start = self.pos;
            while matches!(self.peek(), b'0' | b'1' | b'_') {
                self.pos += 1;
            }
            let text: String = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .replace('_', "");
            let v = u64::from_str_radix(&text, 2)
                .map_err(|_| self.error("invalid binary literal"))?;
            self.push(Tok::Num(v as f64), lo);
            return Ok(());
        }
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.pos += 1;
        }
        if self.peek() == b'.' {
            self.pos += 1;
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            if self.peek().is_ascii_digit() {
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text: String = std::str::from_utf8(&self.src[lo..self.pos])
            .unwrap()
            .replace('_', "");
        let v: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number literal `{}`", text)))?;
        self.push(Tok::Num(v), lo);
        Ok(())
    }

    fn string(&mut self, lo: usize) -> Result<(), ParseError> {
        let quote = self.bump();
        let mut value = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(ParseError::new("unterminated string literal", lo as u32));
            }
            let c = self.bump();
            if c == quote {
                break;
            }
            match c {
                b'\\' => self.escape(&mut value)?,
                b'\n' => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        lo as u32,
                    ))
                }
                c if c < 0x80 => value.push(c as char),
                c => {
                    // Re-decode a UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    self.pos = (start + len).min(self.src.len());
                    if let Ok(s) = std::str::from_utf8(&self.src[start..self.pos]) {
                        value.push_str(s);
                    }
                }
            }
        }
        self.push(Tok::Str(value), lo);
        Ok(())
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.bump();
        match c {
            b'n' => out.push('\n'),
            b't' => out.push('\t'),
            b'r' => out.push('\r'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'v' => out.push('\u{b}'),
            b'0' if !self.peek().is_ascii_digit() => out.push('\0'),
            b'x' => {
                let h = self.hex_digits(2)?;
                out.push(char::from_u32(h).unwrap_or('\u{fffd}'));
            }
            b'u' => {
                if self.eat(b'{') {
                    let start = self.pos;
                    while self.peek() != b'}' && self.pos < self.src.len() {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    let v = u32::from_str_radix(text, 16)
                        .map_err(|_| self.error("invalid unicode escape"))?;
                    if !self.eat(b'}') {
                        return Err(self.error("unterminated unicode escape"));
                    }
                    out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                } else {
                    let h = self.hex_digits(4)?;
                    out.push(char::from_u32(h).unwrap_or('\u{fffd}'));
                }
            }
            b'\n' => {} // line continuation
            b'\r' => {
                self.eat(b'\n');
            }
            c if c < 0x80 => out.push(c as char),
            c => {
                let start = self.pos - 1;
                let len = utf8_len(c);
                self.pos = (start + len).min(self.src.len());
                if let Ok(s) = std::str::from_utf8(&self.src[start..self.pos]) {
                    out.push_str(s);
                }
            }
        }
        Ok(())
    }

    fn hex_digits(&mut self, n: usize) -> Result<u32, ParseError> {
        let start = self.pos;
        for _ in 0..n {
            if !self.peek().is_ascii_hexdigit() {
                return Err(self.error("invalid hex escape"));
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        u32::from_str_radix(text, 16).map_err(|_| self.error("invalid hex escape"))
    }

    /// Lexes a template chunk starting at `` ` `` (if `head`) or at `}`
    /// (continuation). Produces the appropriate template token.
    fn template(&mut self, lo: usize, head: bool) -> Result<(), ParseError> {
        self.bump(); // ` or }
        let mut value = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(ParseError::new("unterminated template literal", lo as u32));
            }
            let c = self.bump();
            match c {
                b'`' => {
                    let kind = if head {
                        Tok::TemplateNoSub(value)
                    } else {
                        Tok::TemplateTail(value)
                    };
                    self.push(kind, lo);
                    return Ok(());
                }
                b'$' if self.peek() == b'{' => {
                    self.bump();
                    let kind = if head {
                        Tok::TemplateHead(value)
                    } else {
                        Tok::TemplateMiddle(value)
                    };
                    self.push(kind, lo);
                    // Remember at which brace depth this template resumes.
                    self.template_stack.push(self.brace_depth);
                    return Ok(());
                }
                b'\\' => self.escape(&mut value)?,
                b'\n' => {
                    self.newline_before = true;
                    value.push('\n');
                }
                c if c < 0x80 => value.push(c as char),
                c => {
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    self.pos = (start + len).min(self.src.len());
                    if let Ok(s) = std::str::from_utf8(&self.src[start..self.pos]) {
                        value.push_str(s);
                    }
                }
            }
        }
    }

    fn regex(&mut self, lo: usize) -> Result<(), ParseError> {
        self.bump(); // /
        let start = self.pos;
        let mut in_class = false;
        loop {
            if self.pos >= self.src.len() {
                return Err(ParseError::new("unterminated regex literal", lo as u32));
            }
            let c = self.bump();
            match c {
                b'\\' => {
                    self.bump();
                }
                b'[' => in_class = true,
                b']' => in_class = false,
                b'/' if !in_class => break,
                b'\n' => {
                    return Err(ParseError::new("unterminated regex literal", lo as u32))
                }
                _ => {}
            }
        }
        let pattern = std::str::from_utf8(&self.src[start..self.pos - 1])
            .unwrap_or("")
            .to_string();
        let fstart = self.pos;
        while is_ident_continue(self.peek()) {
            self.pos += 1;
        }
        let flags = std::str::from_utf8(&self.src[fstart..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(Tok::Regex { pattern, flags }, lo);
        Ok(())
    }

    fn punct(&mut self, lo: usize) -> Result<(), ParseError> {
        use P::*;
        let c = self.bump();
        let kind = match c {
            b'{' => {
                self.brace_depth += 1;
                LBrace
            }
            b'}' => {
                // Does this `}` resume a template?
                if self.template_stack.last() == Some(&self.brace_depth) {
                    self.template_stack.pop();
                    self.pos -= 1;
                    return self.template(lo, false);
                }
                self.brace_depth = self.brace_depth.saturating_sub(1);
                RBrace
            }
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    DotDotDot
                } else {
                    Dot
                }
            }
            b'?' => {
                if self.eat(b'.') {
                    QuestionDot
                } else if self.peek() == b'?' {
                    self.bump();
                    if self.eat(b'=') {
                        QuestionQuestionEq
                    } else {
                        QuestionQuestion
                    }
                } else {
                    Question
                }
            }
            b':' => Colon,
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    if self.eat(b'=') {
                        ShlEq
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == b'>' && self.peek2() == b'>' {
                    self.pos += 2;
                    if self.eat(b'=') {
                        UShrEq
                    } else {
                        UShr
                    }
                } else if self.peek() == b'>' {
                    self.bump();
                    if self.eat(b'=') {
                        ShrEq
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            b'=' => {
                if self.peek() == b'=' && self.peek2() == b'=' {
                    self.pos += 2;
                    EqEqEq
                } else if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else if self.peek() == b'>' {
                    self.bump();
                    Arrow
                } else {
                    Eq
                }
            }
            b'!' => {
                if self.peek() == b'=' && self.peek2() == b'=' {
                    self.pos += 2;
                    NotEqEq
                } else if self.peek() == b'=' {
                    self.bump();
                    NotEq
                } else {
                    Bang
                }
            }
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusEq
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.peek() == b'*' {
                    self.bump();
                    if self.eat(b'=') {
                        StarStarEq
                    } else {
                        StarStar
                    }
                } else if self.eat(b'=') {
                    StarEq
                } else {
                    Star
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    if self.eat(b'=') {
                        AmpAmpEq
                    } else {
                        AmpAmp
                    }
                } else if self.eat(b'=') {
                    AmpEq
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    if self.eat(b'=') {
                        PipePipeEq
                    } else {
                        PipePipe
                    }
                } else if self.eat(b'=') {
                    PipeEq
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretEq
                } else {
                    Caret
                }
            }
            b'~' => Tilde,
            b'#' => {
                // Hashbang on the first line; also tolerate private names
                // by lexing `#name` as an identifier-ish token.
                if lo == 0 && self.peek() == b'!' {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                    return Ok(());
                }
                let start = self.pos;
                while is_ident_continue(self.peek()) {
                    self.pos += 1;
                }
                let text = format!(
                    "#{}",
                    std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
                );
                self.push(Tok::Ident(text), lo);
                return Ok(());
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    lo as u32,
                ))
            }
        };
        self.push(Tok::P(kind), lo);
        Ok(())
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b'$' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'$' || c >= 0x80
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xf0 {
        4
    } else if first >= 0xe0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_statement() {
        let toks = kinds("var x = 1;");
        assert_eq!(
            toks,
            vec![
                Tok::Kw(Kw::Var),
                Tok::Ident("x".into()),
                Tok::P(P::Eq),
                Tok::Num(1.0),
                Tok::P(P::Semi),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(kinds("0x10")[0], Tok::Num(16.0));
        assert_eq!(kinds("0b101")[0], Tok::Num(5.0));
        assert_eq!(kinds("0o17")[0], Tok::Num(15.0));
        assert_eq!(kinds("1.5e3")[0], Tok::Num(1500.0));
        assert_eq!(kinds(".25")[0], Tok::Num(0.25));
        assert_eq!(kinds("1_000")[0], Tok::Num(1000.0));
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
        assert_eq!(kinds(r#"'it\'s'"#)[0], Tok::Str("it's".into()));
        assert_eq!(kinds(r#""A""#)[0], Tok::Str("A".into()));
        assert_eq!(kinds(r#""\u{1F600}""#)[0], Tok::Str("😀".into()));
        assert_eq!(kinds(r#""\x41""#)[0], Tok::Str("A".into()));
    }

    #[test]
    fn lex_template_literals() {
        let toks = kinds("`ab${x}cd`");
        assert_eq!(toks[0], Tok::TemplateHead("ab".into()));
        assert_eq!(toks[1], Tok::Ident("x".into()));
        assert_eq!(toks[2], Tok::TemplateTail("cd".into()));
        let toks = kinds("`plain`");
        assert_eq!(toks[0], Tok::TemplateNoSub("plain".into()));
    }

    #[test]
    fn lex_nested_template_braces() {
        // Object literal inside the interpolation.
        let toks = kinds("`a${ {x: 1}.x }b`");
        assert!(matches!(toks[0], Tok::TemplateHead(_)));
        assert!(toks.iter().any(|t| matches!(t, Tok::TemplateTail(_))));
    }

    #[test]
    fn regex_vs_division() {
        let toks = kinds("a / b");
        assert_eq!(toks[1], Tok::P(P::Slash));
        let toks = kinds("x = /ab+c/g");
        assert_eq!(
            toks[2],
            Tok::Regex {
                pattern: "ab+c".into(),
                flags: "g".into()
            }
        );
        // After `)` it's a division.
        let toks = kinds("(a) / b");
        assert!(toks.contains(&Tok::P(P::Slash)));
        // After `return` it's a regex.
        let toks = kinds("return /x/;");
        assert!(matches!(toks[1], Tok::Regex { .. }));
    }

    #[test]
    fn regex_char_class_slash() {
        let toks = kinds("var r = /[/]/;");
        assert!(matches!(toks[3], Tok::Regex { ref pattern, .. } if pattern == "[/]"));
    }

    #[test]
    fn newline_flags_for_asi() {
        let toks = lex("a\nb").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
    }

    #[test]
    fn comments_are_trivia_but_preserve_newlines() {
        let toks = lex("a // hi\nb /* multi\nline */ c").unwrap();
        assert!(toks[1].newline_before); // b
        assert!(toks[2].newline_before); // c, newline inside block comment
    }

    #[test]
    fn punctuators_multichar() {
        let toks = kinds("a >>>= b ?? c?.d ... ");
        assert!(toks.contains(&Tok::P(P::UShrEq)));
        assert!(toks.contains(&Tok::P(P::QuestionQuestion)));
        assert!(toks.contains(&Tok::P(P::QuestionDot)));
        assert!(toks.contains(&Tok::P(P::DotDotDot)));
    }

    #[test]
    fn hashbang_skipped() {
        let toks = kinds("#!/usr/bin/env node\nvar x;");
        assert_eq!(toks[0], Tok::Kw(Kw::Var));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'abc\ndef'").is_err());
        assert!(lex("`abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn unicode_identifiers_and_strings() {
        let toks = kinds("var café = \"naïve\";");
        assert_eq!(toks[1], Tok::Ident("café".into()));
        assert_eq!(toks[3], Tok::Str("naïve".into()));
    }

    #[test]
    fn keywords_recognized() {
        let toks = kinds("typeof instanceof in of");
        assert_eq!(toks[0], Tok::Kw(Kw::TypeOf));
        assert_eq!(toks[1], Tok::Kw(Kw::InstanceOf));
        assert_eq!(toks[2], Tok::Kw(Kw::In));
        // `of` is contextual.
        assert_eq!(toks[3], Tok::Ident("of".into()));
    }
}
