//! Hand-written JavaScript lexer and parser for the *aji* toolchain.
//!
//! The entry points are [`parse_module`] (one file) and
//! [`parse_project`] (every file of an [`aji_ast::Project`], with
//! project-unique node ids). The supported language is the ES2015+ subset
//! that dominates real-world Node.js code; see the `aji-ast` crate docs for
//! the exact feature list.
//!
//! # Example
//!
//! ```
//! use aji_ast::{FileId, NodeIdGen};
//!
//! # fn main() -> Result<(), aji_parser::ParseError> {
//! let mut ids = NodeIdGen::new();
//! let module = aji_parser::parse_module(
//!     "var x = { get: function() { return 1; } }; x.get();",
//!     FileId(0),
//!     &mut ids,
//! )?;
//! assert_eq!(module.body.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod lexer;
mod parser;
pub mod token;

pub use error::ParseError;
pub use lexer::lex;
pub use parser::{parse_expr, parse_module};

use aji_ast::{FileId, Module, NodeIdGen, Project, SourceMap};
use std::rc::Rc;

/// A fully parsed project: its source map and one [`Module`] per file, in
/// the same order as [`SourceMap`]'s files.
///
/// Modules are reference-counted so one parse can feed every pipeline
/// phase — the static analyses borrow them, the interpreter clones the
/// (cheap) `Rc` handles — instead of each phase re-parsing the project.
/// Cloning a `ParsedProject` clones the source map and bumps the module
/// refcounts; it never re-parses.
#[derive(Debug, Clone)]
pub struct ParsedProject {
    /// Source map over the project's files.
    pub source_map: SourceMap,
    /// Parsed modules; `modules[i]` corresponds to `FileId(i)`.
    pub modules: Vec<Rc<Module>>,
    /// The id generator used, so later passes can mint more ids.
    pub ids: NodeIdGen,
}

impl ParsedProject {
    /// The module for a given file.
    ///
    /// # Panics
    ///
    /// Panics if `file` is not part of this project.
    pub fn module(&self, file: FileId) -> &Module {
        &self.modules[file.index()]
    }
}

/// Parses every file of a project.
///
/// # Errors
///
/// Returns the first parse error, tagged with the offending file's path.
pub fn parse_project(project: &Project) -> Result<ParsedProject, ParseError> {
    let _span = aji_obs::span("parse");
    let source_map = project.source_map();
    let mut ids = NodeIdGen::new();
    let mut modules = Vec::with_capacity(source_map.len());
    let mut bytes = 0u64;
    for (file, sf) in source_map.iter() {
        let module = parse_module(&sf.src, file, &mut ids)
            .map_err(|e| e.with_path(sf.path.clone()))?;
        bytes += sf.src.len() as u64;
        modules.push(Rc::new(module));
    }
    aji_obs::counter_add("parser.files", source_map.len() as u64);
    aji_obs::counter_add("parser.bytes", bytes);
    aji_obs::counter_add("parser.nodes", ids.count() as u64);
    Ok(ParsedProject {
        source_map,
        modules,
        ids,
    })
}
