//! Token definitions for the JavaScript lexer.

use std::fmt;

/// A lexed token with its span and newline information (used for automatic
/// semicolon insertion).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token proper.
    pub kind: Tok,
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
    /// Whether a line terminator occurred between the previous token and
    /// this one (drives ASI and restricted productions).
    pub newline_before: bool,
}

/// Kinds of tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal (value already decoded).
    Num(f64),
    /// String literal (value already unescaped).
    Str(String),
    /// `` `abc` `` — template with no substitutions.
    TemplateNoSub(String),
    /// `` `abc${ `` — start of a template with substitutions.
    TemplateHead(String),
    /// `}abc${` — middle chunk.
    TemplateMiddle(String),
    /// `` }abc` `` — final chunk.
    TemplateTail(String),
    /// Regular expression literal.
    Regex {
        /// Pattern between the slashes.
        pattern: String,
        /// Trailing flags.
        flags: String,
    },
    /// Identifier or contextual keyword (`of`, `get`, `set`, `static`,
    /// `async`, `await`, `yield` are lexed as identifiers).
    Ident(String),
    /// Reserved word.
    Kw(Kw),
    /// Punctuator.
    P(P),
    /// End of input.
    Eof,
}

/// Reserved words recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Var,
    Let,
    Const,
    Function,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    In,
    New,
    Delete,
    TypeOf,
    Void,
    InstanceOf,
    This,
    Null,
    True,
    False,
    Class,
    Extends,
    Super,
    Try,
    Catch,
    Finally,
    Throw,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Debugger,
}

impl Kw {
    /// Looks up a reserved word. (Not `FromStr`: lookup failure is an
    /// ordinary outcome, not an error.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "var" => Kw::Var,
            "let" => Kw::Let,
            "const" => Kw::Const,
            "function" => Kw::Function,
            "return" => Kw::Return,
            "if" => Kw::If,
            "else" => Kw::Else,
            "while" => Kw::While,
            "do" => Kw::Do,
            "for" => Kw::For,
            "in" => Kw::In,
            "new" => Kw::New,
            "delete" => Kw::Delete,
            "typeof" => Kw::TypeOf,
            "void" => Kw::Void,
            "instanceof" => Kw::InstanceOf,
            "this" => Kw::This,
            "null" => Kw::Null,
            "true" => Kw::True,
            "false" => Kw::False,
            "class" => Kw::Class,
            "extends" => Kw::Extends,
            "super" => Kw::Super,
            "try" => Kw::Try,
            "catch" => Kw::Catch,
            "finally" => Kw::Finally,
            "throw" => Kw::Throw,
            "switch" => Kw::Switch,
            "case" => Kw::Case,
            "default" => Kw::Default,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "debugger" => Kw::Debugger,
            _ => return None,
        })
    }

    /// Source text of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Kw::Var => "var",
            Kw::Let => "let",
            Kw::Const => "const",
            Kw::Function => "function",
            Kw::Return => "return",
            Kw::If => "if",
            Kw::Else => "else",
            Kw::While => "while",
            Kw::Do => "do",
            Kw::For => "for",
            Kw::In => "in",
            Kw::New => "new",
            Kw::Delete => "delete",
            Kw::TypeOf => "typeof",
            Kw::Void => "void",
            Kw::InstanceOf => "instanceof",
            Kw::This => "this",
            Kw::Null => "null",
            Kw::True => "true",
            Kw::False => "false",
            Kw::Class => "class",
            Kw::Extends => "extends",
            Kw::Super => "super",
            Kw::Try => "try",
            Kw::Catch => "catch",
            Kw::Finally => "finally",
            Kw::Throw => "throw",
            Kw::Switch => "switch",
            Kw::Case => "case",
            Kw::Default => "default",
            Kw::Break => "break",
            Kw::Continue => "continue",
            Kw::Debugger => "debugger",
        }
    }
}

/// Punctuators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum P {
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    DotDotDot,
    QuestionDot,
    Arrow,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    StarStar,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    UShr,
    Amp,
    Pipe,
    Caret,
    Bang,
    Tilde,
    AmpAmp,
    PipePipe,
    QuestionQuestion,
    Question,
    Colon,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    StarStarEq,
    ShlEq,
    ShrEq,
    UShrEq,
    AmpEq,
    PipeEq,
    CaretEq,
    AmpAmpEq,
    PipePipeEq,
    QuestionQuestionEq,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "number {}", n),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::TemplateNoSub(_)
            | Tok::TemplateHead(_)
            | Tok::TemplateMiddle(_)
            | Tok::TemplateTail(_) => write!(f, "template literal"),
            Tok::Regex { .. } => write!(f, "regex literal"),
            Tok::Ident(s) => write!(f, "identifier `{}`", s),
            Tok::Kw(k) => write!(f, "keyword `{}`", k.as_str()),
            Tok::P(p) => write!(f, "`{:?}`", p),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}
