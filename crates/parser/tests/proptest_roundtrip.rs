//! Property-based parser tests: generated programs must parse, and
//! `print ∘ parse` must be a fixpoint (printing is stable and loses no
//! structure).

use aji_ast::print::print_module;
use aji_ast::{FileId, NodeIdGen};
use proptest::prelude::*;

const KEYWORDS: &[&str] = &[
    "var", "let", "const", "function", "return", "if", "else", "while", "do", "for", "in",
    "new", "delete", "typeof", "void", "instanceof", "this", "null", "true", "false", "class",
    "extends", "super", "try", "catch", "finally", "throw", "switch", "case", "default",
    "break", "continue", "debugger", "of", "get", "set", "static", "async", "await", "yield",
    "arguments", "eval", "undefined",
];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..100000).prop_map(|n| n.to_string()),
        "[a-zA-Z0-9 _.-]{0,10}".prop_map(|s| format!("'{s}'")),
        Just("true".to_string()),
        Just("false".to_string()),
        Just("null".to_string()),
        Just("this".to_string()),
    ]
}

fn expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![literal(), ident()];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            // Binary operators.
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("==="), Just("<"), Just("&&"), Just("||")
            ])
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            // Member access.
            (inner.clone(), ident()).prop_map(|(a, p)| format!("({a}).{p}")),
            // Dynamic member access (the paper's favorite construct).
            (inner.clone(), inner.clone()).prop_map(|(a, k)| format!("({a})[{k}]")),
            // Calls.
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| format!("{f}({})", args.join(", "))),
            // Conditional.
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("({a} ? {b} : {c})")),
            // Unary.
            inner.clone().prop_map(|a| format!("(!{a})")),
            inner.clone().prop_map(|a| format!("(typeof {a})")),
            // Function expression.
            (ident(), inner.clone())
                .prop_map(|(p, b)| format!("(function({p}) {{ return {b}; }})")),
            // Arrow.
            (ident(), inner.clone()).prop_map(|(p, b)| format!("(({p}) => ({b}))")),
            // Array and object literals.
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|xs| format!("[{}]", xs.join(", "))),
            (ident(), inner.clone()).prop_map(|(k, v)| format!("({{ {k}: {v} }})")),
            // Template literal.
            (inner.clone(), "[a-z ]{0,6}").prop_map(|(e, t)| format!("`{t}${{{e}}}`")),
            // new.
            (ident(), proptest::collection::vec(inner, 0..2))
                .prop_map(|(f, args)| format!("new {f}({})", args.join(", "))),
        ]
    })
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (ident(), expr()).prop_map(|(x, e)| format!("var {x} = {e};")),
        (ident(), expr()).prop_map(|(x, e)| format!("let {x} = {e};")),
        expr().prop_map(|e| format!("f0({e});")),
        (expr(), expr()).prop_map(|(c, e)| format!("if ({c}) {{ g0({e}); }}")),
        (ident(), expr()).prop_map(|(x, e)| format!(
            "function {x}(a, b) {{ return {e}; }}"
        )),
        (ident(), expr(), expr()).prop_map(|(x, a, b)| format!(
            "for (var {x} = {a}; {x} < 3; {x}++) {{ h0({b}); }}"
        )),
        (expr(), expr()).prop_map(|(a, b)| format!("try {{ k0({a}); }} catch (e9) {{ k1({b}); }}")),
        (ident(), expr()).prop_map(|(k, e)| format!("obj0[{e}] = {k};")),
    ]
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(), 1..6).prop_map(|ss| ss.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_programs_parse(src in program()) {
        let mut ids = NodeIdGen::new();
        aji_parser::parse_module(&src, FileId(0), &mut ids)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    }

    #[test]
    fn print_parse_fixpoint(src in program()) {
        let mut ids = NodeIdGen::new();
        let m1 = aji_parser::parse_module(&src, FileId(0), &mut ids)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let once = print_module(&m1);
        let mut ids2 = NodeIdGen::new();
        let m2 = aji_parser::parse_module(&once, FileId(0), &mut ids2)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\noriginal:\n{src}\nprinted:\n{once}"));
        let twice = print_module(&m2);
        prop_assert_eq!(&once, &twice, "printer unstable for:\n{}", src);
    }

    #[test]
    fn node_ids_unique_per_parse(src in program()) {
        use aji_ast::visit::{walk_expr, walk_module, Visit};
        struct Ids(Vec<u32>);
        impl Visit for Ids {
            fn visit_expr(&mut self, e: &aji_ast::ast::Expr) {
                self.0.push(e.id.0);
                walk_expr(self, e);
            }
        }
        let mut ids = NodeIdGen::new();
        let m = aji_parser::parse_module(&src, FileId(0), &mut ids).unwrap();
        let mut v = Ids(Vec::new());
        walk_module(&mut v, &m);
        let mut sorted = v.0.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), v.0.len(), "duplicate expr node ids");
    }

    #[test]
    fn lexer_never_panics(src in "[ -~\\n]{0,200}") {
        // Arbitrary printable input: lexing may fail but must not panic.
        let _ = aji_parser::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,200}") {
        let mut ids = NodeIdGen::new();
        let _ = aji_parser::parse_module(&src, FileId(0), &mut ids);
    }
}
