//! Property-based parser tests (ported from proptest to the in-tree
//! `aji-support` check harness): generated programs must parse, and
//! `print ∘ parse` must be a fixpoint (printing is stable and loses no
//! structure).

use aji_ast::print::print_module;
use aji_ast::{FileId, NodeIdGen};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq};

const KEYWORDS: &[&str] = &[
    "var", "let", "const", "function", "return", "if", "else", "while", "do", "for", "in",
    "new", "delete", "typeof", "void", "instanceof", "this", "null", "true", "false", "class",
    "extends", "super", "try", "catch", "finally", "throw", "switch", "case", "default",
    "break", "continue", "debugger", "of", "get", "set", "static", "async", "await", "yield",
    "arguments", "eval", "undefined",
];

fn ident(tc: &mut TestCase) -> String {
    let first = tc.char_in("abcdefghijklmnopqrstuvwxyz");
    let rest = tc.string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0..6);
    let mut s = format!("{first}{rest}");
    if KEYWORDS.contains(&s.as_str()) {
        // Suffixing always de-keywords the name (no keyword extends
        // another by one letter here).
        s.push('x');
    }
    s
}

fn literal(tc: &mut TestCase) -> String {
    match tc.int_in(0u32..6) {
        0 => tc.int_in(0u32..100_000).to_string(),
        1 => format!(
            "'{}'",
            tc.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-", 0..10)
        ),
        2 => "true".to_string(),
        3 => "false".to_string(),
        4 => "null".to_string(),
        _ => "this".to_string(),
    }
}

fn expr(tc: &mut TestCase, depth: u32) -> String {
    if depth == 0 || tc.ratio(1, 4) {
        return if tc.bool() { literal(tc) } else { ident(tc) };
    }
    let d = depth - 1;
    match tc.int_in(0u32..13) {
        0 => {
            let a = expr(tc, d);
            let b = expr(tc, d);
            let op = *tc.pick(&["+", "-", "*", "===", "<", "&&", "||"]);
            format!("({a} {op} {b})")
        }
        1 => format!("({}).{}", expr(tc, d), ident(tc)),
        // Dynamic member access (the paper's favorite construct).
        2 => format!("({})[{}]", expr(tc, d), expr(tc, d)),
        3 => {
            let f = ident(tc);
            let args = tc_join(tc, d, 0..3);
            format!("{f}({args})")
        }
        4 => format!("({} ? {} : {})", expr(tc, d), expr(tc, d), expr(tc, d)),
        5 => format!("(!{})", expr(tc, d)),
        6 => format!("(typeof {})", expr(tc, d)),
        7 => format!("(function({}) {{ return {}; }})", ident(tc), expr(tc, d)),
        8 => format!("(({}) => ({}))", ident(tc), expr(tc, d)),
        9 => format!("[{}]", tc_join(tc, d, 0..3)),
        10 => format!("({{ {}: {} }})", ident(tc), expr(tc, d)),
        11 => {
            let t = tc.string_of("abcdefghijklmnopqrstuvwxyz ", 0..6);
            format!("`{t}${{{}}}`", expr(tc, d))
        }
        _ => {
            let f = ident(tc);
            let args = tc_join(tc, d, 0..2);
            format!("new {f}({args})")
        }
    }
}

fn tc_join(tc: &mut TestCase, depth: u32, n: std::ops::Range<usize>) -> String {
    tc.vec_of(n, |t| expr(t, depth)).join(", ")
}

fn stmt(tc: &mut TestCase) -> String {
    match tc.int_in(0u32..8) {
        0 => format!("var {} = {};", ident(tc), expr(tc, 4)),
        1 => format!("let {} = {};", ident(tc), expr(tc, 4)),
        2 => format!("f0({});", expr(tc, 4)),
        3 => format!("if ({}) {{ g0({}); }}", expr(tc, 4), expr(tc, 4)),
        4 => format!("function {}(a, b) {{ return {}; }}", ident(tc), expr(tc, 4)),
        5 => {
            let x = ident(tc);
            format!(
                "for (var {x} = {}; {x} < 3; {x}++) {{ h0({}); }}",
                expr(tc, 4),
                expr(tc, 4)
            )
        }
        6 => format!(
            "try {{ k0({}); }} catch (e9) {{ k1({}); }}",
            expr(tc, 4),
            expr(tc, 4)
        ),
        _ => format!("obj0[{}] = {};", expr(tc, 4), ident(tc)),
    }
}

fn program(tc: &mut TestCase) -> String {
    tc.vec_of(1..6, stmt).join("\n")
}

#[test]
fn generated_programs_parse() {
    property("generated_programs_parse").cases(256).run(|tc| {
        let src = program(tc);
        let mut ids = NodeIdGen::new();
        let parsed = aji_parser::parse_module(&src, FileId(0), &mut ids);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}\n{src}", parsed.err());
        Ok(())
    });
}

#[test]
fn print_parse_fixpoint() {
    property("print_parse_fixpoint").cases(256).run(|tc| {
        let src = program(tc);
        let mut ids = NodeIdGen::new();
        let m1 = match aji_parser::parse_module(&src, FileId(0), &mut ids) {
            Ok(m) => m,
            Err(e) => return Err(format!("parse failed: {e}\n{src}")),
        };
        let once = print_module(&m1);
        let mut ids2 = NodeIdGen::new();
        let m2 = match aji_parser::parse_module(&once, FileId(0), &mut ids2) {
            Ok(m) => m,
            Err(e) => {
                return Err(format!(
                    "reparse failed: {e}\noriginal:\n{src}\nprinted:\n{once}"
                ))
            }
        };
        let twice = print_module(&m2);
        prop_assert_eq!(&once, &twice, "printer unstable for:\n{}", src);
        Ok(())
    });
}

#[test]
fn node_ids_unique_per_parse() {
    property("node_ids_unique_per_parse").cases(256).run(|tc| {
        use aji_ast::visit::{walk_expr, walk_module, Visit};
        struct Ids(Vec<u32>);
        impl Visit for Ids {
            fn visit_expr(&mut self, e: &aji_ast::ast::Expr) {
                self.0.push(e.id.0);
                walk_expr(self, e);
            }
        }
        let src = program(tc);
        let mut ids = NodeIdGen::new();
        let m = match aji_parser::parse_module(&src, FileId(0), &mut ids) {
            Ok(m) => m,
            Err(e) => return Err(format!("parse failed: {e}\n{src}")),
        };
        let mut v = Ids(Vec::new());
        walk_module(&mut v, &m);
        let mut sorted = v.0.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), v.0.len(), "duplicate expr node ids in:\n{}", src);
        Ok(())
    });
}

/// All printable ASCII plus newline — the port of proptest's `[ -~\n]`.
fn printable_ascii() -> String {
    let mut s: String = (' '..='~').collect();
    s.push('\n');
    s
}

#[test]
fn lexer_never_panics() {
    let charset = printable_ascii();
    property("lexer_never_panics").cases(256).run(|tc| {
        // Arbitrary printable input: lexing may fail but must not panic
        // (a panic fails this #[test] directly).
        let src = tc.string_of(&charset, 0..200);
        let _ = aji_parser::lex(&src);
        Ok(())
    });
}

#[test]
fn parser_never_panics() {
    let charset = printable_ascii();
    property("parser_never_panics").cases(256).run(|tc| {
        let src = tc.string_of(&charset, 0..200);
        let mut ids = NodeIdGen::new();
        let _ = aji_parser::parse_module(&src, FileId(0), &mut ids);
        Ok(())
    });
}
