//! End-to-end parser tests: construct coverage, ASI behavior, spans, and
//! print→reparse fixpoint checks.

use aji_ast::ast::*;
use aji_ast::print::print_module;
use aji_ast::{FileId, NodeIdGen};
use aji_parser::parse_module;

fn parse(src: &str) -> Module {
    let mut ids = NodeIdGen::new();
    parse_module(src, FileId(0), &mut ids)
        .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
}

fn parse_err(src: &str) -> aji_parser::ParseError {
    let mut ids = NodeIdGen::new();
    parse_module(src, FileId(0), &mut ids).expect_err("expected parse error")
}

/// `print(parse(s))` must be a fixpoint of `print ∘ parse`.
fn roundtrip(src: &str) {
    let once = print_module(&parse(src));
    let twice = print_module(&parse(&once));
    assert_eq!(once, twice, "printer not stable for:\n{src}\nfirst:\n{once}");
}

fn first_expr(m: &Module) -> &Expr {
    match &m.body[0].kind {
        StmtKind::Expr(e) => e,
        other => panic!("expected expression statement, got {other:?}"),
    }
}

// ----- statements -----

#[test]
fn var_declarations() {
    let m = parse("var a = 1, b;\nlet c = 'x';\nconst d = [];");
    assert_eq!(m.body.len(), 3);
    match &m.body[2].kind {
        StmtKind::VarDecl(d) => assert_eq!(d.kind, VarKind::Const),
        _ => panic!(),
    }
}

#[test]
fn function_declaration_with_params() {
    let m = parse("function f(a, b = 2, ...rest) { return a + b; }");
    match &m.body[0].kind {
        StmtKind::FuncDecl(f) => {
            assert_eq!(f.name.as_deref(), Some("f"));
            assert_eq!(f.params.len(), 2);
            assert!(f.params[1].default.is_some());
            assert!(f.rest.is_some());
        }
        _ => panic!(),
    }
}

#[test]
fn if_else_chain() {
    let m = parse("if (a) b(); else if (c) d(); else e();");
    match &m.body[0].kind {
        StmtKind::If { alt: Some(alt), .. } => {
            assert!(matches!(alt.kind, StmtKind::If { .. }));
        }
        _ => panic!(),
    }
}

#[test]
fn loops() {
    parse("while (x) { y(); }");
    parse("do { y(); } while (x);");
    parse("for (var i = 0; i < 10; i++) f(i);");
    parse("for (;;) break;");
    parse("for (var k in obj) f(k);");
    parse("for (const v of list) f(v);");
    parse("for (x of list) f(x);");
    parse("for (k in obj) f(k);");
}

#[test]
fn for_in_operator_restriction() {
    // An unparenthesized `in` inside a for-init terminates the init (the
    // spec's NoIn restriction), so this is a syntax error...
    parse_err("for (var x = 'a' in o ? 1 : 2; x; x--) f();");
    // ...while the parenthesized form is fine.
    let m = parse("for (var x = ('a' in o) ? 1 : 2; x; x--) f();");
    assert!(matches!(m.body[0].kind, StmtKind::For { .. }));
    // And `in` in call arguments within a for-init is also fine.
    let m = parse("for (var x = f(k in o); x; x--) g();");
    assert!(matches!(m.body[0].kind, StmtKind::For { .. }));
}

#[test]
fn switch_statement() {
    let m = parse(
        "switch (x) { case 1: a(); break; case 2: case 3: b(); break; default: c(); }",
    );
    match &m.body[0].kind {
        StmtKind::Switch { cases, .. } => {
            assert_eq!(cases.len(), 4);
            assert!(cases[3].test.is_none());
        }
        _ => panic!(),
    }
}

#[test]
fn try_catch_finally() {
    parse("try { f(); } catch (e) { g(e); } finally { h(); }");
    parse("try { f(); } catch { g(); }");
    parse("try { f(); } finally { h(); }");
    parse_err("try { f(); }");
}

#[test]
fn labeled_break_continue() {
    let m = parse("outer: for (;;) { for (;;) { continue outer; } break outer; }");
    assert!(matches!(m.body[0].kind, StmtKind::Labeled { .. }));
}

#[test]
fn throw_requires_expression_on_same_line() {
    parse("throw new Error('x');");
    parse_err("throw\n1;");
}

// ----- ASI -----

#[test]
fn asi_inserts_semicolons_at_newlines() {
    let m = parse("var a = 1\nvar b = 2\nf()");
    assert_eq!(m.body.len(), 3);
}

#[test]
fn asi_return_value_on_same_line() {
    let m = parse("function f() { return\n1; }");
    match &m.body[0].kind {
        StmtKind::FuncDecl(f) => match &f.body {
            FuncBody::Block(stmts) => {
                // `return` with newline → no argument; `1;` is separate.
                assert!(matches!(stmts[0].kind, StmtKind::Return(None)));
                assert_eq!(stmts.len(), 2);
            }
            _ => panic!(),
        },
        _ => panic!(),
    }
}

#[test]
fn asi_postfix_update_not_across_newline() {
    let m = parse("a\n++b");
    assert_eq!(m.body.len(), 2);
}

#[test]
fn missing_semicolon_without_newline_is_error() {
    parse_err("var a = 1 var b = 2");
}

// ----- expressions -----

#[test]
fn precedence_and_associativity() {
    let m = parse("x = 1 + 2 * 3;");
    match &first_expr(&m).kind {
        ExprKind::Assign { value, .. } => match &value.kind {
            ExprKind::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    right.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        },
        _ => panic!(),
    }
}

#[test]
fn exponent_right_associative() {
    let m = parse("x = 2 ** 3 ** 2;");
    match &first_expr(&m).kind {
        ExprKind::Assign { value, .. } => match &value.kind {
            ExprKind::Binary {
                op: BinaryOp::Exp,
                right,
                ..
            } => assert!(matches!(
                right.kind,
                ExprKind::Binary {
                    op: BinaryOp::Exp,
                    ..
                }
            )),
            _ => panic!(),
        },
        _ => panic!(),
    }
}

#[test]
fn member_and_call_chains() {
    let m = parse("a.b.c(1)(2)[k].d();");
    // Shape: Call(Member(Call(Member(Call(Call(Member(Member(a,b),c),1),2),[k]),d)))
    let e = first_expr(&m);
    assert!(matches!(e.kind, ExprKind::Call { .. }));
}

#[test]
fn dynamic_property_read_write() {
    let m = parse("o[k] = o2[p];");
    match &first_expr(&m).kind {
        ExprKind::Assign { target, value, .. } => {
            assert!(matches!(target, AssignTarget::Member(_)));
            assert!(matches!(
                value.kind,
                ExprKind::Member {
                    prop: MemberProp::Computed(_),
                    ..
                }
            ));
        }
        _ => panic!(),
    }
}

#[test]
fn new_expressions() {
    parse("new Foo;");
    parse("new Foo();");
    parse("new a.b.C(1, 2);");
    parse("new (getClass())(arg);");
    let m = parse("x = new new Meta()();");
    assert!(matches!(
        first_expr(&m).kind,
        ExprKind::Assign { .. }
    ));
}

#[test]
fn arrow_functions() {
    let m = parse("var f = x => x + 1;");
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => match &d.decls[0].init.as_ref().unwrap().kind {
            ExprKind::Arrow(f) => {
                assert!(f.is_arrow);
                assert_eq!(f.params.len(), 1);
                assert!(matches!(f.body, FuncBody::Expr(_)));
            }
            other => panic!("expected arrow, got {other:?}"),
        },
        _ => panic!(),
    }
    parse("var g = (a, b) => { return a * b; };");
    parse("var h = () => ({ x: 1 });");
    parse("var i = ({a, b}, [c]) => a + b + c;");
    parse("var j = async x => x;");
    parse("var k = async (a, b) => a + b;");
}

#[test]
fn arrow_vs_parenthesized_expr() {
    // `(a, b)` alone is a sequence, not arrow params.
    let m = parse("x = (a, b);");
    match &first_expr(&m).kind {
        ExprKind::Assign { value, .. } => {
            assert!(matches!(value.kind, ExprKind::Paren(_)));
        }
        _ => panic!(),
    }
}

#[test]
fn object_literals() {
    let m = parse(
        "var o = { a: 1, 'b c': 2, 3: 'three', [k]: v, m() { return 1; }, get p() { return 2; }, set p(x) {}, short, ...rest };",
    );
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => match &d.decls[0].init.as_ref().unwrap().kind {
            ExprKind::Object(props) => {
                assert_eq!(props.len(), 9);
                assert!(matches!(
                    props[3],
                    Property::KeyValue {
                        key: PropName::Computed(_),
                        ..
                    }
                ));
                assert!(matches!(
                    props[5],
                    Property::Method {
                        kind: MethodKind::Get,
                        ..
                    }
                ));
                assert!(matches!(props[8], Property::Spread(_)));
            }
            _ => panic!(),
        },
        _ => panic!(),
    }
}

#[test]
fn get_set_as_plain_property_names() {
    // `get` / `set` used as ordinary keys and methods.
    let m = parse("var o = { get: 1, set: 2 }; o.get; var p = { get() { return 3; } };");
    assert_eq!(m.body.len(), 3);
}

#[test]
fn array_literals_with_holes_and_spread() {
    let m = parse("var a = [1, , 2, ...rest];");
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => match &d.decls[0].init.as_ref().unwrap().kind {
            ExprKind::Array(elems) => {
                assert_eq!(elems.len(), 4);
                assert!(elems[1].is_none());
                assert!(elems[3].as_ref().unwrap().spread);
            }
            _ => panic!(),
        },
        _ => panic!(),
    }
}

#[test]
fn template_literals() {
    let m = parse("var s = `a${x}b${y.z}c`;");
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => match &d.decls[0].init.as_ref().unwrap().kind {
            ExprKind::Template { quasis, exprs } => {
                assert_eq!(quasis, &vec!["a".to_string(), "b".into(), "c".into()]);
                assert_eq!(exprs.len(), 2);
            }
            _ => panic!(),
        },
        _ => panic!(),
    }
}

#[test]
fn optional_chaining() {
    parse("a?.b;");
    parse("a?.[k];");
    parse("f?.(x);");
    parse("a?.b.c?.d;");
}

#[test]
fn logical_and_nullish() {
    parse("x = a && b || c;");
    parse("x = a ?? b;");
    parse("x ??= y; x ||= y; x &&= y;");
}

#[test]
fn destructuring_declarations() {
    let m = parse("var { a, b: c, d = 1, ...rest } = obj; var [x, , y = 2, ...zs] = arr;");
    assert_eq!(m.body.len(), 2);
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => {
            assert!(matches!(d.decls[0].name.kind, PatternKind::Object { .. }));
        }
        _ => panic!(),
    }
}

#[test]
fn destructuring_assignment() {
    let m = parse("[a, b] = pair;");
    match &first_expr(&m).kind {
        ExprKind::Assign { target, .. } => {
            assert!(matches!(target, AssignTarget::Pattern(_)));
        }
        _ => panic!(),
    }
    parse("({ x, y } = point);");
}

#[test]
fn classes() {
    let m = parse(
        "class A extends B { constructor(x) { this.x = x; } m() { return this.x; } static s() {} get g() { return 1; } set g(v) {} f = 7; static sf = 8; }",
    );
    match &m.body[0].kind {
        StmtKind::ClassDecl(c) => {
            assert_eq!(c.name.as_deref(), Some("A"));
            assert!(c.super_class.is_some());
            assert_eq!(c.members.len(), 7);
            assert!(matches!(
                c.members[0].kind,
                ClassMemberKind::Constructor(_)
            ));
            assert!(c.members[2].is_static);
        }
        _ => panic!(),
    }
    parse("var K = class { m() {} };");
}

#[test]
fn async_and_generators() {
    parse("async function f() { await g(); }");
    parse("function* gen() { yield 1; yield* other(); yield; }");
    parse("var o = { async m() {}, *g() {} };");
    parse("class C { async m() {} *g() {} }");
}

#[test]
fn regex_literals() {
    let m = parse("var r = /a[/]b/gi; var div = x / y;");
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => {
            assert!(matches!(
                d.decls[0].init.as_ref().unwrap().kind,
                ExprKind::Regex { .. }
            ));
        }
        _ => panic!(),
    }
}

#[test]
fn comma_sequences() {
    let m = parse("x = (a(), b(), c());");
    match &first_expr(&m).kind {
        ExprKind::Assign { value, .. } => match &value.unparen().kind {
            ExprKind::Seq(exprs) => assert_eq!(exprs.len(), 3),
            other => panic!("unexpected {other:?}"),
        },
        _ => panic!(),
    }
}

#[test]
fn keywords_as_property_names() {
    parse("o.delete(); o.new; o.typeof; var p = { in: 1, for: 2, class: 3 };");
}

#[test]
fn unary_operators() {
    parse("x = typeof a; y = void 0; delete o.p; z = -(-a); w = !~+x;");
}

#[test]
fn conditional_nesting() {
    parse("x = a ? b ? 1 : 2 : c ? 3 : 4;");
}

#[test]
fn iife_patterns() {
    parse("(function() { var x = 1; })();");
    parse("(function(global) { global.x = 1; })(this);");
    parse("(() => { f(); })();");
    parse("!function() {}();");
}

#[test]
fn directive_prologue() {
    parse("'use strict';\nvar x = 1;");
}

// ----- spans and node ids -----

#[test]
fn node_ids_are_unique() {
    let m = parse("function f(a) { return a + f(a - 1); }");
    use aji_ast::visit::{FunctionCollector, Visit};
    let mut c = FunctionCollector::default();
    c.visit_module(&m);
    assert_eq!(c.functions.len(), 1);
}

#[test]
fn spans_cover_tokens() {
    let src = "var abc = foo(1);";
    let m = parse(src);
    let s = &m.body[0];
    assert_eq!(s.span.lo, 0);
    assert_eq!(&src[s.span.lo as usize..s.span.hi as usize], src);
}

#[test]
fn function_span_points_at_definition() {
    let src = "var f = function g() { return 1; };";
    let m = parse(src);
    match &m.body[0].kind {
        StmtKind::VarDecl(d) => match &d.decls[0].init.as_ref().unwrap().kind {
            ExprKind::Function(f) => {
                assert_eq!(&src[f.span.lo as usize..f.span.lo as usize + 8], "function");
            }
            _ => panic!(),
        },
        _ => panic!(),
    }
}

// ----- the paper's motivating example (Figure 1) -----

#[test]
fn parses_motivating_example() {
    let app = r#"
const express = require('express');
const app = express();
app.get('/', function(req, res) {
  res.send('Hello world!');
  server.close();
});
var server = app.listen(8080);
"#;
    let express = r#"
var mixin = require('merge-descriptors');
var proto = require('./application');
exports = module.exports = createApplication;
function createApplication() {
  var app = function(req, res, next) {
    app.handle(req, res, next);
  };
  mixin(app, EventEmitter.prototype, false);
  mixin(app, proto, false);
  return app;
}
"#;
    let merge = r#"
module.exports = merge;
function merge(dest, src, redefine) {
  Object.getOwnPropertyNames(src).forEach(function forOwnPropertyName(name) {
    var descriptor = Object.getOwnPropertyDescriptor(src, name);
    Object.defineProperty(dest, name, descriptor);
  });
  return dest;
}
"#;
    let application = r#"
var methods = require('methods');
var app = exports = module.exports = {};
methods.forEach(function(method) {
  app[method] = function(path) {
    var route = this._router.route(path);
    route[method].apply(route, slice.call(arguments, 1));
    return this;
  };
});
app.listen = function listen() {
  var server = http.createServer(this);
  return server.listen.apply(server, arguments);
};
"#;
    for src in [app, express, merge, application] {
        roundtrip(src);
    }
}

// ----- printer fixpoint on assorted programs -----

#[test]
fn roundtrip_corpus_of_snippets() {
    let snippets = [
        "var x = 1 + 2 * (3 - 4) / 5;",
        "o[k] = f(a, ...rest);",
        "if (a) { b(); } else { c(); }",
        "for (var i = 0; i < n; i++) { total += data[i]; }",
        "function outer() { function inner() {} return inner; }",
        "var f = (a = 1, ...rest) => a + rest.length;",
        "class A { constructor() { this.x = 1; } m() { return this.x; } }",
        "try { risky(); } catch (e) { handle(e); } finally { done(); }",
        "switch (v) { case 1: a(); break; default: b(); }",
        "var t = `x=${x}, y=${o[`inner${k}`]}`;",
        "while (a ? b : c) { d(); }",
        "var { a, b: { c } } = obj;",
        "x = y = z = 0;",
        "a = b in c;",
        "label: while (1) { break label; }",
        "var n = new Foo(new Bar(), 2);",
        "x = a ?? (b || c);",
        "obj.method().prop[idx](arg)(arg2);",
        "f(function() { return 1; }, () => 2);",
        "x++; --y; z = -x;",
        "var big = { nested: { deep: [1, [2, [3]]] } };",
        "do { x--; } while (x > 0);",
        "delete obj[key];",
        "typeof x === 'function' && x();",
    ];
    for s in snippets {
        roundtrip(s);
    }
}

#[test]
fn parse_errors_have_positions() {
    let e = parse_err("var = 1;");
    assert!(e.offset() > 0);
    let e = parse_err("function () {}");
    assert!(e.message().contains("function name"));
}

#[test]
fn deeply_nested_expressions() {
    let mut src = String::from("x = ");
    for _ in 0..40 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..40 {
        src.push(')');
    }
    src.push(';');
    parse(&src);
}

#[test]
fn pathological_nesting_is_an_error_not_a_crash() {
    let mut src = String::from("x = ");
    for _ in 0..5000 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..5000 {
        src.push(')');
    }
    src.push(';');
    let e = parse_err(&src);
    assert!(e.message().contains("nesting too deep"));
}
