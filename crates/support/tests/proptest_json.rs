//! Property tests proving the JSON serializer/parser pair is inverse on
//! the edge cases analysis reports actually hit: astral-plane characters
//! (surrogate pairs in `\u` escapes), control characters, negative zero,
//! and exponent-form numbers. VM benchmark reports ride on this round
//! trip, so "provably inverse" is the bar, not "works on happy paths".

use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq, Json};

/// Deep equality that distinguishes `-0.0` from `0.0` (IEEE `==` does
/// not) — the round trip must preserve the exact bit pattern of every
/// finite number, not just its numeric value.
fn bit_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
        (Json::Arr(xs), Json::Arr(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bit_eq(x, y))
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && bit_eq(va, vb))
        }
        _ => a == b,
    }
}

/// Characters the serializer must escape or pass through untouched:
/// quotes, backslashes, every escape shorthand, C0 controls, the BMP
/// boundary cases and astral-plane characters (𝄞 is U+1D11E, the
/// canonical surrogate-pair example).
const TRICKY_CHARS: &str =
    "a\"\\/\n\r\t\u{08}\u{0C}\u{00}\u{01}\u{1f}\u{7f}é𝄞😀\u{FFFD}\u{D7FF}\u{E000}\u{FFFF}";

fn arbitrary_string(tc: &mut TestCase) -> String {
    tc.string_of(TRICKY_CHARS, 0..12)
}

/// A finite f64 drawn from interesting pools: special values (±0,
/// subnormals, integral boundaries), exponent forms, and raw bit
/// patterns filtered to finite.
fn arbitrary_num(tc: &mut TestCase) -> f64 {
    const SPECIAL: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        -2.5e3,
        1e15,          // boundary of the integral fast path
        999_999_999_999_999.0, // just under it
        1e300,
        -1e300,
        5e-324,        // smallest positive subnormal
        -2.2250738585072014e-308,
        9_007_199_254_740_993.0, // 2^53 + 1, not exactly representable
        f64::MAX,
        f64::MIN,
    ];
    match tc.int_in(0u32..3) {
        0 => *tc.pick(SPECIAL),
        1 => tc.int_in(-1_000_000i64..1_000_000) as f64,
        _ => {
            let bits = tc.choice(u64::MAX);
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                0.0
            }
        }
    }
}

fn arbitrary_json(tc: &mut TestCase, depth: u32) -> Json {
    let scalar = depth == 0 || tc.ratio(1, 2);
    if scalar {
        return match tc.int_in(0u32..4) {
            0 => Json::Null,
            1 => Json::Bool(tc.bool()),
            2 => Json::Num(arbitrary_num(tc)),
            _ => Json::Str(arbitrary_string(tc)),
        };
    }
    if tc.bool() {
        Json::Arr(tc.vec_of(0..4, |t| arbitrary_json(t, depth - 1)))
    } else {
        let pairs = tc.vec_of(0..4, |t| (arbitrary_string(t), arbitrary_json(t, depth - 1)));
        Json::Obj(pairs)
    }
}

#[test]
fn string_round_trip_is_inverse_on_tricky_chars() {
    property("json_string_round_trip").cases(256).run(|tc| {
        let s = arbitrary_string(tc);
        let v = Json::Str(s.clone());
        let text = v.to_string();
        let back = Json::parse(&text).map_err(|e| format!("reparse of {text:?}: {e}"))?;
        prop_assert_eq!(&back, &v, "string {s:?} via {text:?}");
        Ok(())
    });
}

#[test]
fn number_round_trip_preserves_bit_patterns() {
    property("json_number_round_trip").cases(512).run(|tc| {
        let n = arbitrary_num(tc);
        let text = Json::Num(n).to_string();
        let back = Json::parse(&text).map_err(|e| format!("reparse of {text}: {e}"))?;
        let m = back.as_f64().ok_or("parsed to a non-number")?;
        prop_assert!(
            n.to_bits() == m.to_bits(),
            "{n:?} printed as {text} reparsed as {m:?}"
        );
        Ok(())
    });
}

#[test]
fn document_round_trip_is_inverse() {
    property("json_document_round_trip").cases(256).run(|tc| {
        let v = arbitrary_json(tc, 3);
        let text = v.to_string();
        let back = Json::parse(&text).map_err(|e| format!("reparse of {text}: {e}"))?;
        prop_assert!(bit_eq(&back, &v), "value {v:?} via {text}");
        // Printing is a normal form: a second trip is byte-identical.
        prop_assert_eq!(&back.to_string(), &text);
        Ok(())
    });
}

#[test]
fn astral_plane_escapes_parse_to_the_character() {
    // 𝄞 is U+1D11E, encoded in JSON escapes as the surrogate
    // pair \uD834 \uDD1E.
    assert_eq!(
        Json::parse(r#""\ud834\udd1e""#).unwrap(),
        Json::Str("𝄞".into())
    );
    // The raw character round-trips unescaped.
    let v = Json::Str("clef: 𝄞".into());
    assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
}

#[test]
fn lone_surrogates_are_rejected() {
    for bad in [
        r#""\ud834""#,          // lone high surrogate
        r#""\udd1e""#,          // lone low surrogate
        r#""\ud834x""#,         // high surrogate followed by a literal
        r#""\ud834\n""#,        // high surrogate followed by a non-\u escape
        r#""\ud834\ud834""#,    // two high surrogates
    ] {
        assert!(Json::parse(bad).is_err(), "accepted {bad}");
    }
}

#[test]
fn control_chars_escape_and_round_trip() {
    let v = Json::Str("\u{00}\u{01}\u{1f}".into());
    let text = v.to_string();
    assert_eq!(text, r#""\u0000\u0001\u001f""#);
    assert_eq!(Json::parse(&text).unwrap(), v);
    // Unescaped controls in the input stay rejected.
    assert!(Json::parse("\"\u{01}\"").is_err());
}

#[test]
fn negative_zero_keeps_its_sign() {
    let text = Json::Num(-0.0).to_string();
    assert_eq!(text, "-0");
    let back = Json::parse(&text).unwrap().as_f64().unwrap();
    assert!(
        back == 0.0 && back.is_sign_negative(),
        "parsed {back:?} from {text}"
    );
    assert_eq!(Json::Num(0.0).to_string(), "0", "positive zero unaffected");
}

#[test]
fn exponent_numbers_parse_and_round_trip() {
    for (text, expect) in [
        ("0e0", 0.0f64),
        ("1e3", 1000.0),
        ("1E3", 1000.0),
        ("2.5e-2", 0.025),
        ("-1.25E+2", -125.0),
        ("5e-324", 5e-324),
        ("1e308", 1e308),
    ] {
        let v = Json::parse(text).unwrap().as_f64().unwrap();
        assert_eq!(v.to_bits(), expect.to_bits(), "parsing {text}");
        let reprinted = Json::Num(v).to_string();
        let back = Json::parse(&reprinted).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "{text} -> {reprinted}");
    }
    // Exponent overflow to infinity is malformed by this parser's rules
    // (the value model holds finite numbers only).
    assert!(Json::parse("1e999").is_err());
}
