//! Scoped-thread fan-out (replacing the `crossbeam` dependency).
//!
//! `std::thread::scope` (stable since 1.63) already provides what the
//! workspace used crossbeam for: spawning borrowing worker threads. This
//! module wraps it in the one shape the experiment harness needs — map a
//! function over a work list on a bounded pool, preserving input order.

use std::sync::Mutex;

/// Resolves a worker-thread count from the `AJI_THREADS` environment
/// variable.
///
/// Unset, empty or non-numeric values resolve to `0`, which [`map`] treats
/// as "use available parallelism" (capped at 8). The experiment binaries
/// feed this into their `--threads` default, so
/// `AJI_THREADS=4 cargo run --release -p aji-bench --bin fig4_7` pins the
/// pool without touching the command line.
///
/// ```
/// // With AJI_THREADS unset the default is 0 = auto.
/// std::env::remove_var("AJI_THREADS");
/// assert_eq!(aji_support::par::threads_from_env(), 0);
/// ```
pub fn threads_from_env() -> usize {
    std::env::var("AJI_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Applies `f` to every item on up to `max_threads` scoped worker threads,
/// returning results in input order.
///
/// `max_threads == 0` means "use available parallelism" (capped at 8, like
/// the experiment binaries always did). Panics in `f` propagate once all
/// workers have stopped.
///
/// Results come back in **input order** regardless of which worker finished
/// first — this is what makes `aji-bench`'s parallel corpus runs
/// byte-identical to serial ones. Because the threads are scoped, `f` may
/// borrow from the caller's stack:
///
/// ```
/// let base = 10u64;
/// let out = aji_support::par::map(vec![1u64, 2, 3], 2, |x| base + x);
/// assert_eq!(out, vec![11, 12, 13]);
/// ```
pub fn map<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    } else {
        max_threads
    };
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    // Work queue and an order-restoring result buffer.
    let work = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    let results: Mutex<Vec<Option<R>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = work.lock().unwrap().pop();
                let Some((i, x)) = item else { break };
                let r = f(x);
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed every claimed item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = map((0..100).collect::<Vec<u32>>(), 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_and_zero_means_auto() {
        let out = map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let out = map(vec![1, 2, 3], 0, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn borrows_environment() {
        // The whole point of scoped threads: `f` may borrow locals.
        let factor = 3u64;
        let out = map(vec![1u64, 2, 3], 2, |x| x * factor);
        assert_eq!(out, vec![3, 6, 9]);
    }
}
