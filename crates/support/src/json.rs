//! A small JSON value model with a strict parser and an escaping printer.
//!
//! This replaces the `serde` derives the workspace originally used for
//! persisting hint sets and analysis reports. Types opt in by implementing
//! [`ToJson`] / [`FromJson`]; the value model round-trips through
//! `Json::to_string` (via [`fmt::Display`]) / [`Json::parse`].
//!
//! Scope: everything the analyses persist — objects, arrays, finite
//! numbers, escaped strings (including `\uXXXX` and surrogate pairs),
//! booleans and null. Not supported (by design): `NaN`/`Infinity`
//! (rejected on output), duplicate-key semantics beyond last-wins, and
//! comments.
//!
//! Output is **deterministic**: objects print their pairs in insertion
//! order, with no whitespace, so equal values always serialize to equal
//! bytes — the property the corpus determinism tests compare on.
//!
//! # Example
//!
//! ```
//! use aji_support::Json;
//!
//! let doc = Json::obj(vec![
//!     ("name", Json::Str("webframe-app".into())),
//!     ("edges", Json::Num(31.0)),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"name":"webframe-app","edges":31}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::parse`] or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where the error was detected (0 for
    /// conversion errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (shape-mismatch) error, not tied to an input offset.
    pub fn shape(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            offset: 0,
        }
    }
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(xs) => Some(xs),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                assert!(n.is_finite(), "cannot serialize non-finite number {n}");
                if *n == 0.0 && n.is_sign_negative() {
                    // `-0.0 as i64` is 0, which would drop the sign on the
                    // round trip; JSON spells negative zero as `-0`.
                    out.push_str("-0");
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    // Integral values print without the ".0" Rust would add.
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes compactly (no whitespace). Deterministic: objects print in
/// insertion order. Use via `.to_string()`.
///
/// # Panics
///
/// Panics if the value contains a non-finite number — JSON cannot
/// represent those, and silently emitting `null` would corrupt
/// round-trips.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            // Rust's f64 parser overflows to infinity (e.g. "1e999"), but
            // the value model holds finite numbers only — accepting one
            // here would make the serializer panic on the round trip.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.err("number overflows to a non-finite value")),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs a value, failing with a shape error when the JSON does
    /// not match.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::shape("expected string"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::shape("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::shape("expected number"))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_f64().ok_or_else(|| JsonError::shape("expected number"))?;
                if n.trunc() != n {
                    return Err(JsonError::shape("expected integer"));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_json_int!(u32, u64, usize, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::shape("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::shape("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::shape("expected 2-element array")),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs, so non-string keys
/// (e.g. `Loc`) survive the round trip.
impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::shape("expected array of pairs"))?
            .iter()
            .map(<(K, V)>::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-42.0),
            Json::Num(3.5),
            Json::Num(1e300),
            Json::Num(-2.2250738585072014e-308),
            Json::Str(String::new()),
            Json::Str("plain".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        for s in [
            "quote\"inside",
            "back\\slash",
            "newline\nand\ttab",
            "control\u{01}\u{1f}chars",
            "unicode: caf\u{e9} \u{1F600} \u{FFFD}",
            "\u{08}\u{0C}\r",
            "ends with backslash\\",
            "\"\"\"",
        ] {
            let v = Json::Str(s.to_string());
            assert_eq!(roundtrip(&v), v, "string {s:?}");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""Aé""#).unwrap(),
            Json::Str("Aé".into())
        );
        // 😀 is U+1F600 = surrogate pair D83D DE00.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            (
                "nested",
                Json::obj(vec![("k\"ey", Json::Str("v\\al".into()))]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![
            ("z", Json::Num(1.0)),
            ("a", Json::Num(2.0)),
            ("m", Json::Num(3.0)),
        ]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "{a:1}", "tru", "nul",
            "1.2.3", "\"unterminated", "01x", "[1]]", "{} {}", "\"bad \\q escape\"",
            "-", "1e", "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_whitespace_and_numbers() {
        let v = Json::parse(" [ 1 , -2.5e3 , 0.125 ]\n").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![Json::Num(1.0), Json::Num(-2500.0), Json::Num(0.125)])
        );
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(-17.0).to_string(), "-17");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn refuses_nan() {
        let _ = Json::Num(f64::NAN).to_string();
    }

    #[test]
    fn map_and_set_impls_roundtrip() {
        let mut m: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        m.insert(3, vec!["a".into(), "b".into()]);
        m.insert(1, vec![]);
        let j = m.to_json();
        let back: BTreeMap<u32, Vec<String>> = FromJson::from_json(&j).unwrap();
        assert_eq!(back, m);

        let s: BTreeSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let back: BTreeSet<String> = FromJson::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"n": 4, "s": "hi", "b": true, "xs": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
    }
}
