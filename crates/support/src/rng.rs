//! Seeded pseudo-random numbers: splitmix64 seeding feeding a
//! xoshiro256\*\* generator.
//!
//! The generator is deterministic for a fixed seed on every platform, which
//! is what the corpus generator and the property-testing harness need: a
//! project or test case is fully identified by its seed.

use std::ops::Range;

/// Advances a splitmix64 state and returns the next output.
///
/// Used for seeding [`Rng`] and anywhere a cheap one-shot mix of a `u64`
/// is needed (e.g. deriving per-case seeds from a base seed).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* PRNG.
///
/// Not cryptographic; statistically solid and fast, with a 2^256-1 period.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full state is derived from `seed` via
    /// splitmix64 (the initialization the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` without modulo bias (rejection
    /// sampling on the top of the range).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below called with bound 0");
        // Largest multiple of `bound` that fits in u64; values at or above
        // it would bias the low residues.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `range` (half-open), for any primitive integer
    /// type via [`SampleRange`].
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniformly chosen element of `xs`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleRange: Copy {
    /// Draws a uniform value in `range` from `rng`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end - range.start) as u64;
                range.start + rng.below(width) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end as $u).wrapping_sub(range.start as $u);
                if width as u128 > u64::MAX as u128 {
                    // Range wider than 64 bits (only possible for i128):
                    // draw two words.
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    let v = ((hi << 64) | lo) % (width as u128);
                    range.start.wrapping_add(v as $t)
                } else {
                    range.start.wrapping_add(rng.below(width as u64) as $t)
                }
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-50i64..-10);
            assert!((-50..-10).contains(&w));
            let x = rng.random_range(-1000i128..1000);
            assert!((-1000..1000).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = Rng::seed_from_u64(11);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        assert!(rng.choose::<u32>(&[]).is_none());
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..16).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(5).shuffle(&mut a);
        Rng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
    }
}
