//! Line-delimited JSON framing over byte streams and Unix sockets.
//!
//! The `aji serve` daemon speaks the simplest possible RPC framing: one
//! request per line, one response per line, each line a complete JSON
//! document (see DAEMON.md at the repo root for the request catalogue).
//! This module owns the three pieces every peer needs, implemented on
//! `std` only (`std::os::unix::net` for sockets):
//!
//! * [`write_frame`] / [`read_frame`] — encode/decode one frame over any
//!   `Write`/`BufRead` pair (the daemon's accept loop uses these);
//! * [`request`] — the one-shot client call: connect to a Unix socket,
//!   send one request, read one response, close. Experiment binaries in
//!   `--daemon` mode are thin wrappers around this;
//! * [`WireError`] — transport and protocol errors, kept separate from
//!   request-level `{"ok": false}` errors, which are *valid* frames.
//!
//! Frames never contain raw newlines — the JSON printer escapes them
//! inside strings (`\n`), so `'\n'` is unambiguous as a frame
//! terminator.
//!
//! # Example
//!
//! ```
//! use aji_support::{wire, Json};
//!
//! let mut buf = Vec::new();
//! wire::write_frame(&mut buf, &Json::obj(vec![("op", Json::Str("stats".into()))])).unwrap();
//! assert_eq!(buf, b"{\"op\":\"stats\"}\n");
//!
//! let mut reader = std::io::BufReader::new(&buf[..]);
//! let frame = wire::read_frame(&mut reader).unwrap().unwrap();
//! assert_eq!(frame.get("op").and_then(Json::as_str), Some("stats"));
//! assert!(wire::read_frame(&mut reader).unwrap().is_none()); // EOF
//! ```

use crate::json::{Json, JsonError};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Transport- or framing-level failure of one wire operation.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (connect, read or write).
    Io(io::Error),
    /// A frame arrived but its bytes are not valid JSON.
    Protocol(JsonError),
    /// The peer closed the stream where a response frame was required.
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Protocol(e) => write!(f, "malformed frame: {e}"),
            WireError::Closed => write!(f, "connection closed before a response arrived"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame: the document's compact JSON rendering plus `'\n'`,
/// then flushes, so a blocked peer sees the frame immediately.
///
/// # Errors
///
/// Any error of the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, doc: &Json) -> io::Result<()> {
    let mut text = doc.to_string();
    text.push('\n');
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer is done), `Err(WireError::Protocol)` if a line
/// arrives that is not valid JSON.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure, [`WireError::Protocol`] on a
/// non-JSON line.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<Json>, WireError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    let trimmed = line.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() {
        // A blank line is a keep-alive no-op frame boundary; skip it.
        return read_frame(r);
    }
    Json::parse(trimmed)
        .map(Some)
        .map_err(WireError::Protocol)
}

/// One-shot request over a Unix socket: connect to `socket_path`, send
/// `req` as a single frame, read a single response frame, close.
///
/// Every call opens a fresh connection, so concurrent callers serialize
/// on the daemon's accept loop without coordinating with each other —
/// that is what makes client-side fan-out (`--daemon` with `--threads 4`)
/// deterministic: responses depend only on request content, never on
/// connection interleaving.
///
/// # Errors
///
/// [`WireError::Io`] if the socket is absent or refuses,
/// [`WireError::Closed`] if the daemon hangs up without responding,
/// [`WireError::Protocol`] on a malformed response.
#[cfg(unix)]
pub fn request(socket_path: &str, req: &Json) -> Result<Json, WireError> {
    use std::os::unix::net::UnixStream;
    let stream = UnixStream::connect(socket_path)?;
    let mut writer = stream.try_clone()?;
    write_frame(&mut writer, req)?;
    let mut reader = io::BufReader::new(stream);
    read_frame(&mut reader)?.ok_or(WireError::Closed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_buffer() {
        let doc = Json::obj(vec![
            ("op", Json::Str("analyze".into())),
            ("text", Json::Str("line1\nline2".into())),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &Json::Bool(true)).unwrap();
        // Embedded newline is escaped, so exactly two frames exist.
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 2);
        let mut r = io::BufReader::new(&buf[..]);
        let first = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            first.get("text").and_then(Json::as_str),
            Some("line1\nline2")
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some(Json::Bool(true)));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let bytes = b"\n\n{\"ok\":true}\n";
        let mut r = io::BufReader::new(&bytes[..]);
        let frame = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn garbage_is_a_protocol_error() {
        let bytes = b"{not json}\n";
        let mut r = io::BufReader::new(&bytes[..]);
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Protocol(_))
        ));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_request_roundtrips() {
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("aji-wire-test-{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = io::BufReader::new(stream.try_clone().unwrap());
            let req = read_frame(&mut reader).unwrap().unwrap();
            let mut w = stream;
            write_frame(
                &mut w,
                &Json::obj(vec![("echo", req.get("op").cloned().unwrap_or(Json::Null))]),
            )
            .unwrap();
        });
        let resp = request(
            &path_str,
            &Json::obj(vec![("op", Json::Str("stats".into()))]),
        )
        .unwrap();
        assert_eq!(resp.get("echo").and_then(Json::as_str), Some("stats"));
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
