//! Seeded content hashing for cache keys (replaces `fnv`/`xxhash`).
//!
//! The daemon's `HintStore` (crate `aji-serve`) keys every cache layer by
//! a digest of source text, so the properties that matter here are the
//! ones a *persistent, cross-process* cache needs:
//!
//! * **Stability** — the digest of a given byte string never changes
//!   across runs, platforms or thread counts (unlike `std`'s
//!   `DefaultHasher`, which is randomized per process and explicitly
//!   unstable across releases). Snapshots written by one daemon process
//!   must validate in the next.
//! * **Seedability** — a deployment can pick a seed so that digests are
//!   not portable *between* unrelated stores (a cheap guard against
//!   accidentally mixing snapshot files), and the test suite can prove
//!   key-space separation.
//! * **Speed over cryptography** — keys are content digests for caches
//!   whose values are re-derivable; collision resistance against an
//!   adversary is a non-goal, exactly as with FNV or xxHash.
//!
//! The implementation is 64-bit FNV-1a with the seed folded into the
//! offset basis, plus a [`mix64`] finalizer (xorshift-multiply, the
//! splitmix64 tail) so that short inputs still diffuse into the high
//! bits.
//!
//! # Example
//!
//! ```
//! use aji_support::hash::{fnv64, Fnv64};
//!
//! // One-shot and streaming digests agree.
//! let mut h = Fnv64::new(0);
//! h.write(b"var x = ");
//! h.write(b"1;");
//! assert_eq!(h.finish(), fnv64(0, b"var x = 1;"));
//!
//! // Different seeds give unrelated key spaces.
//! assert_ne!(fnv64(0, b"var x = 1;"), fnv64(7, b"var x = 1;"));
//! ```

/// The FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming seeded FNV-1a 64-bit hasher.
///
/// Feed bytes with [`Fnv64::write`] (or whole values with the helpers
/// below) and read the digest with [`Fnv64::finish`]; `finish` does not
/// consume the hasher, so a prefix digest can be sampled mid-stream —
/// which is exactly how the daemon's parse cache keys "the project up to
/// and including file *i*".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher whose offset basis is perturbed by `seed`
    /// (seed 0 is plain FNV-1a).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Diffuse the seed before folding it in so that small seeds
        // (0, 1, 2, …) still flip about half of the basis bits.
        Fnv64 {
            state: OFFSET ^ mix64(seed),
        }
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= u64::from(b);
            s = s.wrapping_mul(PRIME);
        }
        self.state = s;
    }

    /// Absorbs a `u64` in little-endian byte order (for combining child
    /// digests into a parent digest).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string, so `("ab","c")` and `("a","bc")`
    /// hash differently when combined field by field.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest of everything written so far, finalized through
    /// [`mix64`]. Does not reset the hasher.
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

/// One-shot convenience: digest of `bytes` under `seed`.
#[must_use]
pub fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new(seed);
    h.write(bytes);
    h.finish()
}

/// The splitmix64 finalizer: a fast invertible mix that spreads low-bit
/// differences across the whole word. Used both to diffuse seeds and to
/// finalize digests.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Renders a digest the way snapshots and the `stats` response do:
/// 16 lower-case hex digits, zero-padded, stable across platforms.
#[must_use]
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses [`hex`]'s output back to a digest (used when reloading
/// snapshots).
#[must_use]
pub fn from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_calls() {
        let a = fnv64(0, b"hello");
        let b = fnv64(0, b"hello");
        assert_eq!(a, b);
        // Pinned value: the whole point is cross-process stability, so a
        // change here is a cache-invalidation event and must be loud.
        assert_eq!(fnv64(0, b""), mix64(OFFSET ^ mix64(0)));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv64::new(42);
        for chunk in ["var ", "x", " = 1;"] {
            h.write(chunk.as_bytes());
        }
        assert_eq!(h.finish(), fnv64(42, b"var x = 1;"));
    }

    #[test]
    fn seed_separates_key_spaces() {
        for s in ["", "a", "var x = 1;"] {
            assert_ne!(fnv64(0, s.as_bytes()), fnv64(1, s.as_bytes()));
            assert_ne!(fnv64(1, s.as_bytes()), fnv64(2, s.as_bytes()));
        }
    }

    #[test]
    fn small_edits_change_the_digest() {
        let base = fnv64(0, b"function f() { return 1; }");
        assert_ne!(base, fnv64(0, b"function f() { return 2; }"));
        assert_ne!(base, fnv64(0, b"function f() { return 1; } "));
        assert_ne!(base, fnv64(0, b"function g() { return 1; }"));
    }

    #[test]
    fn write_str_is_length_prefixed() {
        let mut a = Fnv64::new(0);
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new(0);
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_roundtrips() {
        for d in [0u64, 1, u64::MAX, fnv64(3, b"x")] {
            assert_eq!(from_hex(&hex(d)), Some(d));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("0"), None);
    }
}
