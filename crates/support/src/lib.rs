//! Hermetic support substrate for the *aji* workspace.
//!
//! This workspace builds with **zero external crates** so that the paper
//! reproduction is exactly as portable as the Rust toolchain itself (the
//! evaluation environment has no registry access, and offline builds must
//! be bit-for-bit reproducible). Everything the workspace would otherwise
//! pull from crates.io lives here, implemented against `std` only:
//!
//! - [`rng`] — a seeded splitmix64/xoshiro256\*\* PRNG (replaces `rand`);
//! - [`json`] — a JSON value model with a strict parser and an escaping
//!   printer (replaces the `serde`/`serde_json` derives);
//! - [`check`] — a minithesis-style property-testing harness with
//!   choice-sequence shrinking and failure-seed replay (replaces
//!   `proptest`);
//! - [`mod@bench`] — a warmup + timed-iterations micro-benchmark harness with
//!   median/p95 reporting and JSON output (replaces `criterion`);
//! - [`par`] — a `std::thread::scope`-based fan-out helper (replaces
//!   `crossbeam`);
//! - [`hash`] — a seeded FNV-1a 64-bit content hasher with a splitmix64
//!   finalizer, for stable cross-process cache keys (replaces
//!   `fnv`/`xxhash`);
//! - [`wire`] — line-delimited JSON framing over byte streams and Unix
//!   sockets, the `aji serve` daemon's RPC transport (replaces
//!   `serde_json` + a socket framing crate).
//!
//! Policy: shims for missing third-party functionality live in this crate
//! and nowhere else. `tests/hermetic.rs` at the workspace root fails the
//! build if any manifest reintroduces a registry dependency.
//!
//! # Example
//!
//! The two shims the experiment driver leans on — fan a computation over a
//! work list on scoped threads, then persist results as deterministic JSON:
//!
//! ```
//! use aji_support::{par, Json};
//!
//! let squares = par::map(vec![1u64, 2, 3], 2, |x| x * x);
//! let doc = Json::Arr(squares.into_iter().map(|n| Json::Num(n as f64)).collect());
//! assert_eq!(doc.to_string(), "[1,4,9]");
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod hash;
pub mod json;
pub mod par;
pub mod rng;
pub mod wire;

pub use check::{Failure, TestCase};
pub use hash::Fnv64;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
