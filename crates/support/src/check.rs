//! A minimal property-based testing harness (replacing `proptest`).
//!
//! Design (after Minithesis/Hypothesis): a property is a function from a
//! [`TestCase`] to `Result<(), String>`. The test case hands out
//! nondeterministic *choices* — bounded integers — and records them. When a
//! property fails, the harness shrinks the recorded choice sequence
//! (deleting blocks, zeroing blocks, halving values — "shrinking by
//! halving") and replays the property against candidate sequences until no
//! smaller failing sequence is found. Smaller sequences mean earlier
//! termination and smaller drawn values, so the reported case is minimal in
//! the same sense proptest's was.
//!
//! Reproducibility: every case is fully determined by a per-case seed
//! derived from the property name and the case index. On failure, the
//! harness prints the failing seed; setting `AJI_CHECK_SEED=<seed>` reruns
//! exactly that case (failure-seed replay).
//!
//! ```
//! use aji_support::check::property;
//! use aji_support::prop_assert;
//!
//! property("addition_commutes").cases(64).run(|tc| {
//!     let a = tc.int_in(0i64..1000);
//!     let b = tc.int_in(0i64..1000);
//!     prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::rng::{splitmix64, Rng};
use std::ops::Range;

/// One generated test case: a recorded sequence of bounded choices.
///
/// During normal generation, choices come from a seeded [`Rng`]. During
/// shrinking, choices replay from a candidate prefix; draws past the end of
/// the prefix return `0` (the minimal choice), keeping replay
/// deterministic.
pub struct TestCase {
    rng: Rng,
    prefix: Option<Vec<u64>>,
    choices: Vec<u64>,
}

impl TestCase {
    fn from_seed(seed: u64) -> Self {
        TestCase {
            rng: Rng::seed_from_u64(seed),
            prefix: None,
            choices: Vec::new(),
        }
    }

    fn replaying(prefix: Vec<u64>) -> Self {
        TestCase {
            rng: Rng::seed_from_u64(0),
            prefix: Some(prefix),
            choices: Vec::new(),
        }
    }

    /// A test case drawing fresh choices from a seeded PRNG — the public
    /// face of the generation mode, for harnesses that schedule cases
    /// themselves instead of going through [`Property::check`] (the
    /// soundness fuzzer seeds one case per generated corpus program and
    /// keeps the recorded [`TestCase::choices`] for later shrinking).
    ///
    /// ```
    /// use aji_support::check::TestCase;
    ///
    /// let mut a = TestCase::with_seed(42);
    /// let mut b = TestCase::with_seed(42);
    /// assert_eq!(a.int_in(0u64..1000), b.int_in(0u64..1000));
    /// assert_eq!(a.choices(), b.choices());
    /// ```
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self::from_seed(seed)
    }

    /// A test case that replays a recorded choice sequence — the public
    /// face of the shrinker's replay mode, so callers holding a
    /// [`Failure`]'s choices can rebuild the exact failing value.
    ///
    /// Draws past the end of `choices` return `0` (the minimal choice),
    /// and every draw is clamped to its bound, so replay is total: any
    /// `u64` sequence produces *some* value of the generator.
    ///
    /// ```
    /// use aji_support::check::TestCase;
    ///
    /// let mut tc = TestCase::for_choices(vec![7, 1]);
    /// assert_eq!(tc.int_in(0u64..100), 7);
    /// assert!(tc.bool());
    /// assert_eq!(tc.int_in(0u64..100), 0, "past-end draws are minimal");
    /// ```
    #[must_use]
    pub fn for_choices(choices: Vec<u64>) -> Self {
        Self::replaying(choices)
    }

    /// The choices recorded so far (one entry per draw, in draw order).
    #[must_use]
    pub fn choices(&self) -> &[u64] {
        &self.choices
    }

    /// Draws a choice in `[0, n)`, recording it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choice(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestCase::choice bound must be positive");
        let v = match &self.prefix {
            Some(p) => p.get(self.choices.len()).copied().unwrap_or(0).min(n - 1),
            None => self.rng.below(n),
        };
        self.choices.push(v);
        v
    }

    /// Uniform integer in the half-open `range`.
    pub fn int_in<T: CheckInt>(&mut self, range: Range<T>) -> T {
        let (start, end) = (range.start.to_i128(), range.end.to_i128());
        assert!(start < end, "empty range");
        let width = (end - start) as u128;
        assert!(width <= u64::MAX as u128, "range wider than 64 bits");
        T::from_i128(start + self.choice(width as u64) as i128)
    }

    /// A boolean choice.
    pub fn bool(&mut self) -> bool {
        self.choice(2) == 1
    }

    /// `true` with probability roughly `num/denom` (shrinks toward
    /// `false`).
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.choice(denom) < num
    }

    /// Uniformly picks an element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.choice(xs.len() as u64) as usize]
    }

    /// A `char` drawn from `charset` (shrinks toward its first element).
    pub fn char_in(&mut self, charset: &str) -> char {
        let chars: Vec<char> = charset.chars().collect();
        *self.pick(&chars)
    }

    /// A string of length within `len`, each char drawn from `charset` —
    /// the port target for proptest's `"[charset]{lo,hi}"` regex
    /// strategies.
    pub fn string_of(&mut self, charset: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = charset.chars().collect();
        let n = self.int_in(len);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A vector with length within `len`, elements produced by `f`.
    pub fn vec_of<T>(
        &mut self,
        len: Range<usize>,
        mut f: impl FnMut(&mut TestCase) -> T,
    ) -> Vec<T> {
        let n = self.int_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Integers drawable by [`TestCase::int_in`].
pub trait CheckInt: Copy {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (always in range for harness-produced values).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_check_int {
    ($($t:ty),*) => {$(
        impl CheckInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}

impl_check_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// A configured property, built by [`property`].
pub struct Property {
    name: String,
    cases: u32,
    max_shrink_runs: u32,
}

/// Starts configuring a property named `name` (the name seeds case
/// generation, so distinct properties explore distinct cases).
pub fn property(name: &str) -> Property {
    Property {
        name: name.to_string(),
        cases: 128,
        max_shrink_runs: 4096,
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Outcome of running a property against one choice sequence.
enum Run {
    Pass,
    Fail { message: String, choices: Vec<u64> },
}

/// A shrunk property failure, as found by [`Property::check`].
///
/// `choices` is the minimal recorded choice sequence; replaying it with
/// [`TestCase::for_choices`] rebuilds the minimal failing value. `seed`
/// reproduces the *original* (pre-shrink) case via `AJI_CHECK_SEED`.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing case (0-based).
    pub case: u32,
    /// Per-case RNG seed that produced the original failure.
    pub seed: u64,
    /// The minimal failing choice sequence after shrinking.
    pub choices: Vec<u64>,
    /// The failure message of the minimal case.
    pub message: String,
    /// Property executions spent shrinking.
    pub shrink_runs: u32,
}

/// Shrinks a failing choice sequence without a [`Property`]: repeatedly
/// tries deleting blocks, zeroing blocks and halving/decrementing values,
/// keeping any candidate on which `f` still fails and that is strictly
/// smaller (shorter, or lexicographically smaller at equal length).
/// Returns the minimal choices, their failure message and the number of
/// property executions spent.
///
/// `initial` must be a sequence on which `f` fails (as recorded by a
/// [`TestCase`]); `initial_message` is its failure message. This is the
/// engine behind [`Property::check`], exposed so harnesses that find
/// failures on their own schedule — e.g. a corpus fuzzer flagging a
/// generated project — can still minimize them.
///
/// ```
/// use aji_support::check::{shrink_choices, TestCase};
///
/// // Fails whenever the drawn value is >= 10; minimal failure is 10.
/// let f = |tc: &mut TestCase| {
///     let v = tc.int_in(0u64..1000);
///     if v >= 10 { Err(format!("v = {v}")) } else { Ok(()) }
/// };
/// let (choices, message, _runs) = shrink_choices(vec![700], "v = 700".into(), 4096, f);
/// assert_eq!(choices, vec![10]);
/// assert_eq!(message, "v = 10");
/// ```
pub fn shrink_choices(
    initial: Vec<u64>,
    initial_message: String,
    max_shrink_runs: u32,
    f: impl Fn(&mut TestCase) -> Result<(), String>,
) -> (Vec<u64>, String, u32) {
    let mut best = initial;
    let mut best_message = initial_message;
    let mut runs = 0u32;
    let smaller = |cand: &[u64], cur: &[u64]| {
        cand.len() < cur.len() || (cand.len() == cur.len() && cand < cur)
    };
    let mut improved = true;
    while improved && runs < max_shrink_runs {
        improved = false;
        let mut candidates: Vec<Vec<u64>> = Vec::new();
        // Delete blocks of choices, large blocks first.
        for k in [16usize, 8, 4, 2, 1] {
            if best.len() < k {
                continue;
            }
            for i in (0..=best.len() - k).rev() {
                let mut c = best.clone();
                c.drain(i..i + k);
                candidates.push(c);
            }
        }
        // Zero blocks.
        for k in [8usize, 4, 2, 1] {
            if best.len() < k {
                continue;
            }
            for i in 0..=best.len() - k {
                if best[i..i + k].iter().all(|&v| v == 0) {
                    continue;
                }
                let mut c = best.clone();
                c[i..i + k].iter_mut().for_each(|v| *v = 0);
                candidates.push(c);
            }
        }
        // Halve and decrement individual values.
        for i in 0..best.len() {
            if best[i] > 1 {
                let mut c = best.clone();
                c[i] /= 2;
                candidates.push(c);
            }
            if best[i] > 0 {
                let mut c = best.clone();
                c[i] -= 1;
                candidates.push(c);
            }
        }
        for cand in candidates {
            if runs >= max_shrink_runs {
                break;
            }
            if !smaller(&cand, &best) {
                continue;
            }
            runs += 1;
            if let Run::Fail { message, choices } = Property::execute(&f, cand) {
                // Record what the property actually consumed — replay
                // may terminate earlier than the candidate suggests.
                if smaller(&choices, &best) {
                    best = choices;
                    best_message = message;
                    improved = true;
                }
            }
        }
    }
    (best, best_message, runs)
}

impl Property {
    /// Sets the number of cases to generate (default 128).
    pub fn cases(mut self, n: u32) -> Self {
        self.cases = n;
        self
    }

    /// Caps the number of extra executions spent shrinking a failure.
    pub fn max_shrink_runs(mut self, n: u32) -> Self {
        self.max_shrink_runs = n;
        self
    }

    /// Runs the property over `cases` seeded test cases, shrinking and
    /// panicking on the first failure.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when the property fails.
    pub fn run(self, f: impl Fn(&mut TestCase) -> Result<(), String>) {
        if let Ok(seed_str) = std::env::var("AJI_CHECK_SEED") {
            let seed: u64 = seed_str
                .trim()
                .parse()
                .expect("AJI_CHECK_SEED must be a u64");
            self.run_one_seed(seed, &f);
            return;
        }
        let name = self.name.clone();
        if let Some(fail) = self.check(f) {
            panic!(
                "property '{name}' failed (case {}, seed {}; rerun with \
                 AJI_CHECK_SEED={}).\nShrunk to {} choices {:?}\n{}",
                fail.case,
                fail.seed,
                fail.seed,
                fail.choices.len(),
                fail.choices,
                fail.message
            );
        }
    }

    /// Runs the property over `cases` seeded test cases and returns the
    /// first failure, shrunk, instead of panicking — the embeddable
    /// variant of [`Property::run`] for harnesses (like the soundness
    /// fuzzer) that treat a failure as data rather than a test verdict.
    ///
    /// Returns `None` when every case passes. Ignores `AJI_CHECK_SEED`;
    /// seed replay is a `#[test]`-runner concern that stays in `run`.
    ///
    /// ```
    /// use aji_support::check::property;
    ///
    /// let fail = property("finds_boundary").cases(200).check(|tc| {
    ///     let v = tc.int_in(0u64..10_000);
    ///     if v >= 13 { Err(format!("v = {v}")) } else { Ok(()) }
    /// });
    /// let fail = fail.expect("property must fail somewhere");
    /// assert_eq!(fail.choices, vec![13], "shrunk to the boundary");
    ///
    /// let pass = property("never_fails").cases(50).check(|tc| {
    ///     let _ = tc.bool();
    ///     Ok(())
    /// });
    /// assert!(pass.is_none());
    /// ```
    #[must_use]
    pub fn check(self, f: impl Fn(&mut TestCase) -> Result<(), String>) -> Option<Failure> {
        let base = fnv1a(&self.name);
        for case in 0..self.cases {
            let mut state = base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let seed = splitmix64(&mut state);
            let mut tc = TestCase::from_seed(seed);
            if let Err(message) = f(&mut tc) {
                let (choices, message, shrink_runs) =
                    shrink_choices(tc.choices, message, self.max_shrink_runs, &f);
                return Some(Failure {
                    case,
                    seed,
                    choices,
                    message,
                    shrink_runs,
                });
            }
        }
        None
    }

    fn run_one_seed(&self, seed: u64, f: &impl Fn(&mut TestCase) -> Result<(), String>) {
        let mut tc = TestCase::from_seed(seed);
        if let Err(message) = f(&mut tc) {
            panic!(
                "property '{}' failed on replayed seed {seed}:\n{message}",
                self.name
            );
        }
    }

    fn execute(
        f: &impl Fn(&mut TestCase) -> Result<(), String>,
        prefix: Vec<u64>,
    ) -> Run {
        let mut tc = TestCase::replaying(prefix);
        match f(&mut tc) {
            Ok(()) => Run::Pass,
            Err(message) => Run::Fail {
                message,
                choices: tc.choices,
            },
        }
    }

}

/// `proptest`-style assertion: fails the property (returns `Err`) instead
/// of panicking, so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}\n{}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("assertion failed: {:?} == {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {:?} == {:?}\n{}",
                a,
                b,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        property("always_passes").cases(50).run(|tc| {
            let _ = tc.int_in(0u32..10);
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    #[allow(clippy::overly_complex_bool_expr)] // the failure must be unconditional but still use `v`
    fn failing_property_panics_with_seed() {
        let res = std::panic::catch_unwind(|| {
            property("always_fails").cases(10).run(|tc| {
                let v = tc.int_in(0u32..100);
                prop_assert!(v < 1000 && false, "v = {v}");
                Ok(())
            });
        });
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("AJI_CHECK_SEED="), "message: {msg}");
    }

    #[test]
    fn shrinks_to_boundary() {
        // The classic: fails for v >= 13; the minimal failing case is 13.
        let res = std::panic::catch_unwind(|| {
            property("shrink_to_13").cases(200).run(|tc| {
                let v = tc.int_in(0u64..10_000);
                prop_assert!(v < 13, "v = {v}");
                Ok(())
            });
        });
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("v = 13"), "did not shrink to 13: {msg}");
    }

    #[test]
    fn shrinks_vectors_to_minimal_length() {
        // Fails when the vector has >= 3 elements; minimal case is any
        // 3-element vector, and with value-shrinking it is all zeros.
        let res = std::panic::catch_unwind(|| {
            property("shrink_vec").cases(200).run(|tc| {
                let xs = tc.vec_of(0..20, |t| t.int_in(0u32..50));
                prop_assert!(xs.len() < 3, "xs = {xs:?}");
                Ok(())
            });
        });
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("xs = [0, 0, 0]"), "shrunk badly: {msg}");
    }

    #[test]
    fn replay_reproduces_case_exactly() {
        // The same seed must produce the same drawn values.
        let mut first = TestCase::from_seed(977);
        let a: Vec<u64> = (0..10).map(|_| first.choice(1000)).collect();
        let mut second = TestCase::from_seed(977);
        let b: Vec<u64> = (0..10).map(|_| second.choice(1000)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn string_and_pick_helpers_stay_in_domain() {
        property("helpers_domain").cases(64).run(|tc| {
            let s = tc.string_of("abc", 0..5);
            prop_assert!(s.len() < 5);
            prop_assert!(s.chars().all(|c| "abc".contains(c)), "s = {s}");
            let x = *tc.pick(&[3, 5, 7]);
            prop_assert!([3, 5, 7].contains(&x));
            prop_assert!(tc.ratio(4, 4), "num == denom must always hold");
            prop_assert!(!tc.ratio(0, 4), "num == 0 must never hold");
            Ok(())
        });
    }

    #[test]
    fn overrun_draws_are_minimal() {
        let mut tc = TestCase::replaying(vec![5]);
        assert_eq!(tc.choice(10), 5);
        assert_eq!(tc.choice(10), 0, "past-prefix draws are 0");
        assert_eq!(tc.choice(3), 0);
    }

    #[test]
    fn check_returns_shrunk_failure_without_panicking() {
        let fail = property("check_shrinks_to_13").cases(200).check(|tc| {
            let v = tc.int_in(0u64..10_000);
            prop_assert!(v < 13, "v = {v}");
            Ok(())
        });
        let fail = fail.expect("property fails somewhere in 200 cases");
        assert_eq!(fail.choices, vec![13]);
        assert!(fail.message.contains("v = 13"), "message: {}", fail.message);
        assert!(fail.shrink_runs > 0);
        // Replaying the shrunk choices rebuilds the minimal value.
        let mut tc = TestCase::for_choices(fail.choices.clone());
        assert_eq!(tc.int_in(0u64..10_000), 13);
    }

    #[test]
    fn check_passes_quietly() {
        let fail = property("check_passes").cases(30).check(|tc| {
            let _ = tc.int_in(0u32..5);
            Ok(())
        });
        assert!(fail.is_none());
    }

    #[test]
    fn shrink_choices_is_reusable_outside_properties() {
        // A failure found by an external harness (not Property::check):
        // any sequence whose first draw is >= 100 fails.
        let f = |tc: &mut TestCase| {
            let v = tc.int_in(0u64..100_000);
            let w = tc.int_in(0u64..10);
            if v >= 100 {
                Err(format!("v = {v}, w = {w}"))
            } else {
                Ok(())
            }
        };
        let (choices, message, runs) =
            shrink_choices(vec![31_337, 7], "v = 31337, w = 7".into(), 4096, f);
        // The property always draws twice, so the minimal sequence is the
        // boundary value followed by the minimal second draw.
        assert_eq!(choices, vec![100, 0], "shrinks the value and zeroes the tail");
        assert!(message.starts_with("v = 100"), "message: {message}");
        assert!(runs > 0);
    }
}
