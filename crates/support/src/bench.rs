//! A tiny micro-benchmark harness (replacing `criterion`).
//!
//! Model: a *suite* holds named benchmarks. Each benchmark runs a warmup
//! phase, then `iters` timed iterations, and reports min/median/p95/max
//! wall-clock time per iteration. `finish()` prints a human-readable table
//! and writes the raw samples as JSON under `target/aji-bench/`, so
//! ROADMAP perf claims can be checked against recorded numbers.
//!
//! Use [`std::hint::black_box`] (re-exported here) around inputs/outputs
//! the optimizer must not delete.

pub use std::hint::black_box;

use crate::json::Json;
use std::time::{Duration, Instant};

/// Timing samples of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label (unique within its suite).
    pub label: String,
    /// Nanoseconds per timed iteration.
    pub samples_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

impl BenchResult {
    fn sorted(&self) -> Vec<u64> {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s
    }

    /// Median time per iteration, in nanoseconds.
    pub fn median_ns(&self) -> u64 {
        percentile(&self.sorted(), 0.5)
    }

    /// 95th-percentile time per iteration, in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        percentile(&self.sorted(), 0.95)
    }

    /// Fastest iteration, in nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.sorted().first().copied().unwrap_or(0)
    }

    /// Slowest iteration, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.sorted().last().copied().unwrap_or(0)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of benchmarks sharing warmup/iteration settings.
pub struct Suite {
    name: String,
    warmup: u32,
    iters: u32,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates a suite with the default 3 warmup and 20 timed iterations.
    pub fn new(name: impl Into<String>) -> Self {
        Suite {
            name: name.into(),
            warmup: 3,
            iters: 20,
            results: Vec::new(),
        }
    }

    /// Sets the number of untimed warmup iterations.
    pub fn warmup(mut self, n: u32) -> Self {
        self.warmup = n;
        self
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn iters(mut self, n: u32) -> Self {
        self.iters = n;
        self
    }

    /// Runs `f` under this suite's settings and records it under `label`.
    /// The closure's return value is passed through [`black_box`] so the
    /// benchmarked work is not optimized away. Returns the recorded
    /// result, e.g. for derived throughput reporting.
    pub fn bench<R>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> R) -> &BenchResult {
        let label = label.into();
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples_ns = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(f());
            samples_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let r = BenchResult {
            label: label.clone(),
            samples_ns,
        };
        println!(
            "{:<44} median {:>12}   p95 {:>12}   (n={})",
            format!("{}/{label}", self.name),
            fmt_ns(r.median_ns()),
            fmt_ns(r.p95_ns()),
            self.iters
        );
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// Serializes all results (labels + raw nanosecond samples and the
    /// derived stats) as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("suite", Json::Str(self.name.clone())),
            ("warmup", Json::Num(self.warmup as f64)),
            ("iters", Json::Num(self.iters as f64)),
            (
                "benchmarks",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("label", Json::Str(r.label.clone())),
                                ("median_ns", Json::Num(r.median_ns() as f64)),
                                ("p95_ns", Json::Num(r.p95_ns() as f64)),
                                ("min_ns", Json::Num(r.min_ns() as f64)),
                                ("max_ns", Json::Num(r.max_ns() as f64)),
                                (
                                    "samples_ns",
                                    Json::Arr(
                                        r.samples_ns
                                            .iter()
                                            .map(|&n| Json::Num(n as f64))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Prints the summary line and writes `target/aji-bench/<suite>.json`
    /// (best-effort: printing still happens if the filesystem write
    /// fails). Returns the results for programmatic use.
    pub fn finish(self) -> Vec<BenchResult> {
        let json = self.to_json().to_string();
        let dir = target_dir().join("aji-bench");
        let path = dir.join(format!("{}.json", self.name.replace('/', "_")));
        match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, &json)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        self.results
    }
}

/// The build's target directory: `$CARGO_TARGET_DIR` when set, else the
/// `target/` next to the workspace's `Cargo.lock` (cargo runs test and
/// bench binaries with the *package* directory as cwd, which for a
/// workspace member is not where `target/` lives), else `./target`.
fn target_dir() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    let start = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut cur = Some(start.as_path());
    while let Some(d) = cur {
        if d.join("Cargo.lock").is_file() {
            return d.join("target");
        }
        cur = d.parent();
    }
    std::path::PathBuf::from("target")
}

/// Measures a single closure once, returning elapsed wall-clock time —
/// a convenience for coarse phase timing inside experiment binaries.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requested_iterations() {
        let mut s = Suite::new("test-suite").warmup(1).iters(5);
        let mut runs = 0u32;
        s.bench("count", || {
            runs += 1;
            runs
        });
        assert_eq!(runs, 6, "1 warmup + 5 timed");
        assert_eq!(s.results[0].samples_ns.len(), 5);
    }

    #[test]
    fn stats_are_order_independent() {
        let r = BenchResult {
            label: "x".into(),
            samples_ns: vec![50, 10, 30, 20, 40],
        };
        assert_eq!(r.min_ns(), 10);
        assert_eq!(r.median_ns(), 30);
        assert_eq!(r.max_ns(), 50);
        assert_eq!(r.p95_ns(), 50);
    }

    #[test]
    fn json_output_parses_back() {
        let mut s = Suite::new("json-suite").warmup(0).iters(3);
        s.bench("noop", || 1 + 1);
        let j = s.to_json();
        let reparsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            reparsed.get("suite").and_then(Json::as_str),
            Some("json-suite")
        );
        let benches = reparsed.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(
            benches[0].get("samples_ns").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn time_once_measures() {
        let ((), d) = time_once(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(2));
    }
}
