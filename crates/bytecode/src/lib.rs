//! Stack-machine bytecode for the *aji* interpreter's forced-call hot path.
//!
//! The approximate interpreter spends almost all of its budget re-walking
//! the same function bodies: the worklist forces every reachable closure,
//! and each forced call tree-walks the AST from scratch. This crate
//! compiles a [`aji_ast::ast::Function`] body **once** into a compact
//! stack-machine [`Chunk`] — constant pool, interned property names,
//! explicit jump targets — that the interpreter's VM executes instead.
//! The design rationale — why a provable subset with whole-function
//! bail, how the compiler proves parity — is in `DESIGN.md`
//! (§ `aji-bytecode`) at the repository root.
//!
//! Two properties are load-bearing and non-negotiable:
//!
//! 1. **Exact observational parity.** A compiled function must produce the
//!    same tracer event stream, the same step/budget accounting, and the
//!    same values as the tree-walker — byte for byte. Every bytecode op
//!    maps onto the tree-walker's evaluation order, including the
//!    per-node `step()` charge ([`Op::Step`] is emitted exactly where
//!    `eval_expr` / `exec_stmt` would have stepped).
//! 2. **Whole-function bail.** Any construct whose compiled form cannot
//!    be proven event-equivalent (nested closures, destructuring
//!    assignment, `try`, `for..in`, spread, getters/setters, …) aborts
//!    compilation of the *entire* function with a [`Bail`]; the
//!    interpreter memoizes the bail and keeps tree-walking that function
//!    forever. There is no partial compilation and no deopt machinery —
//!    the tree-walker is the always-correct fallback.
//!
//! Locals with statically known bindings (identifier parameters, `var`s,
//! block-scoped `let`/`const` with identifier patterns) are promoted to
//! frame **slots** ([`Op::LoadLocal`] / [`Op::StoreLocal`]); everything
//! else resolves through the scope chain at runtime exactly like the
//! tree-walker ([`Op::LoadName`] / [`Op::StoreName`]). Property access
//! sites each get an inline-cache index ([`Chunk::n_ics`]) that the VM
//! uses for monomorphic shape → slot caching.

#![warn(missing_docs)]

use aji_ast::ast::{BinaryOp, UnaryOp};
use aji_ast::Span;

mod compile;

pub use compile::compile_function;

/// A constant-pool entry. Converted to an interpreter `Value` once at
/// chunk-installation time; [`Op::Const`] then clones the pre-built value.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `undefined` (also used for array holes and elided results).
    Undefined,
    /// `null`.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// A numeric literal (also `NaN` / `Infinity` identifier reads).
    Num(f64),
    /// A string literal.
    Str(String),
}

/// Why a function could not be compiled. Carries a static reason string
/// for the `interp.vm_bails` diagnostics; the interpreter memoizes the
/// bail per function and tree-walks instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bail(pub &'static str);

impl std::fmt::Display for Bail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode bail: {}", self.0)
    }
}

/// One bytecode instruction.
///
/// Index operands are typed indices into the owning [`Chunk`]'s pools:
/// `u16` for constants / names / spans / templates / slots / loops / ICs,
/// `u32` for jump targets (instruction indices). The compiler bails on
/// pool overflow rather than widening.
///
/// Stack discipline notes (`peeks` = reads the top without popping, so
/// the stored value remains the expression result, mirroring the
/// tree-walker's `Ok(v)` returns):
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Charge one interpreter step (the tree-walker steps once per
    /// `eval_expr` / `exec_stmt` entry; compiled code preserves the exact
    /// count — budget trips happen at the same step index).
    Step,
    /// Push constant-pool entry `0`.
    Const(u16),
    /// Pop and discard the top of stack.
    Pop,
    /// Push a clone of frame slot `0`.
    LoadLocal(u16),
    /// Store the top of stack (peeked, not popped) into frame slot `0`.
    StoreLocal(u16),
    /// Reset frame slot `0` to `undefined` (block-entry `let` hoisting).
    LocalUndef(u16),
    /// Push the value of name `0` resolved through the scope chain —
    /// exactly the tree-walker's identifier read, including the global
    /// fallback and the approximate-mode proxy for unbound names.
    LoadName(u16),
    /// Assign the top of stack (peeked) to name `0` via the scope chain
    /// (nearest binding, else implicit global).
    StoreName(u16),
    /// Push the global object (`globalThis` / `global` reads).
    LoadGlobal,
    /// Push the `this` binding of the current scope chain.
    LoadThis,
    /// Pop a value, push its `typeof` string.
    TypeOf,
    /// `typeof ident` unbound guard: if name `name` is neither bound in
    /// the scope chain nor an own property of the global object, push
    /// `"undefined"` and jump to `end` (skipping the operand read that
    /// would otherwise throw / proxy). Bound names fall through to the
    /// compiled operand read.
    TypeOfName {
        /// Name-pool index of the identifier operand.
        name: u16,
        /// Jump target past the fallback read.
        end: u32,
    },
    /// `++` / `--` on a slot-resolved identifier: pop the old value,
    /// coerce to number, store old ± 1, push the prefix- or
    /// postfix-appropriate result.
    UpdateLocal {
        /// Frame slot of the identifier.
        slot: u16,
        /// `true` for `--`.
        dec: bool,
        /// `true` pushes the new value, `false` the old (coerced) value.
        prefix: bool,
    },
    /// `++` / `--` on a scope-resolved identifier (see [`Op::UpdateLocal`]).
    UpdateName {
        /// Name-pool index of the identifier.
        name: u16,
        /// `true` for `--`.
        dec: bool,
        /// `true` pushes the new value, `false` the old (coerced) value.
        prefix: bool,
    },
    /// Pop a value, push the result of the simple unary operator (only
    /// `-`, `+`, `!`, `~`, `void` — `typeof` and `delete` compile to
    /// dedicated ops or bail).
    Unary(UnaryOp),
    /// Pop right then left, push the binary result (may call user code
    /// via valueOf/toString coercion, exactly like the tree-walker).
    Binary(BinaryOp),
    /// Pop a value, push its string conversion (template interpolation).
    ToStr,
    /// Pop `exprs` converted strings, interleave with the quasi pool
    /// entry `tpl`, push the joined string.
    Template {
        /// Template-pool index of the quasi strings.
        tpl: u16,
        /// Number of interpolated expressions on the stack.
        exprs: u16,
    },
    /// Unconditional jump to instruction `0`.
    Jump(u32),
    /// Pop a value; jump to `0` if it is falsy.
    JumpIfFalse(u32),
    /// Peek the top; jump to `0` if truthy, keeping it as the result
    /// (`||` short-circuit).
    JumpTruthyKeep(u32),
    /// Peek the top; jump to `0` if falsy, keeping it (`&&`).
    JumpFalsyKeep(u32),
    /// Peek the top; jump to `0` if it is neither `null` nor
    /// `undefined`, keeping it (`??`).
    JumpNotNullishKeep(u32),
    /// Pop `n` elements, allocate an array (tracer `on_alloc` at span
    /// `span`), push it.
    MakeArray {
        /// Element count.
        n: u16,
        /// Span-pool index for the allocation site.
        span: u16,
    },
    /// Allocate an empty plain object (tracer `on_alloc`), push it.
    MakeObject {
        /// Span-pool index for the allocation site.
        span: u16,
    },
    /// Pop a value, peek the object under it, set literal property
    /// `name` (tracer `on_static_write` then a direct heap store — the
    /// object is fresh, no setters can exist).
    SetLitProp {
        /// Name-pool index of the static key.
        name: u16,
    },
    /// Pop the base, push `base.name` — through the inline cache `ic`
    /// on hit, the generic property read on miss.
    GetProp {
        /// Name-pool index of the property.
        name: u16,
        /// Inline-cache index.
        ic: u16,
    },
    /// Pop the key then the base, push `base[key]` (dynamic-read tracer
    /// events; `span` locates the member expression).
    GetPropDyn {
        /// Span-pool index of the member expression.
        span: u16,
    },
    /// Pop the base, peek the value under it, write `base.name = value`
    /// (tracer `on_static_write`; inline cache `ic` on the heap store).
    SetProp {
        /// Name-pool index of the property.
        name: u16,
        /// Inline-cache index.
        ic: u16,
    },
    /// Pop the key then the base, peek the value, write
    /// `base[key] = value` (dynamic-write tracer events).
    SetPropDyn {
        /// Span-pool index of the assignment target expression.
        span: u16,
    },
    /// Peek the base, push `base.name` for an immediate method call
    /// (keeps the base on the stack as the receiver).
    GetMethod {
        /// Name-pool index of the method.
        name: u16,
        /// Inline-cache index.
        ic: u16,
    },
    /// Pop the key, peek the base, push `base[key]` for a method call.
    GetMethodDyn {
        /// Span-pool index of the callee member expression.
        span: u16,
    },
    /// Pop `argc` arguments then the callee; call with `undefined`
    /// receiver at call-site span `span`; push the result.
    Call {
        /// Argument count.
        argc: u16,
        /// Span-pool index of the call expression.
        span: u16,
    },
    /// Pop `argc` arguments, the callee, then the receiver; call;
    /// push the result.
    CallMethod {
        /// Argument count.
        argc: u16,
        /// Span-pool index of the call expression.
        span: u16,
    },
    /// Pop `argc` arguments then the constructor; construct; push the
    /// result.
    New {
        /// Argument count.
        argc: u16,
        /// Span-pool index of the `new` expression.
        span: u16,
    },
    /// Reset loop-iteration counter `0` and clear any pending label
    /// (loop entry).
    LoopEnter(u16),
    /// Increment loop-iteration counter `0`; trip the loop budget if it
    /// exceeds the configured maximum (checked *before* the test
    /// expression, like the tree-walker).
    IterCheck(u16),
    /// Pop a value and throw it as a JS exception.
    Throw,
    /// Pop the return value and leave the function.
    Return,
    /// Leave the function returning `undefined` (also emitted at the end
    /// of every chunk, and for `break`/`continue` that exit the body).
    ReturnUndef,

    // ---- superinstructions (emitted only by the peephole pass) ----
    /// Fused [`Op::Step`] + [`Op::LoadLocal`]: semantics are exactly the
    /// two ops in sequence — a step-budget trip happens before the load.
    StepLoadLocal(u16),
    /// Fused [`Op::Step`] + [`Op::Const`].
    StepConst(u16),
    /// Fused [`Op::Step`] + [`Op::LoadName`].
    StepLoadName(u16),
    /// Fused [`Op::StoreLocal`] + [`Op::Pop`]: pop the top of stack into
    /// frame slot `0`.
    StoreLocalPop(u16),
    /// Fused [`Op::SetProp`] + [`Op::Pop`]: pop the base then the value
    /// (instead of peeking the value and discarding it afterwards).
    SetPropPop {
        /// Name-pool index of the property.
        name: u16,
        /// Inline-cache index.
        ic: u16,
    },
    /// Fused [`Op::Step`] + [`Op::Step`]: two full charge-and-check
    /// cycles in sequence (a trip on the first returns before the
    /// second, at the identical step index as unfused code).
    StepStep,
    /// Fused [`Op::StepLoadLocal`] + [`Op::GetProp`]: the complete
    /// `obj.prop` read on a slot-resolved base — step, push slot `slot`,
    /// then property read through inline cache `ic`.
    StepLoadLocalGetProp {
        /// Frame slot of the base object.
        slot: u16,
        /// Name-pool index of the property.
        name: u16,
        /// Inline-cache index.
        ic: u16,
    },
}

/// A compiled function body plus its pools. Owned by the interpreter's
/// per-function code cache; immutable after compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Instruction stream. Jump targets index into this vector.
    pub ops: Vec<Op>,
    /// Constant pool (deduplicated; numbers keyed by bit pattern).
    pub consts: Vec<Const>,
    /// Interned identifier / property-name pool.
    pub names: Vec<String>,
    /// Source spans for ops that need a runtime location (allocation
    /// sites, call sites, dynamic member accesses).
    pub spans: Vec<Span>,
    /// Template-literal quasi strings, one entry per template site.
    pub templates: Vec<Vec<String>>,
    /// Frame-entry slot initialization: `(slot, name)` pairs copied from
    /// the prologue-populated scope (parameters, `arguments`-adjacent
    /// bindings) — a name the prologue bound seeds the slot, anything
    /// else starts `undefined` (matching `var` hoisting).
    pub entry: Vec<(u16, u16)>,
    /// Number of frame slots.
    pub n_slots: u16,
    /// Number of loop-iteration counters.
    pub n_loops: u16,
    /// Number of inline-cache sites.
    pub n_ics: u16,
    /// Source name of the compiled function (`None` for anonymous
    /// functions) — attribution for profilers and trace events, so a
    /// chunk maps back to its function without re-walking the AST.
    pub func_name: Option<String>,
    /// Span of the compiled function definition (same attribution role).
    pub func_span: aji_ast::Span,
}

/// Statically computed operand-stack high-water mark of an instruction
/// stream.
///
/// The compiler's stack discipline fixes the operand-stack depth at
/// every pc (each merge point is reached with one depth regardless of
/// path), so the peak is a compile-time fact rather than something the
/// dispatch loop must track per op. A worklist pass propagates the
/// entry depth of 0 through fall-through and jump edges; the result is
/// the maximum depth over all paths, so an execution that skips the
/// deepest expression stays at or below the bound.
#[must_use]
pub fn max_stack(ops: &[Op]) -> u16 {
    // Depth *before* each op; `i32::MIN` marks "not yet visited".
    let mut depth_at = vec![i32::MIN; ops.len()];
    let mut work: Vec<(usize, i32)> = vec![(0, 0)];
    let mut max = 0i32;
    while let Some((pc, d)) = work.pop() {
        let Some(op) = ops.get(pc) else { continue };
        if depth_at[pc] != i32::MIN {
            debug_assert_eq!(depth_at[pc], d, "inconsistent stack depth at pc {pc}");
            continue;
        }
        depth_at[pc] = d;
        // Depth after the op, and its successors.
        let nd = match op {
            Op::Step
            | Op::StepStep
            | Op::LocalUndef(_)
            | Op::StoreLocal(_)
            | Op::StoreName(_)
            | Op::TypeOf
            | Op::UpdateLocal { .. }
            | Op::UpdateName { .. }
            | Op::Unary(_)
            | Op::ToStr
            | Op::GetProp { .. }
            | Op::GetMethodDyn { .. }
            | Op::LoopEnter(_)
            | Op::IterCheck(_) => d,
            Op::Const(_)
            | Op::LoadLocal(_)
            | Op::LoadName(_)
            | Op::LoadGlobal
            | Op::LoadThis
            | Op::MakeObject { .. }
            | Op::GetMethod { .. }
            | Op::StepLoadLocal(_)
            | Op::StepConst(_)
            | Op::StepLoadName(_)
            | Op::StepLoadLocalGetProp { .. } => d + 1,
            Op::Pop
            | Op::Binary(_)
            | Op::SetLitProp { .. }
            | Op::GetPropDyn { .. }
            | Op::SetProp { .. }
            | Op::StoreLocalPop(_) => d - 1,
            Op::SetPropDyn { .. } | Op::SetPropPop { .. } => d - 2,
            Op::Template { exprs, .. } => d + 1 - i32::from(*exprs),
            Op::MakeArray { n, .. } => d + 1 - i32::from(*n),
            Op::Call { argc, .. } | Op::New { argc, .. } => d - i32::from(*argc),
            Op::CallMethod { argc, .. } => d - 1 - i32::from(*argc),
            Op::Jump(t) => {
                work.push((*t as usize, d));
                continue;
            }
            Op::JumpIfFalse(t) => {
                work.push((*t as usize, d - 1));
                work.push((pc + 1, d - 1));
                continue;
            }
            Op::JumpTruthyKeep(t) | Op::JumpFalsyKeep(t) | Op::JumpNotNullishKeep(t) => {
                work.push((*t as usize, d));
                work.push((pc + 1, d));
                continue;
            }
            Op::TypeOfName { end, .. } => {
                // Unbound path pushes `"undefined"` and jumps; the bound
                // path falls through to the compiled operand read.
                max = max.max(d + 1);
                work.push((*end as usize, d + 1));
                work.push((pc + 1, d));
                continue;
            }
            // Terminators: pop (or not) and leave the function.
            Op::Throw | Op::Return | Op::ReturnUndef => continue,
        };
        max = max.max(nd);
        work.push((pc + 1, nd));
    }
    max.max(0).try_into().unwrap_or(u16::MAX)
}

#[cfg(test)]
mod max_stack_tests {
    use super::*;

    #[test]
    fn straight_line_peak() {
        // const, const, binary, return → depths 0,1,2,1.
        let ops = vec![Op::Const(0), Op::Const(1), Op::Binary(BinaryOp::Add), Op::Return];
        assert_eq!(max_stack(&ops), 2);
    }

    #[test]
    fn branches_merge_at_one_depth() {
        // cond ? a : b — both arms leave exactly one value.
        let ops = vec![
            Op::LoadLocal(0),       // 0 → 1
            Op::JumpIfFalse(4),     // 1 → 0, else-target 4
            Op::Const(0),           // 0 → 1
            Op::Jump(5),            // join
            Op::Const(1),           // 0 → 1
            Op::Return,             // pops the result
        ];
        assert_eq!(max_stack(&ops), 1);
    }

    #[test]
    fn call_pops_args_and_callee() {
        let ops = vec![
            Op::LoadName(0),                    // 0 → 1 (callee)
            Op::Const(0),                       // 1 → 2
            Op::Const(1),                       // 2 → 3
            Op::Call { argc: 2, span: 0 },      // 3 → 1
            Op::Pop,                            // 1 → 0
            Op::ReturnUndef,
        ];
        assert_eq!(max_stack(&ops), 3);
    }

    #[test]
    fn empty_stream_is_zero() {
        assert_eq!(max_stack(&[]), 0);
    }
}
